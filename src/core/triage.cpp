#include "core/triage.hpp"

#include <set>

#include "instrument/instrument.hpp"
#include "ir/lowering.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "reduce/reducer.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dce::core {

KillerHistogram
killerHistogram(const Campaign &campaign, BuildId build)
{
    KillerHistogram histogram;
    if (!build.valid())
        return histogram;
    for (const ProgramRecord &record : campaign.programs) {
        if (!record.valid || record.kills.empty())
            continue;
        for (const MarkerKill &kill : record.killsFor(build)) {
            ++histogram.byPass[kill.pass];
            ++histogram.totalEliminated;
        }
    }
    return histogram;
}

std::string
VerdictKey::fingerprint() const
{
    std::string out = "prog:" + programHash + "|markers:";
    for (size_t i = 0; i < markers.size(); ++i) {
        if (i > 0)
            out += ',';
        out += std::to_string(markers[i]);
    }
    out += "|by:" + missedBy + "|ref:" + reference;
    return out;
}

//===------------------------------------------------------------------===//
// InterestingnessTest
//===------------------------------------------------------------------===//

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
    case RejectReason::ParseFail:
        return "parse-fail";
    case RejectReason::MarkerAbsent:
        return "marker-absent";
    case RejectReason::TrapTimeout:
        return "trap-timeout";
    case RejectReason::Executed:
        return "executed";
    case RejectReason::NotDifferential:
        return "not-differential";
    }
    return "unknown";
}

InterestingnessTest::InterestingnessTest(
    unsigned marker, const BuildSpec &missed_by,
    const BuildSpec &reference, support::MetricsRegistry *metrics,
    SurvivalSource source)
    : marker_(marker), markerName_(instrument::markerName(marker)),
      missedBy_(missed_by), reference_(reference),
      sameBuild_(missed_by == reference), source_(source)
{
    support::MetricsRegistry &registry =
        metrics ? *metrics : support::MetricsRegistry::global();
    for (RejectReason reason :
         {RejectReason::ParseFail, RejectReason::MarkerAbsent,
          RejectReason::TrapTimeout, RejectReason::Executed,
          RejectReason::NotDifferential}) {
        rejects_.push_back(&registry.counter(
            "reduce.reject", rejectReasonName(reason)));
    }
    compiles_ = &registry.counter("reduce.compiles");
}

support::Counter &
InterestingnessTest::rejectCounter(RejectReason reason) const
{
    return *rejects_[static_cast<size_t>(reason)];
}

bool
InterestingnessTest::test(const std::string &candidate,
                          RejectReason *why) const
{
    auto reject = [&](RejectReason reason) {
        rejectCounter(reason).add();
        if (why)
            *why = reason;
        return false;
    };

    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(candidate, diags);
    if (!unit)
        return reject(RejectReason::ParseFail);
    if (!unit->findFunction(markerName_))
        return reject(RejectReason::MarkerAbsent);

    // One lowering serves the ground-truth execution and — cloned by
    // Compiler::compileLowered — both differential builds.
    auto lowered = ir::lowerToIr(*unit);
    interp::ExecResult run = interp::execute(*lowered);
    if (!run.ok())
        return reject(RejectReason::TrapTimeout);
    if (run.calledExternals.count(markerName_))
        return reject(RejectReason::Executed);

    // Differential: missed by one build, eliminated by the other. The
    // missed-by side runs first — shrinking candidates most often stop
    // being missed, so the second pipeline is frequently skipped.
    compiles_->add();
    if (!aliveMarkers(*lowered, missedBy_.make(), {}, source_)
             .count(marker_))
        return reject(RejectReason::NotDifferential);
    // Equiv findings set reference == missedBy: the same build cannot
    // both miss and eliminate the marker, so the probe is vacuous.
    if (sameBuild_)
        return true;
    compiles_->add();
    if (aliveMarkers(*lowered, reference_.make(), {}, source_)
            .count(marker_))
        return reject(RejectReason::NotDifferential);
    return true;
}

namespace {

/** Root-cause signature of a reduced case: the first post-HEAD fix
 * commit that resolves it, or a capability tag. */
std::string
signatureOf(const std::string &reduced_source, const Finding &finding,
            bool &fixed, SurvivalSource source)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(reduced_source, diags);
    if (!unit) {
        fixed = false;
        return "invalid";
    }
    // One lowering probed by every fix commit and capability level.
    auto lowered = ir::lowerToIr(*unit);
    const compiler::CompilerSpec &spec =
        compiler::spec(finding.missedBy.id);
    for (size_t commit = spec.headIndex() + 1;
         commit < spec.history().size(); ++commit) {
        compiler::Compiler fixed_build(finding.missedBy.id,
                                       finding.missedBy.level, commit);
        if (!aliveMarkers(*lowered, fixed_build, {}, source)
                 .count(finding.marker)) {
            fixed = true;
            return "fixedby:" + spec.history()[commit].hash;
        }
    }
    fixed = false;
    // No fix commit resolves it: classify by which levels of the same
    // compiler eliminate the marker — a capability fingerprint.
    std::string fingerprint = "capability:";
    for (compiler::OptLevel level : compiler::allOptLevels()) {
        compiler::Compiler probe(finding.missedBy.id, level);
        fingerprint += aliveMarkers(*lowered, probe, {}, source)
                               .count(finding.marker)
                           ? 'm'
                           : 'e';
    }
    return fingerprint;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** Per-finding output of the parallel reduce + signature stage. */
struct ReducedFinding {
    reduce::ReduceResult reduction;
    std::string signature;
    bool fixed = false;
};

/** A finding replayed a verdict instead of reducing: @p via is "store"
 * (verdict cache hit) or "batch" (same-key leader in this batch). */
void
emitVerdictCached(support::EventSink *events, size_t index,
                  const Finding &finding, const VerdictKey &key,
                  const char *via)
{
    if (!events)
        return;
    support::Event event("verdict_cached",
                         {support::kPhaseTriage, index, 0});
    event.num("finding", index)
        .num("seed", finding.seed)
        .str("fingerprint", key.fingerprint())
        .str("via", via);
    events->emit(std::move(event));
}

void
emitClassified(support::EventSink *events, size_t index,
               const Finding &finding, const Report &report,
               bool reported)
{
    if (!events)
        return;
    support::Event event("finding_classified",
                         {support::kPhaseTriage, index, 2});
    event.num("finding", index)
        .num("seed", finding.seed)
        .num("marker", finding.marker)
        .str("signature", report.signature)
        .num("reported", reported ? 1 : 0)
        .num("confirmed", report.confirmed ? 1 : 0)
        .num("duplicate", report.duplicate ? 1 : 0)
        .num("fixed", report.fixed ? 1 : 0);
    events->emit(std::move(event));
}

} // namespace

TriageSummary
triageFindings(const std::vector<Finding> &findings,
               const TriageOptions &options)
{
    support::MetricsRegistry *registry =
        options.metrics ? options.metrics
                        : &support::MetricsRegistry::global();

    // Stage 0 — when a verdict cache is attached, key every finding
    // (canonical program text hash + marker set + build pair) and
    // group same-key findings: only each group's leader reduces, the
    // followers replay its verdict. Serial, so leader choice — and
    // with it the whole summary — never depends on scheduling. An
    // event sink also forces keying (events carry the fingerprint)
    // but never enables the batch dedup by itself.
    const bool keyed = options.verdictCache || options.events;
    std::vector<std::string> sources(findings.size());
    std::vector<VerdictKey> keys(keyed ? findings.size() : 0);
    std::vector<size_t> leaderOf(findings.size());
    for (size_t i = 0; i < findings.size(); ++i)
        leaderOf[i] = i;
    if (keyed) {
        std::map<std::string, size_t> first_with_key;
        for (size_t i = 0; i < findings.size(); ++i) {
            const Finding &finding = findings[i];
            sources[i] =
                options.sourceFor
                    ? options.sourceFor(finding, i)
                    : lang::printUnit(
                          *makeProgram(finding.seed, options.generator)
                               .unit);
            keys[i].programHash = support::fnv1a64Hex(sources[i]);
            keys[i].markers = {finding.marker};
            keys[i].missedBy = finding.missedBy.name();
            keys[i].reference = finding.reference.name();
            if (!options.verdictCache)
                continue;
            auto [it, fresh] = first_with_key.emplace(
                keys[i].fingerprint(), i);
            if (!fresh) {
                leaderOf[i] = it->second;
                registry->counter("reduce.findings_deduped").add();
            }
        }
    }

    // Stage 1 — reduce + signature every leader finding, concurrently.
    // Each finding is pure in (finding, options), writes its own slot,
    // and the per-finding reduction itself is deterministic regardless
    // of reduceWorkers, so the stage commutes with any schedule.
    std::vector<ReducedFinding> slots(findings.size());
    support::ThreadPool pool(resolveThreads(options.threads));
    pool.forChunks(
        findings.size(), 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                if (leaderOf[i] != i)
                    continue; // follower: replayed after the barrier
                const Finding &finding = findings[i];
                if (options.verdictCache) {
                    if (std::optional<CachedVerdict> cached =
                            options.verdictCache->lookup(keys[i])) {
                        slots[i].reduction.source =
                            cached->reducedSource;
                        slots[i].reduction.testsRun =
                            cached->reductionTests;
                        slots[i].signature = cached->signature;
                        slots[i].fixed = cached->fixed;
                        registry
                            ->counter("reduce.verdict_cache_hits")
                            .add();
                        emitVerdictCached(options.events, i, finding,
                                          keys[i], "store");
                        continue;
                    }
                }
                std::string source =
                    keyed ? sources[i]
                    : options.sourceFor
                        ? options.sourceFor(finding, i)
                        : lang::printUnit(*makeProgram(
                                               finding.seed,
                                               options.generator)
                                               .unit);

                InterestingnessTest interesting(
                    finding.marker, finding.missedBy,
                    finding.reference, registry,
                    options.survivalSource);
                reduce::ReduceOptions reduce_options;
                reduce_options.maxTests = options.maxTests;
                reduce_options.workers = options.reduceWorkers;
                reduce_options.metrics = registry;
                {
                    support::TraceSpan span("reduce", "triage");
                    span.setArg("seed", finding.seed);
                    slots[i].reduction =
                        reduce::ParallelReducer(reduce_options)
                            .reduce(source, interesting);
                }
                support::TraceSpan span("signature", "triage");
                span.setArg("seed", finding.seed);
                slots[i].signature = signatureOf(
                    slots[i].reduction.source, finding, slots[i].fixed,
                    options.survivalSource);
                if (options.verdictCache) {
                    options.verdictCache->store(
                        keys[i],
                        {slots[i].reduction.source, slots[i].signature,
                         slots[i].fixed, slots[i].reduction.testsRun});
                }
                if (options.events) {
                    support::Event done(
                        "reduction_finished",
                        {support::kPhaseTriage, i, 1});
                    done.num("finding", i)
                        .num("seed", finding.seed)
                        .num("marker", finding.marker)
                        .num("tests", slots[i].reduction.testsRun)
                        .num("lines_before",
                             slots[i].reduction.linesBefore)
                        .num("lines_after",
                             slots[i].reduction.linesAfter)
                        .num("reduce_passes", slots[i].reduction.passes)
                        .str("fingerprint", keys[i].fingerprint());
                    options.events->emit(std::move(done));
                }
            }
        });

    // Replay leader verdicts into follower slots (testsRun included,
    // so warm and cold summaries are byte-identical).
    for (size_t i = 0; i < findings.size(); ++i) {
        if (leaderOf[i] != i) {
            slots[i] = slots[leaderOf[i]];
            emitVerdictCached(options.events, i, findings[i], keys[i],
                              "batch");
        }
    }

    // Stage 2 — classify and deduplicate, serially in findings order
    // (deduplication is the one cross-finding dependency).
    TriageSummary summary;
    std::set<std::pair<int, std::string>> seen_signatures;
    std::map<int, unsigned> duplicate_budget;
    duplicate_budget[static_cast<int>(compiler::CompilerId::Alpha)] =
        options.reportedDuplicateAllowance;
    duplicate_budget[static_cast<int>(compiler::CompilerId::Beta)] =
        options.reportedDuplicateAllowance;

    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &finding = findings[i];
        ReducedFinding &reduced = slots[i];

        Report report;
        report.finding = finding;
        report.reducedSource = reduced.reduction.source;
        report.reductionTests = reduced.reduction.testsRun;
        report.signature = std::move(reduced.signature);
        report.fixed = reduced.fixed;

        auto key = std::make_pair(
            static_cast<int>(finding.missedBy.id), report.signature);
        report.duplicate = !seen_signatures.insert(key).second;
        if (report.duplicate) {
            // Pre-report deduplication drops most same-root-cause
            // findings; a small allowance slips through and gets
            // marked duplicate by the "developers".
            unsigned &budget =
                duplicate_budget[static_cast<int>(finding.missedBy.id)];
            if (budget == 0) {
                // Deduplicated away, never reported.
                emitClassified(options.events, i, finding, report,
                               false);
                continue;
            }
            --budget;
            report.fixed = false; // counted once, on the original
        }
        report.confirmed = !report.duplicate &&
                           report.signature != "invalid";
        emitClassified(options.events, i, finding, report, true);
        summary.reports.push_back(std::move(report));
    }
    return summary;
}

std::optional<Finding>
findingForRecord(const ProgramRecord &record, BuildId by, BuildId ref,
                 const BuildSpec &missed_by, const BuildSpec &reference)
{
    // Needs the primary sets, so skip campaigns (or invalid records)
    // that never computed them.
    if (!record.valid || record.primary.empty())
        return std::nullopt;
    for (unsigned marker : setMinus(record.primaryFor(by),
                                    record.missedFor(ref))) {
        // At most one report per program (like the paper).
        return Finding{record.seed, marker, missed_by, reference};
    }
    return std::nullopt;
}

std::vector<Finding>
collectFindings(const Campaign &campaign, const BuildSpec &missed_by,
                const BuildSpec &reference, unsigned max_findings,
                const gen::GenConfig &config)
{
    (void)config;
    std::vector<Finding> findings;
    std::optional<BuildId> by_id = campaign.findBuild(missed_by);
    std::optional<BuildId> ref_id = campaign.findBuild(reference);
    if (!by_id || !ref_id)
        return findings;
    for (const ProgramRecord &record : campaign.programs) {
        if (findings.size() >= max_findings)
            break;
        if (std::optional<Finding> finding = findingForRecord(
                record, *by_id, *ref_id, missed_by, reference))
            findings.push_back(*finding);
    }
    return findings;
}

TriageSummary
triageFindings(const std::vector<Finding> &findings,
               const gen::GenConfig &config,
               unsigned reported_duplicate_allowance)
{
    TriageOptions options;
    options.generator = config;
    options.reportedDuplicateAllowance = reported_duplicate_allowance;
    return triageFindings(findings, options);
}

} // namespace dce::core
