#include "core/analysis.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "backend/codegen.hpp"
#include "ir/lowering.hpp"

namespace dce::core {

using instrument::Instrumented;
using instrument::markerIndex;

std::set<unsigned>
aliveMarkersInAsm(const std::string &assembly)
{
    std::set<unsigned> alive;
    for (const std::string &symbol : backend::calledSymbols(assembly)) {
        if (auto index = markerIndex(symbol))
            alive.insert(*index);
    }
    return alive;
}

std::set<unsigned>
aliveMarkers(const lang::TranslationUnit &unit,
             const compiler::Compiler &comp)
{
    return aliveMarkersInAsm(comp.compileToAsm(unit));
}

GroundTruth
groundTruth(const Instrumented &prog)
{
    GroundTruth truth;
    auto module = ir::lowerToIr(*prog.unit);
    interp::ExecResult result = interp::execute(*module);
    if (!result.ok())
        return truth; // timeout/trap: unusable for ground truth
    truth.valid = true;
    for (const std::string &name : result.calledExternals) {
        if (auto index = markerIndex(name))
            truth.aliveMarkers.insert(*index);
    }
    for (unsigned m = 0; m < prog.markerCount(); ++m) {
        if (!truth.aliveMarkers.count(m))
            truth.deadMarkers.insert(m);
    }
    return truth;
}

namespace {

/** Interprocedural CFG view over an O0 module: per-block predecessor
 * lists, where a function entry's predecessors are all blocks
 * containing calls to it. */
struct InterCfg {
    std::unordered_map<const ir::BasicBlock *,
                       std::vector<const ir::BasicBlock *>>
        preds;
    /** Blocks containing each marker's call. */
    std::unordered_map<unsigned, const ir::BasicBlock *> markerBlock;
    /** Markers contained in each block. */
    std::unordered_map<const ir::BasicBlock *, std::vector<unsigned>>
        blockMarkers;
};

InterCfg
buildInterCfg(const ir::Module &module)
{
    InterCfg cfg;
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            cfg.preds[block.get()]; // materialize every node
            for (ir::BasicBlock *succ : block->successors())
                cfg.preds[succ].push_back(block.get());
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != ir::Opcode::Call)
                    continue;
                const ir::Function *callee = instr->callee;
                if (callee->isDeclaration()) {
                    if (auto index = markerIndex(callee->name())) {
                        cfg.markerBlock[*index] = block.get();
                        cfg.blockMarkers[block.get()].push_back(
                            *index);
                    }
                    continue;
                }
                // Call edge: the calling block reaches the callee's
                // entry.
                cfg.preds[callee->entry()].push_back(block.get());
            }
        }
    }
    return cfg;
}

} // namespace

std::set<unsigned>
primaryMissedMarkers(const Instrumented &prog,
                     const std::set<unsigned> &missed,
                     const GroundTruth &truth)
{
    if (missed.empty() || !truth.valid)
        return {};

    // Fresh O0 lowering + block-level execution ground truth.
    auto module = ir::lowerToIr(*prog.unit);
    interp::ExecLimits limits;
    limits.recordBlocks = true;
    interp::ExecResult run = interp::execute(*module, "main", limits);
    if (!run.ok())
        return missed; // should not happen (truth.valid): be safe

    InterCfg cfg = buildInterCfg(*module);

    auto block_state = [&](const ir::BasicBlock *block)
        -> std::pair<bool, bool> {
        // (contains_missed_dead_marker, contains_only_detected).
        bool has_missed = false;
        auto it = cfg.blockMarkers.find(block);
        if (it != cfg.blockMarkers.end()) {
            for (unsigned m : it->second)
                has_missed |= missed.count(m) != 0;
        }
        return {has_missed, it != cfg.blockMarkers.end()};
    };

    std::set<unsigned> primary;
    for (unsigned marker : missed) {
        auto block_it = cfg.markerBlock.find(marker);
        if (block_it == cfg.markerBlock.end())
            continue; // marker vanished at lowering (front-end DCE)
        const ir::BasicBlock *origin = block_it->second;

        // Backwards reachability from the marker's block through dead
        // territory. Hitting an executed (live) block ends that path
        // per the Definition (live predecessors are fine); hitting a
        // block with a *detected* dead marker also ends it; hitting a
        // block with another *missed* dead marker makes `marker`
        // secondary.
        bool secondary = false;
        std::vector<const ir::BasicBlock *> worklist(
            cfg.preds[origin].begin(), cfg.preds[origin].end());
        std::unordered_set<const ir::BasicBlock *> visited{origin};
        while (!worklist.empty() && !secondary) {
            const ir::BasicBlock *block = worklist.back();
            worklist.pop_back();
            if (!visited.insert(block).second)
                continue;
            if (run.executedBlocks.count(block))
                continue; // live predecessor: fine
            auto [has_missed, has_any_marker] = block_state(block);
            if (has_missed) {
                secondary = true;
                break;
            }
            if (has_any_marker)
                continue; // detected dead marker: root cause resolved
            // Dead, markerless: keep walking up.
            for (const ir::BasicBlock *pred : cfg.preds[block])
                worklist.push_back(pred);
        }
        if (!secondary)
            primary.insert(marker);
    }
    return primary;
}

} // namespace dce::core
