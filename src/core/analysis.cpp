#include "core/analysis.hpp"

#include <vector>

#include "backend/codegen.hpp"
#include "compiler/compilation.hpp"
#include "ir/lowering.hpp"

namespace dce::core {

using instrument::Instrumented;
using instrument::markerIndex;

std::set<unsigned>
aliveMarkersInAsm(const std::string &assembly)
{
    std::set<unsigned> alive;
    for (const std::string &symbol : backend::calledSymbols(assembly)) {
        if (auto index = markerIndex(symbol))
            alive.insert(*index);
    }
    return alive;
}

std::set<unsigned>
aliveMarkers(const lang::TranslationUnit &unit,
             const compiler::Compiler &comp)
{
    return comp.compile(unit).survivingMarkers();
}

std::set<unsigned>
aliveMarkers(const ir::Module &lowered, const compiler::Compiler &comp,
             compiler::BuildObservers observers, SurvivalSource source)
{
    compiler::Compilation result =
        comp.compileLowered(lowered, /*verify_each=*/false, observers);
    if (source == SurvivalSource::Assembly)
        return aliveMarkersInAsm(result.assembly());
    return result.survivingMarkers();
}

GroundTruth
groundTruthFor(const ir::Module &lowered, unsigned marker_count)
{
    GroundTruth truth;
    interp::ExecResult result = interp::execute(lowered);
    truth.status = result.status;
    if (!result.ok())
        return truth; // timeout/trap: unusable for ground truth
    truth.valid = true;
    for (const std::string &name : result.calledExternals) {
        if (auto index = markerIndex(name))
            truth.aliveMarkers.insert(*index);
    }
    for (unsigned m = 0; m < marker_count; ++m) {
        if (!truth.aliveMarkers.count(m))
            truth.deadMarkers.insert(m);
    }
    return truth;
}

GroundTruth
groundTruth(const Instrumented &prog)
{
    auto module = ir::lowerToIr(*prog.unit);
    return groundTruthFor(*module, prog.markerCount());
}

//===------------------------------------------------------------------===//
// Primary missed-block analysis (§3.2)
//===------------------------------------------------------------------===//

PrimaryAnalysis::PrimaryAnalysis(const ir::Module &lowered)
{
    // Interprocedural CFG view over the O0 module: per-block
    // predecessor lists, where a function entry's predecessors are all
    // blocks containing calls to it.
    for (const auto &fn : lowered.functions()) {
        for (const auto &block : fn->blocks()) {
            preds_[block.get()]; // materialize every node
            for (ir::BasicBlock *succ : block->successors())
                preds_[succ].push_back(block.get());
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != ir::Opcode::Call)
                    continue;
                const ir::Function *callee = instr->callee;
                if (callee->isDeclaration()) {
                    if (auto index = markerIndex(callee->name())) {
                        markerBlock_[*index] = block.get();
                        blockMarkers_[block.get()].push_back(*index);
                    }
                    continue;
                }
                // Call edge: the calling block reaches the callee's
                // entry.
                preds_[callee->entry()].push_back(block.get());
            }
        }
    }

    // Block-level execution ground truth.
    interp::ExecLimits limits;
    limits.recordBlocks = true;
    interp::ExecResult run = interp::execute(lowered, "main", limits);
    valid_ = run.ok();
    executedBlocks_ = std::move(run.executedBlocks);
}

std::set<unsigned>
PrimaryAnalysis::primary(const std::set<unsigned> &missed) const
{
    if (missed.empty())
        return {};
    if (!valid_)
        return missed; // no block truth: be safe, keep everything

    auto block_state = [&](const ir::BasicBlock *block)
        -> std::pair<bool, bool> {
        // (contains_missed_dead_marker, contains_any_marker).
        bool has_missed = false;
        auto it = blockMarkers_.find(block);
        if (it != blockMarkers_.end()) {
            for (unsigned m : it->second)
                has_missed |= missed.count(m) != 0;
        }
        return {has_missed, it != blockMarkers_.end()};
    };

    std::set<unsigned> primary;
    for (unsigned marker : missed) {
        auto block_it = markerBlock_.find(marker);
        if (block_it == markerBlock_.end())
            continue; // marker vanished at lowering (front-end DCE)
        const ir::BasicBlock *origin = block_it->second;

        // Backwards reachability from the marker's block through dead
        // territory. Hitting an executed (live) block ends that path
        // per the Definition (live predecessors are fine); hitting a
        // block with a *detected* dead marker also ends it; hitting a
        // block with another *missed* dead marker makes `marker`
        // secondary.
        bool secondary = false;
        auto origin_preds = preds_.find(origin);
        std::vector<const ir::BasicBlock *> worklist;
        if (origin_preds != preds_.end()) {
            worklist.assign(origin_preds->second.begin(),
                            origin_preds->second.end());
        }
        std::unordered_set<const ir::BasicBlock *> visited{origin};
        while (!worklist.empty() && !secondary) {
            const ir::BasicBlock *block = worklist.back();
            worklist.pop_back();
            if (!visited.insert(block).second)
                continue;
            if (executedBlocks_.count(block))
                continue; // live predecessor: fine
            auto [has_missed, has_any_marker] = block_state(block);
            if (has_missed) {
                secondary = true;
                break;
            }
            if (has_any_marker)
                continue; // detected dead marker: root cause resolved
            // Dead, markerless: keep walking up.
            auto it = preds_.find(block);
            if (it != preds_.end()) {
                for (const ir::BasicBlock *pred : it->second)
                    worklist.push_back(pred);
            }
        }
        if (!secondary)
            primary.insert(marker);
    }
    return primary;
}

std::set<unsigned>
primaryMissedMarkers(const ir::Module &lowered,
                     const std::set<unsigned> &missed,
                     const GroundTruth &truth)
{
    if (missed.empty() || !truth.valid)
        return {};
    return PrimaryAnalysis(lowered).primary(missed);
}

std::set<unsigned>
primaryMissedMarkers(const Instrumented &prog,
                     const std::set<unsigned> &missed,
                     const GroundTruth &truth)
{
    if (missed.empty() || !truth.valid)
        return {};
    auto module = ir::lowerToIr(*prog.unit);
    return primaryMissedMarkers(*module, missed, truth);
}

} // namespace dce::core
