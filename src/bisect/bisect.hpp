/**
 * @file
 * Regression bisection over a compiler's commit history — the `git
 * bisect` step of §4.2's "missed optimization diversity" analysis.
 * Given a program with a truly-dead marker that an older build
 * eliminates and a newer build misses, find the first offending commit
 * and report its component/file metadata (Tables 3 and 4).
 */
#pragma once

#include <cstddef>
#include <optional>

#include "compiler/compiler.hpp"
#include "lang/ast.hpp"
#include "support/events.hpp"

namespace dce::bisect {

/**
 * How a bisection ended. Everything but Found is an endpoint-
 * validation failure, each with a different remedy: AlreadyBadAtGood
 * wants an older good endpoint (or the miss predates the range),
 * NotBadAtBad means the regression does not reproduce at the bad
 * endpoint (stale finding, wrong level), EmptyRange is a degenerate
 * request (good >= bad).
 */
enum class BisectStatus {
    Found,            ///< endpoints validated; firstBad/commit are set
    AlreadyBadAtGood, ///< marker already missed at the good endpoint
    NotBadAtBad,      ///< marker not missed at the bad endpoint
    EmptyRange,       ///< good >= bad: nothing to search
};

/** Stable label for @p status (reports / logs). */
const char *bisectStatusName(BisectStatus status);

struct BisectResult {
    BisectStatus status = BisectStatus::EmptyRange;
    bool valid = false;      ///< status == Found (legacy convenience)
    size_t firstBad = 0;     ///< first commit index that misses
    const compiler::Commit *commit = nullptr;
};

/** Is @p marker present in the assembly of the given build? */
bool markerMissedAt(compiler::CompilerId id, compiler::OptLevel level,
                    size_t commit_index,
                    const lang::TranslationUnit &unit, unsigned marker);

/**
 * Binary-search the first commit in (good, bad] at which @p marker is
 * missed. @pre marker eliminated at @p good, missed at @p bad (checked
 * — result.status says which endpoint check failed; valid is true only
 * for BisectStatus::Found). When @p events is set, one bisect_resolved
 * event keyed by the marker records the outcome (DESIGN.md §12).
 */
BisectResult bisectRegression(compiler::CompilerId id,
                              compiler::OptLevel level,
                              const lang::TranslationUnit &unit,
                              unsigned marker, size_t good, size_t bad,
                              support::EventSink *events = nullptr);

} // namespace dce::bisect
