/**
 * @file
 * Regression bisection over a compiler's commit history — the `git
 * bisect` step of §4.2's "missed optimization diversity" analysis.
 * Given a program with a truly-dead marker that an older build
 * eliminates and a newer build misses, find the first offending commit
 * and report its component/file metadata (Tables 3 and 4).
 */
#pragma once

#include <cstddef>
#include <optional>

#include "compiler/compiler.hpp"
#include "lang/ast.hpp"

namespace dce::bisect {

struct BisectResult {
    bool valid = false;      ///< endpoints behaved as assumed
    size_t firstBad = 0;     ///< first commit index that misses
    const compiler::Commit *commit = nullptr;
};

/** Is @p marker present in the assembly of the given build? */
bool markerMissedAt(compiler::CompilerId id, compiler::OptLevel level,
                    size_t commit_index,
                    const lang::TranslationUnit &unit, unsigned marker);

/**
 * Binary-search the first commit in (good, bad] at which @p marker is
 * missed. @pre marker eliminated at @p good, missed at @p bad (checked
 * — result.valid is false otherwise).
 */
BisectResult bisectRegression(compiler::CompilerId id,
                              compiler::OptLevel level,
                              const lang::TranslationUnit &unit,
                              unsigned marker, size_t good, size_t bad);

} // namespace dce::bisect
