#include "bisect/bisect.hpp"

#include "core/analysis.hpp"

namespace dce::bisect {

bool
markerMissedAt(compiler::CompilerId id, compiler::OptLevel level,
               size_t commit_index, const lang::TranslationUnit &unit,
               unsigned marker)
{
    compiler::Compiler comp(id, level, commit_index);
    return core::aliveMarkers(unit, comp).count(marker) != 0;
}

const char *
bisectStatusName(BisectStatus status)
{
    switch (status) {
    case BisectStatus::Found:
        return "found";
    case BisectStatus::AlreadyBadAtGood:
        return "already-bad-at-good";
    case BisectStatus::NotBadAtBad:
        return "not-bad-at-bad";
    case BisectStatus::EmptyRange:
        return "empty-range";
    }
    return "unknown";
}

namespace {

/** One bisect_resolved event keyed by the marker under bisection. */
void
emitResolved(support::EventSink *events, unsigned marker, size_t good,
             size_t bad, const BisectResult &result)
{
    if (!events)
        return;
    support::Event event("bisect_resolved",
                         {support::kPhaseBisect, marker, 0});
    event.num("marker", marker)
        .num("good", good)
        .num("bad", bad)
        .str("status", bisectStatusName(result.status));
    if (result.valid) {
        event.num("first_bad", result.firstBad)
            .str("commit", result.commit->hash);
    }
    events->emit(std::move(event));
}

} // namespace

BisectResult
bisectRegression(compiler::CompilerId id, compiler::OptLevel level,
                 const lang::TranslationUnit &unit, unsigned marker,
                 size_t good, size_t bad, support::EventSink *events)
{
    const size_t first_good = good;
    const size_t first_bad = bad;
    BisectResult result;
    if (good >= bad) {
        result.status = BisectStatus::EmptyRange;
        emitResolved(events, marker, first_good, first_bad, result);
        return result;
    }
    if (markerMissedAt(id, level, good, unit, marker)) {
        result.status = BisectStatus::AlreadyBadAtGood;
        emitResolved(events, marker, first_good, first_bad, result);
        return result;
    }
    if (!markerMissedAt(id, level, bad, unit, marker)) {
        result.status = BisectStatus::NotBadAtBad;
        emitResolved(events, marker, first_good, first_bad, result);
        return result;
    }

    while (bad - good > 1) {
        size_t mid = good + (bad - good) / 2;
        if (markerMissedAt(id, level, mid, unit, marker))
            bad = mid;
        else
            good = mid;
    }
    result.status = BisectStatus::Found;
    result.valid = true;
    result.firstBad = bad;
    result.commit = &compiler::spec(id).history()[bad];
    emitResolved(events, marker, first_good, first_bad, result);
    return result;
}

} // namespace dce::bisect
