#include "serve/dashboard.hpp"

namespace dce::serve {

namespace {

// One document, zero external resources. The page keeps its own
// rolling window client-side and fetches /timeseries incrementally
// via the ?since= cursor, so a long-open tab stays cheap for the
// server. Quoted-decimal JSON fields ("12.345") are Number()-parsed.
constexpr const char kDashboardHtml[] = R"html(<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>campaign dashboard</title>
<style>
body{font-family:monospace;background:#111;color:#ddd;margin:1em}
h1{font-size:1.1em}h2{font-size:0.95em;margin:0.2em 0;color:#9cf}
.grid{display:flex;flex-wrap:wrap;gap:1em}
.panel{background:#1a1a1a;border:1px solid #333;padding:0.6em;
border-radius:4px;min-width:320px}
.big{font-size:1.6em;color:#fff}
.dim{color:#888;font-size:0.85em}
svg{display:block;margin-top:0.3em}
polyline{fill:none;stroke:#6cf;stroke-width:1.5}
table{border-collapse:collapse;font-size:0.85em}
td,th{border:1px solid #333;padding:0.15em 0.5em;text-align:right}
th{color:#9cf}td:first-child,th:first-child{text-align:left}
#err{color:#f66}
</style></head><body>
<h1>campaign dashboard
<span class="dim" id="updated"></span><span id="err"></span></h1>
<div class="grid">
<div class="panel"><h2>progress</h2>
<div class="big" id="pct">-</div><div class="dim" id="prog"></div>
<div class="dim" id="eta"></div></div>
<div class="panel"><h2>seeds/s</h2>
<div class="big" id="rate">-</div><svg id="s_rate" width="300"
height="60"></svg></div>
<div class="panel"><h2>findings</h2>
<div class="big" id="findings">-</div><svg id="s_findings"
width="300" height="60"></svg></div>
<div class="panel"><h2>cache hit rate</h2>
<div class="big" id="cache">-</div><svg id="s_cache" width="300"
height="60"></svg></div>
<div class="panel"><h2>stage p99 (&#181;s)</h2>
<table id="stages"><tr><th>stage</th><th>p99</th></tr></table>
<svg id="s_stage" width="300" height="60"></svg>
<div class="dim">sparkline: compile stage</div></div>
<div class="panel"><h2>fleet</h2>
<div id="fleet" class="dim">no fleet</div></div>
</div>
<script>
"use strict";
var points = [], cursor = 0, MAX = 300;
function spark(id, values) {
  var svg = document.getElementById(id);
  if (!values.length) { svg.innerHTML = ""; return; }
  var w = 300, h = 60, pad = 2;
  var max = Math.max.apply(null, values), min = 0;
  if (max <= min) max = min + 1;
  var pts = values.map(function (v, i) {
    var x = pad + (w - 2 * pad) * (values.length === 1 ? 1
              : i / (values.length - 1));
    var y = h - pad - (h - 2 * pad) * ((v - min) / (max - min));
    return x.toFixed(1) + "," + y.toFixed(1);
  });
  svg.innerHTML = '<polyline points="' + pts.join(" ") + '"/>';
}
function num(v) { return v == null ? 0 : Number(v); }
function text(id, s) { document.getElementById(id).textContent = s; }
function getJson(url) {
  return fetch(url).then(function (r) {
    if (!r.ok) throw new Error(url + " " + r.status);
    return r.json();
  });
}
function refreshSeries() {
  return getJson("/timeseries?since=" + cursor).then(function (ts) {
    cursor = ts.next;
    points = points.concat(ts.points).slice(-MAX);
    var last = points[points.length - 1];
    if (!last) return;
    text("rate", num(last.seeds_per_sec).toFixed(1));
    text("findings", String(last.findings));
    text("cache", (100 * num(last.cache_hit_rate)).toFixed(1) + "%");
    spark("s_rate", points.map(function (p) {
      return num(p.seeds_per_sec); }));
    spark("s_findings", points.map(function (p) {
      return p.findings; }));
    spark("s_cache", points.map(function (p) {
      return num(p.cache_hit_rate); }));
    spark("s_stage", points.map(function (p) {
      return num(p.stage_p99_us.compile); }));
    var rows = "<tr><th>stage</th><th>p99</th></tr>";
    Object.keys(last.stage_p99_us).forEach(function (stage) {
      rows += "<tr><td>" + stage + "</td><td>" +
              num(last.stage_p99_us[stage]).toFixed(1) +
              "</td></tr>";
    });
    rows += "<tr><td>serve request</td><td>" +
            num(last.serve_p99_us).toFixed(1) + "</td></tr>";
    document.getElementById("stages").innerHTML = rows;
  });
}
function refreshProgress() {
  return getJson("/progress").then(function (p) {
    var pct = p.seeds_total
        ? (100 * p.seeds_committed / p.seeds_total) : 0;
    text("pct", pct.toFixed(1) + "%");
    text("prog", p.seeds_committed + "/" + p.seeds_total +
        " seeds, " + p.completed_chunks + "/" + p.chunks_total +
        " chunks" + (p.complete ? " (complete)" : ""));
    text("eta", p.eta_seconds == null ? "eta unknown"
        : "eta " + num(p.eta_seconds).toFixed(0) + "s");
  });
}
function refreshFleet() {
  return getJson("/fleet").then(function (f) {
    document.getElementById("fleet").textContent =
        JSON.stringify(f, null, 1);
  }).catch(function () {});
}
function tick() {
  Promise.all([refreshSeries(), refreshProgress(), refreshFleet()])
    .then(function () {
      text("err", "");
      text("updated", " updated " +
          new Date().toLocaleTimeString());
    })
    .catch(function (e) { text("err", " " + e.message); });
}
tick();
setInterval(tick, 2000);
</script></body></html>
)html";

} // namespace

std::string
dashboardHtml()
{
    return kDashboardHtml;
}

} // namespace dce::serve
