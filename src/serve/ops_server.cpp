#include "serve/ops_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "corpus/json.hpp"
#include "report/dossier.hpp"
#include "report/report.hpp"
#include "serve/dashboard.hpp"

namespace dce::serve {

namespace {

constexpr const char *kJsonContentType =
    "application/json; charset=utf-8";
constexpr const char *kMarkdownContentType =
    "text/markdown; charset=utf-8";
constexpr const char *kHtmlContentType = "text/html; charset=utf-8";

HttpResponse
jsonResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.contentType = kJsonContentType;
    response.body = std::move(body);
    return response;
}

/** JSON has no integer-safe doubles; format rates explicitly. */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

/** {"count":N,"p50":"..","p90":"..","p99":".."} for one histogram. */
void
appendPercentiles(corpus::JsonWriter &writer,
                  const support::MetricsRegistry::HistogramSnapshot
                      &snapshot)
{
    writer.beginObject();
    writer.field("count", snapshot.count);
    writer.field("p50",
                 formatDouble(support::Histogram::percentileFromBuckets(
                     snapshot.buckets, snapshot.count, 0.5)));
    writer.field("p90",
                 formatDouble(support::Histogram::percentileFromBuckets(
                     snapshot.buckets, snapshot.count, 0.9)));
    writer.field("p99",
                 formatDouble(support::Histogram::percentileFromBuckets(
                     snapshot.buckets, snapshot.count, 0.99)));
    writer.endObject();
}

/** The /progress "latency" block: per-stage campaign.stage_us
 * percentiles plus serve.request_us (DESIGN.md §17). */
void
appendLatency(corpus::JsonWriter &writer,
              const support::MetricsRegistry &registry)
{
    constexpr std::string_view prefix = "campaign.stage_us{";
    writer.key("latency");
    writer.beginObject();
    writer.key("stage_us");
    writer.beginObject();
    support::MetricsRegistry::HistogramSnapshot serve_snapshot;
    for (const auto &[key, snapshot] : registry.histograms()) {
        if (key.compare(0, prefix.size(), prefix) == 0 &&
            key.back() == '}') {
            writer.key(key.substr(prefix.size(),
                                  key.size() - prefix.size() - 1));
            appendPercentiles(writer, snapshot);
        } else if (key == "serve.request_us") {
            serve_snapshot = snapshot;
        }
    }
    writer.endObject();
    writer.key("serve_request_us");
    appendPercentiles(writer, serve_snapshot);
    writer.endObject();
}

HttpResponse
storeFailure(const corpus::StoreError &error)
{
    // A store without a checkpoint is an expected pre-first-commit
    // state, not a server fault.
    if (error.status == corpus::StoreStatus::NoCheckpoint)
        return HttpResponse::text(404, "no checkpoint yet\n");
    return HttpResponse::text(500,
                              "store error: " + error.message + "\n");
}

} // namespace

OpsServer::OpsServer(OpsServerOptions options)
    : options_(options),
      http_(
          [this](const HttpRequest &request) {
              return handle(request);
          },
          [&options] {
              HttpServerOptions http;
              http.port = options.port;
              http.handlerThreads = options.handlerThreads;
              http.metrics = options.metrics;
              return http;
          }())
{
}

OpsServer::~OpsServer()
{
    stop();
}

bool
OpsServer::start(std::string *error)
{
    return http_.start(error);
}

void
OpsServer::stop()
{
    http_.stop();
}

bool
OpsServer::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    return shutdownRequested_;
}

bool
OpsServer::waitForShutdownRequest(uint64_t timeout_ms)
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    if (timeout_ms == 0) {
        shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
    } else {
        shutdownCv_.wait_for(lock,
                             std::chrono::milliseconds(timeout_ms),
                             [this] { return shutdownRequested_; });
    }
    return shutdownRequested_;
}

HttpResponse
OpsServer::handle(const HttpRequest &request)
{
    const std::string &path = request.path;
    if (path == "/metrics")
        return metricsEndpoint();
    if (path == "/healthz")
        return HttpResponse::text(200, "ok\n");
    if (path == "/readyz")
        return readyzEndpoint();
    if (path == "/progress")
        return progressEndpoint();
    if (path == "/report")
        return reportEndpoint(false);
    if (path == "/report.html")
        return reportEndpoint(true);
    if (path == "/dossiers")
        return dossierIndexEndpoint();
    if (path.rfind("/dossier/", 0) == 0)
        return dossierEndpoint(request);
    if (path == "/events")
        return eventsEndpoint(request);
    if (path == "/equiv")
        return equivEndpoint();
    if (path == "/fleet")
        return fleetEndpoint();
    if (path == "/timeseries")
        return timeseriesEndpoint(request);
    if (path == "/dashboard") {
        HttpResponse response;
        response.contentType = kHtmlContentType;
        response.body = dashboardHtml();
        return response;
    }
    if (path == "/quitquitquit" && options_.allowRemoteShutdown)
        return quitEndpoint();
    return HttpResponse::text(404, "not found\n");
}

HttpResponse
OpsServer::metricsEndpoint() const
{
    support::MetricsRegistry &registry =
        options_.metrics ? *options_.metrics
                         : support::MetricsRegistry::global();
    HttpResponse response;
    response.contentType = support::kPrometheusContentType;
    if (options_.fleet) {
        // Coordinator mode: one exposition covering the whole fleet —
        // this process's own instruments plus every worker's latest
        // dump, folded into a per-request scratch registry so a
        // scrape never mutates durable state.
        support::MetricsRegistry merged;
        merged.merge(registry);
        options_.fleet->mergeWorkerMetrics(merged);
        response.body = merged.expose();
    } else {
        response.body = registry.expose();
    }
    return response;
}

HttpResponse
OpsServer::readyzEndpoint() const
{
    if (options_.watchdog && options_.watchdog->stalled())
        return HttpResponse::text(
            503, "stalled: watchdog fired, no recent progress\n");
    if (options_.throughput && options_.throughput->degraded())
        return HttpResponse::text(
            503, "degraded: throughput below baseline\n");
    return HttpResponse::text(200, "ready\n");
}

HttpResponse
OpsServer::progressEndpoint() const
{
    if (!options_.status && !options_.fleet)
        return HttpResponse::text(404,
                                  "no campaign status attached\n");
    corpus::CampaignStatusBoard::Snapshot snap =
        options_.status ? options_.status->read()
                        : options_.fleet->progress();

    // Pipeline rate from the committed stage time: how fast seeds
    // clear generate+oracle+compile+analyze, independent of thread
    // count. The ETA scales it by the worker count implied by
    // wall-clock elapsed vs pipeline time, so it tracks actual
    // progress rather than single-thread cost.
    double stage_seconds = double(snap.stageUs) / 1e6;
    double rate = stage_seconds > 0.0
                      ? double(snap.seedsCommitted) / stage_seconds
                      : 0.0;
    double wall_seconds =
        snap.updateUs > snap.startUs
            ? double(snap.updateUs - snap.startUs) / 1e6
            : 0.0;
    uint64_t remaining = snap.seedsTotal > snap.seedsCommitted
                             ? snap.seedsTotal - snap.seedsCommitted
                             : 0;
    double parallelism =
        wall_seconds > 0.0 && stage_seconds > 0.0
            ? stage_seconds / wall_seconds
            : 1.0;
    // "ETA unknown" and "ETA zero" are different answers: with no
    // committed pipeline time yet (rate 0) there is nothing to
    // extrapolate from, and reporting 0.0 would make a just-started
    // campaign read as finished. Unknown serializes as null; 0.0 is
    // reserved for "nothing remaining".
    bool eta_known = rate > 0.0 || remaining == 0;
    double eta_seconds =
        rate > 0.0 && remaining
            ? double(remaining) /
                  (rate * (parallelism > 0.0 ? parallelism : 1.0))
            : 0.0;

    corpus::JsonWriter writer;
    writer.beginObject();
    writer.field("active", snap.active);
    writer.field("complete", snap.complete);
    writer.field("plan_hash", snap.planHash);
    writer.field("seeds_total", snap.seedsTotal);
    writer.field("chunks_total", snap.chunksTotal);
    writer.field("completed_chunks", snap.completedChunks);
    writer.field("watermark", snap.watermark);
    writer.field("seeds_committed", snap.seedsCommitted);
    writer.field("findings", snap.findings);
    writer.field("checkpoints", snap.checkpoints);
    writer.field("stage_us", snap.stageUs);
    // Latency percentiles over the live registry — fleet mode folds
    // every worker's latest dump so the percentiles cover the whole
    // fleet (same scratch-merge discipline as /metrics).
    {
        support::MetricsRegistry &registry =
            options_.metrics ? *options_.metrics
                             : support::MetricsRegistry::global();
        if (options_.fleet) {
            support::MetricsRegistry merged;
            merged.merge(registry);
            options_.fleet->mergeWorkerMetrics(merged);
            appendLatency(writer, merged);
        } else {
            appendLatency(writer, registry);
        }
    }
    // Quoted decimals: the in-tree JSON reader (and the checkpoint
    // format it serves) is integer-only, and jq's `tonumber` covers
    // shell consumers.
    writer.field("seeds_per_pipeline_second", formatDouble(rate));
    if (eta_known) {
        writer.field("eta_seconds", formatDouble(eta_seconds));
    } else {
        writer.key("eta_seconds");
        writer.null();
    }
    writer.endObject();
    return jsonResponse(200, writer.take() + "\n");
}

HttpResponse
OpsServer::reportEndpoint(bool html) const
{
    if (!options_.store)
        return HttpResponse::text(404, "no store attached\n");
    corpus::StoreError error;
    std::optional<report::CampaignReportData> data =
        report::collectReportData(*options_.store, &error);
    if (!data)
        return storeFailure(error);
    // Exactly the writeCampaignReport render paths, so the served
    // bytes equal the on-disk report.md / report.html for the same
    // store state.
    std::string markdown =
        report::renderCampaignReportMarkdown(*data);
    HttpResponse response;
    if (html) {
        response.contentType = kHtmlContentType;
        response.body =
            report::markdownToHtml(markdown, "Campaign report");
    } else {
        response.contentType = kMarkdownContentType;
        response.body = std::move(markdown);
    }
    return response;
}

HttpResponse
OpsServer::equivEndpoint() const
{
    if (!options_.store)
        return HttpResponse::text(404, "no store attached\n");
    // The stored line is already sealed JSON — serve it verbatim, so
    // the served bytes equal equiv.json on disk (same contract as
    // /report vs report.md).
    std::optional<std::string> line =
        options_.store->readEquivState();
    if (!line)
        return HttpResponse::text(404, "no metamorphic analysis\n");
    return jsonResponse(200, *line + "\n");
}

HttpResponse
OpsServer::dossierIndexEndpoint() const
{
    if (!options_.store)
        return HttpResponse::text(404, "no store attached\n");
    corpus::StoreError error;
    std::optional<report::CampaignReportData> data =
        report::collectReportData(*options_.store, &error);
    if (!data)
        return storeFailure(error);

    corpus::JsonWriter writer;
    writer.beginObject();
    writer.field("findings", uint64_t(data->state.findings.size()));
    writer.key("dossiers");
    writer.beginArray();
    for (size_t i = 0; i < data->state.findings.size(); ++i) {
        const corpus::StoredFinding &stored = data->state.findings[i];
        writer.beginObject();
        writer.field("index", uint64_t(i));
        writer.field("fingerprint", data->fingerprints[i]);
        writer.field("seed", stored.finding.seed);
        writer.field("marker", uint64_t(stored.finding.marker));
        writer.field("chunk", stored.chunk);
        writer.field("slot", stored.slot);
        writer.field("missed_by", stored.finding.missedBy.name());
        writer.field("reference", stored.finding.reference.name());
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return jsonResponse(200, writer.take() + "\n");
}

HttpResponse
OpsServer::dossierEndpoint(const HttpRequest &request) const
{
    if (!options_.store)
        return HttpResponse::text(404, "no store attached\n");
    std::string fingerprint =
        request.path.substr(std::string_view("/dossier/").size());
    if (fingerprint.empty())
        return HttpResponse::text(404, "missing fingerprint\n");

    std::string format =
        request.queryParam("format").value_or("json");
    if (format != "json" && format != "md")
        return HttpResponse::text(
            400, "bad request: format must be json or md\n");

    corpus::StoreError error;
    std::optional<report::Dossier> dossier = report::buildDossier(
        *options_.store, options_.events, fingerprint, &error);
    if (!dossier) {
        if (error.status == corpus::StoreStatus::NotFound)
            return HttpResponse::text(
                404, "no finding with that fingerprint\n");
        return storeFailure(error);
    }
    HttpResponse response;
    if (format == "md") {
        response.contentType = kMarkdownContentType;
        response.body = report::dossierMarkdown(*dossier);
    } else {
        response.contentType = kJsonContentType;
        response.body = report::dossierJson(*dossier);
    }
    return response;
}

HttpResponse
OpsServer::eventsEndpoint(const HttpRequest &request) const
{
    if (!options_.events)
        return HttpResponse::text(404, "no event log attached\n");

    uint64_t since = 0;
    if (std::optional<std::string> raw = request.queryParam("since")) {
        char *end = nullptr;
        since = std::strtoull(raw->c_str(), &end, 10);
        if (!end || *end != '\0')
            return HttpResponse::text(
                400, "bad request: since must be an integer\n");
    }
    uint64_t limit = options_.eventsPageSize;
    if (std::optional<std::string> raw = request.queryParam("limit")) {
        char *end = nullptr;
        limit = std::strtoull(raw->c_str(), &end, 10);
        if (!end || *end != '\0' || limit == 0)
            return HttpResponse::text(
                400, "bad request: limit must be a positive integer\n");
        limit = std::min(limit, options_.eventsPageSize);
    }

    size_t total = 0;
    std::vector<support::Event> page =
        options_.events->tail(size_t(since), size_t(limit), &total);

    std::string body = "{\"total\":" + std::to_string(total) +
                       ",\"since\":" + std::to_string(since) +
                       ",\"next\":" +
                       std::to_string(since + page.size()) +
                       ",\"events\":[";
    for (size_t i = 0; i < page.size(); ++i) {
        if (i)
            body += ',';
        page[i].appendJson(body);
    }
    body += "]}\n";
    return jsonResponse(200, std::move(body));
}

HttpResponse
OpsServer::fleetEndpoint() const
{
    if (!options_.fleet)
        return HttpResponse::text(404, "no fleet attached\n");
    return jsonResponse(200, options_.fleet->fleetJson() + "\n");
}

HttpResponse
OpsServer::timeseriesEndpoint(const HttpRequest &request) const
{
    if (!options_.timeseries)
        return HttpResponse::text(404, "no time series attached\n");
    uint64_t since = 0;
    if (std::optional<std::string> raw = request.queryParam("since")) {
        char *end = nullptr;
        since = std::strtoull(raw->c_str(), &end, 10);
        if (!end || *end != '\0')
            return HttpResponse::text(
                400, "bad request: since must be an integer\n");
    }
    return jsonResponse(
        200, support::timeSeriesJson(*options_.timeseries, since) +
                 "\n");
}

HttpResponse
OpsServer::quitEndpoint()
{
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
    return HttpResponse::text(200, "shutting down\n");
}

} // namespace dce::serve
