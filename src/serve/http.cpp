#include "serve/http.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace dce::serve {

namespace {

/** How long a connected client may dawdle before we give up on it —
 * bounds how long stop() can be held up by a wedged peer. */
constexpr int kSocketTimeoutSec = 5;

/** Accept-loop poll cadence: the latency ceiling on noticing stop(). */
constexpr int kAcceptPollMs = 50;

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

bool
sendAll(int fd, std::string_view bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a client that hangs up mid-response must not
        // SIGPIPE the whole process.
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += size_t(n);
    }
    return true;
}

} // namespace

std::optional<std::string>
percentDecode(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            out += text[i];
            continue;
        }
        if (i + 2 >= text.size())
            return std::nullopt;
        int hi = hexValue(text[i + 1]);
        int lo = hexValue(text[i + 2]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out += char(hi * 16 + lo);
        i += 2;
    }
    return out;
}

std::optional<std::string>
HttpRequest::queryParam(std::string_view name) const
{
    size_t begin = 0;
    while (begin <= query.size()) {
        size_t end = query.find('&', begin);
        if (end == std::string::npos)
            end = query.size();
        std::string_view pair =
            std::string_view(query).substr(begin, end - begin);
        size_t eq = pair.find('=');
        std::string_view key =
            eq == std::string_view::npos ? pair : pair.substr(0, eq);
        if (key == name) {
            std::string_view raw = eq == std::string_view::npos
                                       ? std::string_view{}
                                       : pair.substr(eq + 1);
            return percentDecode(raw);
        }
        if (end == query.size())
            break;
        begin = end + 1;
    }
    return std::nullopt;
}

bool
readRequestHead(int fd, size_t max_bytes, std::string &head,
                bool &line_complete)
{
    line_complete = false;
    while (head.size() < max_bytes) {
        char buffer[2048];
        size_t room = std::min(sizeof buffer, max_bytes - head.size());
        ssize_t n = ::recv(fd, buffer, room, 0);
        if (n < 0 && errno == EINTR)
            continue; // same retry discipline as the send path
        if (n <= 0)
            break; // timeout, reset, or EOF before the head ended
        head.append(buffer, size_t(n));
        if (head.find("\r\n") != std::string::npos ||
            head.find('\n') != std::string::npos)
            line_complete = true;
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            return true;
    }
    return false;
}

HttpResponse
HttpResponse::text(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 414:
        return "URI Too Long";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options)
{
    support::MetricsRegistry &registry =
        options_.metrics ? *options_.metrics
                         : support::MetricsRegistry::global();
    requests_ = &registry.counter("serve.requests");
    requestUs_ = &registry.histogram("serve.request_us");
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::running() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return running_;
}

uint64_t
HttpServer::requestsServed() const
{
    return served_.load(std::memory_order_relaxed);
}

bool
HttpServer::start(std::string *error)
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (running_)
        return true;

    auto fail = [&](const char *what) {
        if (error)
            *error = std::string(what) + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback only: the ops surface is an operator's port, not a
    // public one; fronting proxies can forward if remote access is
    // actually wanted.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("bind");
    if (::listen(listenFd_, 64) != 0)
        return fail("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    stopRequested_.store(false);
    pool_ = std::make_unique<support::ThreadPool>(
        std::max(1u, options_.handlerThreads));
    acceptor_ = std::thread([this] { acceptLoop(); });
    running_ = true;
    return true;
}

void
HttpServer::stop()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (!running_)
        return;
    stopRequested_.store(true);
    acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    // Drain: every connection already accepted (queued or running in
    // the pool) gets its response before stop() returns.
    pool_->wait();
    pool_.reset();
    running_ = false;
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kAcceptPollMs);
        if (stopRequested_.load())
            return;
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        pool_->submit([this, fd] { handleConnection(fd); });
    }
}

void
HttpServer::handleConnection(int fd)
{
    auto started = std::chrono::steady_clock::now();
    timeval timeout{kSocketTimeoutSec, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                 sizeof timeout);

    // Read the request head: everything up to the blank line. The
    // server never reads a body (GET only), so the head is the whole
    // request.
    std::string head;
    bool line_complete = false;
    bool complete = readRequestHead(fd, options_.maxRequestBytes, head,
                                    line_complete);

    HttpResponse response;
    if (!complete) {
        // An overlong request line gets the specific 414; any other
        // truncated/oversized head is a plain bad request.
        response = HttpResponse::text(
            line_complete ? 400 : 414,
            line_complete ? "bad request: oversized header block\n"
                          : "request line too long\n");
    } else {
        size_t line_end = head.find_first_of("\r\n");
        std::string request_line = head.substr(0, line_end);
        size_t method_end = request_line.find(' ');
        size_t target_end =
            method_end == std::string::npos
                ? std::string::npos
                : request_line.find(' ', method_end + 1);
        if (method_end == std::string::npos ||
            target_end == std::string::npos ||
            request_line.compare(target_end + 1, 5, "HTTP/") != 0) {
            response =
                HttpResponse::text(400, "malformed request line\n");
        } else {
            HttpRequest request;
            request.method = request_line.substr(0, method_end);
            std::string target = request_line.substr(
                method_end + 1, target_end - method_end - 1);
            size_t question = target.find('?');
            if (question != std::string::npos) {
                request.query = target.substr(question + 1);
                target.resize(question);
            }
            std::optional<std::string> path = percentDecode(target);
            if (request.method != "GET") {
                // The target parsed fine; the method is what's wrong
                // — say so precisely (405 + Allow) instead of a
                // generic 400, so clients can tell a bad tool apart
                // from a bad request.
                response = HttpResponse::text(
                    405, "method not allowed: only GET is "
                         "supported\n");
                response.headers.emplace_back("Allow", "GET");
            } else if (!path || path->empty() ||
                       (*path)[0] != '/') {
                response = HttpResponse::text(
                    400, "bad request: malformed target\n");
            } else {
                request.path = std::move(*path);
                try {
                    response = handler_(request);
                } catch (const std::exception &e) {
                    response = HttpResponse::text(
                        500, std::string("handler error: ") +
                                 e.what() + "\n");
                } catch (...) {
                    response =
                        HttpResponse::text(500, "handler error\n");
                }
            }
        }
    }

    std::string wire = "HTTP/1.1 " + std::to_string(response.status) +
                       " " + httpStatusReason(response.status) +
                       "\r\nContent-Type: " + response.contentType +
                       "\r\nContent-Length: " +
                       std::to_string(response.body.size());
    for (const auto &[name, value] : response.headers)
        wire += "\r\n" + name + ": " + value;
    wire += "\r\nConnection: close\r\n\r\n";
    wire += response.body;
    sendAll(fd, wire);
    ::close(fd);

    served_.fetch_add(1, std::memory_order_relaxed);
    requests_->add();
    requestUs_->observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
    support::MetricsRegistry &registry =
        options_.metrics ? *options_.metrics
                         : support::MetricsRegistry::global();
    registry
        .counter("serve.responses", std::to_string(response.status))
        .add();
}

} // namespace dce::serve
