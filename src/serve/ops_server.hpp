/**
 * @file
 * Live campaign operations server (DESIGN.md §14): composes the
 * existing telemetry subsystems behind HTTP endpoints served *while a
 * campaign runs*, turning the PR-5 post-mortem artifacts into a live
 * surface:
 *
 *     GET /metrics        Prometheus text (MetricsRegistry::expose())
 *     GET /healthz        process liveness (always 200 once serving)
 *     GET /readyz         503 while the Watchdog stall latch is fired
 *     GET /progress       JSON checkpoint-committed progress + rates
 *     GET /report         live campaign report, Markdown
 *     GET /report.html    the same report, rendered HTML
 *     GET /dossiers       JSON index of checkpointed findings
 *     GET /dossier/<fp>   one finding's dossier (?format=md|json)
 *     GET /events?since=N cursor-paged tail of the structured log
 *     GET /fleet          fleet workers + leases (coordinator mode)
 *     GET /timeseries     JSON liveness samples (?since=N cursor)
 *     GET /dashboard      self-contained HTML live dashboard
 *     GET /quitquitquit   request shutdown (only when enabled)
 *
 * Consistency model: every endpoint reads checkpoint-committed state
 * only. /progress serves the CampaignStatusBoard snapshot that
 * runCheckpointed publishes at each checkpoint commit (the same
 * moment the campaign.progress counters are set, so /progress and
 * /metrics agree); /report and /dossier read the store through
 * exactly the code paths writeCampaignReport uses, and the report
 * generator filters records to checkpoint-completed chunks — served
 * bytes equal the on-disk render of the same store, and in-flight
 * chunk state is never observable.
 *
 * The one deliberate exception is /timeseries (and the /dashboard
 * that reads it): liveness samples are wall-clock-stamped,
 * best-effort, and never checkpointed (DESIGN.md §17) — they exist to
 * answer "what is happening right now", not to replay determinism.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "report/anomaly.hpp"
#include "report/event_log.hpp"
#include "report/watchdog.hpp"
#include "serve/http.hpp"
#include "support/timeseries.hpp"

namespace dce::serve {

/**
 * Aggregated multi-process view for a fleet coordinator's ops server
 * (DESIGN.md §15). The coordinator implements this; wiring it into
 * OpsServerOptions::fleet switches /progress to the fleet-wide
 * snapshot, makes /metrics fold every worker's latest registry dump
 * into the exposition, and enables GET /fleet. Implementations must
 * be thread-safe — handler threads call them concurrently with the
 * coordinator's supervision loop.
 */
class FleetOpsSource {
  public:
    virtual ~FleetOpsSource() = default;

    /** Fleet-wide progress snapshot (lease-committed state). */
    virtual corpus::CampaignStatusBoard::Snapshot
    progress() const = 0;

    /** Fold every worker's latest metrics dump into @p into. */
    virtual void
    mergeWorkerMetrics(support::MetricsRegistry &into) const = 0;

    /** JSON body for GET /fleet: workers + leases + totals. */
    virtual std::string fleetJson() const = 0;
};

struct OpsServerOptions {
    /** Loopback TCP port; 0 = ephemeral (read back via port()). */
    uint16_t port = 0;
    unsigned handlerThreads = 4;
    /** Registry behind /metrics and the serve.* counters; null = the
     * process global. */
    support::MetricsRegistry *metrics = nullptr;
    /** Store behind /report, /dossiers, /dossier; null disables those
     * endpoints (404). The store is shared with the running campaign —
     * its own mutex makes the reads safe. */
    corpus::CorpusStore *store = nullptr;
    /** Event log behind /events and dossier trajectories; null
     * disables /events (404). */
    const report::EventLog *events = nullptr;
    /** Watchdog behind /readyz; null = always ready. */
    const report::Watchdog *watchdog = nullptr;
    /** Status board behind /progress; null disables /progress (404).
     * Wire the same board into CheckpointRunOptions::status. */
    const corpus::CampaignStatusBoard *status = nullptr;
    /** Enable GET /quitquitquit (sets the shutdown-requested flag the
     * owner polls/waits on). Off by default: remote shutdown is a
     * deliberate opt-in for drills and --serve-wait runs. */
    bool allowRemoteShutdown = false;
    /** Page size cap for /events (also the default page size). */
    uint64_t eventsPageSize = 256;
    /** Fleet aggregation source (a coordinator); null = the
     * single-process endpoints only. When set and `status` is null,
     * /progress serves the fleet-wide snapshot, /metrics merges every
     * worker's dump on top of this server's own registry, and /fleet
     * serves the per-worker/per-lease detail. */
    const FleetOpsSource *fleet = nullptr;
    /** Liveness ring behind /timeseries and the /dashboard
     * sparklines; null disables /timeseries (404). Fed by a
     * support::TimeSeriesSampler the owner runs. */
    const support::TimeSeries *timeseries = nullptr;
    /** Throughput monitor consulted by /readyz alongside the
     * watchdog; null = never degraded. */
    const report::ThroughputMonitor *throughput = nullptr;
};

class OpsServer {
  public:
    explicit OpsServer(OpsServerOptions options);
    ~OpsServer(); ///< stops the HTTP server if running

    OpsServer(const OpsServer &) = delete;
    OpsServer &operator=(const OpsServer &) = delete;

    bool start(std::string *error = nullptr);
    void stop();
    uint16_t port() const { return http_.port(); }

    /** True once /quitquitquit has been hit (sticky). */
    bool shutdownRequested() const;
    /** Block until shutdownRequested(); @p timeout_ms 0 = forever.
     * Returns shutdownRequested(). */
    bool waitForShutdownRequest(uint64_t timeout_ms = 0);

    /** The routing core, exposed so tests can drive endpoints without
     * a socket. Thread-safe (it is the HttpServer handler). */
    HttpResponse handle(const HttpRequest &request);

  private:
    HttpResponse metricsEndpoint() const;
    HttpResponse readyzEndpoint() const;
    HttpResponse progressEndpoint() const;
    HttpResponse reportEndpoint(bool html) const;
    HttpResponse equivEndpoint() const;
    HttpResponse dossierIndexEndpoint() const;
    HttpResponse dossierEndpoint(const HttpRequest &request) const;
    HttpResponse eventsEndpoint(const HttpRequest &request) const;
    HttpResponse fleetEndpoint() const;
    HttpResponse timeseriesEndpoint(const HttpRequest &request) const;
    HttpResponse quitEndpoint();

    OpsServerOptions options_;
    HttpServer http_;

    mutable std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ = false;
};

} // namespace dce::serve
