/**
 * @file
 * Dependency-free embedded HTTP/1.1 server (DESIGN.md §14): the
 * transport under the campaign ops endpoints. POSIX sockets only — a
 * loopback listener, one accept thread, and a bounded
 * support::ThreadPool that runs the handler for each connection, so a
 * slow endpoint (a large /report render) never blocks accept and the
 * concurrency ceiling is explicit.
 *
 * Scope is deliberately small: GET requests, close-delimited
 * responses (`Connection: close` on every reply), no keep-alive, no
 * TLS, no body parsing. That covers every consumer the ops surface
 * has — curl, Prometheus scrapers, a browser — while keeping the
 * parser small enough to test exhaustively over a loopback socket.
 *
 * Shutdown contract: stop() closes the listener, then drains — every
 * request already accepted gets its response before stop() returns.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace dce::serve {

/** One parsed request. Only the request line is interpreted; headers
 * are read off the socket (to find the end of the head) but ignored. */
struct HttpRequest {
    std::string method; ///< "GET" — anything else is rejected upstream
    std::string path;   ///< percent-decoded, query stripped, e.g. "/metrics"
    std::string query;  ///< raw query string after '?', "" when absent

    /** Percent-decoded value of query parameter @p name, if present. */
    std::optional<std::string> queryParam(std::string_view name) const;
};

struct HttpResponse {
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    /** Extra response headers (name, value), serialized in order
     * after Content-Type/Content-Length — e.g. the `Allow: GET` a
     * 405 carries. Names and values are code-controlled. */
    std::vector<std::pair<std::string, std::string>> headers;

    static HttpResponse text(int status, std::string body);
};

/** Reason phrase for the status codes the server emits. */
const char *httpStatusReason(int status);

/** Percent-decode @p text (%XX only; '+' is left alone — query values
 * here are path-like, not form-encoded). nullopt on a malformed or
 * truncated escape. */
std::optional<std::string> percentDecode(std::string_view text);

/**
 * Read a request head (everything through the blank line) from @p fd
 * into @p head, reading at most @p max_bytes. Retries recv() on EINTR:
 * the serving process may be signal-heavy (a fleet coordinator reaping
 * SIGCHLD from dying workers), and a signal landing mid-request must
 * not abort the read. Returns true when the terminating blank line
 * arrived; @p line_complete reports whether at least the request-line
 * terminator arrived (it decides 400 vs 414 for oversized heads).
 * Exposed as a building block so signal-delivery tests can drive it
 * over a socketpair.
 */
bool readRequestHead(int fd, size_t max_bytes, std::string &head,
                     bool &line_complete);

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

struct HttpServerOptions {
    /** TCP port to bind on the loopback interface; 0 picks an
     * ephemeral port (read it back with port()). */
    uint16_t port = 0;
    /** Handler pool size — the maximum number of in-flight requests. */
    unsigned handlerThreads = 4;
    /** Cap on the request head (request line + headers). A head that
     * exceeds it before the request line ends is answered 414, after
     * the request line 400 — the connection never buffers unbounded
     * input. */
    size_t maxRequestBytes = 8 * 1024;
    /** Registry for the serve.* counters; null = the process global. */
    support::MetricsRegistry *metrics = nullptr;
};

/**
 * The server. Construct with the routing handler, start(), and every
 * connection runs: parse → handler(request) → serialize → close. The
 * handler is called from pool threads and must be thread-safe; a
 * handler that throws becomes a 500 without killing the worker.
 */
class HttpServer {
  public:
    explicit HttpServer(HttpHandler handler,
                        HttpServerOptions options = {});
    ~HttpServer(); ///< stops (gracefully) if still running

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + spawn the accept thread and handler pool.
     * False (with a classified message in @p error) on socket
     * failure; idempotent once running. */
    bool start(std::string *error = nullptr);

    /**
     * Graceful shutdown: stop accepting, then block until every
     * accepted request has been answered. Idempotent; the destructor
     * calls it.
     */
    void stop();

    bool running() const;

    /** The bound port (the ephemeral pick when options.port was 0);
     * 0 before start(). */
    uint16_t port() const { return port_; }

    /** Total requests answered (any status) since start(). */
    uint64_t requestsServed() const;

  private:
    void acceptLoop();
    void handleConnection(int fd);

    HttpHandler handler_;
    HttpServerOptions options_;
    support::Counter *requests_ = nullptr;
    /** serve.request_us: accept-to-response-sent wall µs, feeding the
     * /progress serve latency percentiles. */
    support::Histogram *requestUs_ = nullptr;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptor_;
    std::unique_ptr<support::ThreadPool> pool_;
    std::atomic<bool> stopRequested_{false};
    std::atomic<uint64_t> served_{0};
    mutable std::mutex lifecycleMutex_;
    bool running_ = false;
};

} // namespace dce::serve
