/**
 * @file
 * The GET /dashboard page (DESIGN.md §17): one self-contained HTML
 * document — no external scripts, stylesheets, fonts, or CDNs — that
 * polls the ops server's own JSON endpoints (/timeseries, /progress,
 * /fleet) and renders inline-SVG sparklines for seeds/s, findings,
 * cache-hit rate, and stage latency p99s. Endpoints that 404 (no
 * fleet, no sampler) simply blank their panel; the page never errors.
 *
 * Served from memory: the HTML is a compile-time constant, so the
 * dashboard works on any machine curl can reach with zero deployment.
 */
#pragma once

#include <string>

namespace dce::serve {

/** The complete /dashboard HTML document. */
std::string dashboardHtml();

} // namespace dce::serve
