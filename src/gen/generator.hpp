/**
 * @file
 * Random MiniC program generator — the Csmith stand-in. Properties the
 * paper's methodology needs (§4.1):
 *
 *  - deterministic and input-free: one execution determines the
 *    dead/alive status of every block for all executions;
 *  - guaranteed termination: every loop is structurally bounded (fresh
 *    induction variables that bodies never write);
 *  - no undefined behaviour (MiniC has none by construction);
 *  - abundant dead code: branch conditions are biased so that most
 *    generated blocks never execute, mirroring the paper's 89.59%
 *    dead-block prevalence.
 *
 * Programs are reproducible from their seed alone.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "lang/ast.hpp"

namespace dce::gen {

/** Size/shape knobs. Defaults produce programs of roughly 40-120
 * source lines, comparable per-file complexity to reduced Csmith
 * output. */
struct GenConfig {
    unsigned numGlobals = 10;
    unsigned numHelpers = 3;        ///< static helper functions
    unsigned maxStmtsPerBlock = 5;
    unsigned maxBlockDepth = 3;
    unsigned maxExprDepth = 3;
    unsigned maxLoopTrip = 12;
    /** Percent chance a branch condition is a provably-dead compare
     * over a never-written static. */
    unsigned unlikelyBranchBias = 60;
};

/**
 * Generate a sema-checked translation unit from @p seed.
 * @post the returned unit passes Sema and executes to completion
 * within the default interpreter budget (enforced by generator tests,
 * not re-checked here).
 */
std::unique_ptr<lang::TranslationUnit> generateProgram(
    uint64_t seed, const GenConfig &config = {});

/** Convenience: generate + pretty-print. */
std::string generateSource(uint64_t seed, const GenConfig &config = {});

} // namespace dce::gen
