#include "gen/generator.hpp"

#include <cassert>

#include "lang/printer.hpp"
#include "lang/sema.hpp"
#include "support/rng.hpp"

namespace dce::gen {

using namespace lang;

namespace {

/** A variable visible at the current generation point. */
struct ScopeVar {
    VarDecl *decl;
    bool frozen; ///< loop control variable: never assigned in body
};

class Generator {
  public:
    Generator(uint64_t seed, const GenConfig &config)
        : rng_(seed), config_(config),
          unit_(std::make_unique<TranslationUnit>())
    {
    }

    std::unique_ptr<TranslationUnit>
    run()
    {
        makeGlobals();
        for (unsigned i = 0; i < config_.numHelpers; ++i)
            makeHelper(i);
        makeTinyHelper();
        makeMain();

        DiagnosticEngine diags;
        Sema sema(diags);
        sema.check(*unit_);
        assert(!diags.hasErrors() && "generator produced invalid MiniC");
        (void)diags;
        return std::move(unit_);
    }

  private:
    TypeContext &types() { return *unit_->types; }

    const Type *
    randomScalarType()
    {
        static const unsigned widths[] = {8, 16, 32, 32, 32, 64};
        unsigned bits = widths[rng_.below(std::size(widths))];
        bool is_signed = !rng_.chance(25);
        return types().intType(bits, is_signed);
    }

    std::string
    freshName(const char *prefix)
    {
        return std::string(prefix) + std::to_string(nameCounter_++);
    }

    ExprPtr
    literal(int64_t value)
    {
        if (value < 0) {
            return std::make_unique<UnaryExpr>(
                UnaryOp::Neg, std::make_unique<IntLit>(
                                  static_cast<uint64_t>(-value)));
        }
        return std::make_unique<IntLit>(static_cast<uint64_t>(value));
    }

    ExprPtr
    ref(const VarDecl *decl)
    {
        return std::make_unique<VarRef>(decl->name);
    }

    //===--------------------------------------------------------------===//
    // Globals
    //===--------------------------------------------------------------===//

    void
    makeGlobals()
    {
        for (unsigned i = 0; i < config_.numGlobals; ++i) {
            std::string name = "g" + std::to_string(i);
            bool is_static = rng_.chance(60);
            Storage storage = is_static ? Storage::StaticGlobal
                                        : Storage::Global;
            unsigned kind = static_cast<unsigned>(rng_.below(10));
            if (kind < 6) {
                // Scalar with a small initializer (often zero, which
                // makes `if (g)` blocks dead — a rich dead-code seam).
                auto decl = std::make_unique<VarDecl>(
                    name, randomScalarType(), storage);
                if (rng_.chance(70)) {
                    decl->init =
                        literal(rng_.chance(60) ? 0 : rng_.range(0, 9));
                }
                scalarGlobals_.push_back(decl.get());
                unit_->addGlobal(std::move(decl));
            } else if (kind < 8) {
                // Array of a scalar type.
                uint64_t size = static_cast<uint64_t>(rng_.range(2, 6));
                const Type *elem = randomScalarType();
                auto decl = std::make_unique<VarDecl>(
                    name, types().arrayOf(elem, size), storage);
                if (rng_.chance(60)) {
                    for (uint64_t k = 0; k < size; ++k) {
                        decl->initList.push_back(literal(
                            rng_.chance(50) ? 0 : rng_.range(0, 5)));
                    }
                }
                arrayGlobals_.push_back(decl.get());
                unit_->addGlobal(std::move(decl));
            } else if (!scalarGlobals_.empty()) {
                // Pointer to an earlier scalar global.
                const VarDecl *target = rng_.pick(scalarGlobals_);
                auto decl = std::make_unique<VarDecl>(
                    name, types().pointerTo(target->type), storage);
                decl->init = std::make_unique<UnaryExpr>(
                    UnaryOp::AddrOf, ref(target));
                pointerGlobals_.push_back(decl.get());
                unit_->addGlobal(std::move(decl));
            } else {
                auto decl = std::make_unique<VarDecl>(
                    name, types().intTy(), storage);
                decl->init = literal(0);
                scalarGlobals_.push_back(decl.get());
                unit_->addGlobal(std::move(decl));
            }
        }
        assert(!scalarGlobals_.empty());

        // Read-only statics: initialized, never assigned (they are not
        // registered in scalarGlobals_, so lvalue() never picks them).
        unsigned readonly = 3 + static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < readonly; ++i) {
            auto decl = std::make_unique<VarDecl>(
                "r" + std::to_string(i), randomScalarType(),
                Storage::StaticGlobal);
            decl->init = literal(rng_.range(0, 9));
            readonlyStatics_.push_back(decl.get());
            unit_->addGlobal(std::move(decl));
        }
        // Stored-equals-init statics (rewritten with their initializer
        // once in main; see makeMain).
        for (unsigned i = 0; i < 2; ++i) {
            auto decl = std::make_unique<VarDecl>(
                "q" + std::to_string(i), unit_->types->intTy(),
                Storage::StaticGlobal);
            decl->init = literal(0);
            storedEqInitStatics_.push_back(decl.get());
            unit_->addGlobal(std::move(decl));
        }
        // Rem-gadget external: runtime value equals its initializer
        // (nothing ever stores it), but external linkage keeps it
        // statically opaque — so the `if (remg == 7)` guard is *alive*
        // and the rem check nested under it is primary when missed.
        {
            auto decl = std::make_unique<VarDecl>(
                "remg", unit_->types->intTy(), Storage::Global);
            decl->init = literal(7);
            remGlobal_ = decl.get();
            unit_->addGlobal(std::move(decl));
        }
        // Vectorizer-gadget array (Listing 9e's shape).
        {
            auto decl = std::make_unique<VarDecl>(
                "vecarr",
                unit_->types->arrayOf(unit_->types->intTy(), 2),
                Storage::StaticGlobal);
            vecArray_ = decl.get();
            unit_->addGlobal(std::move(decl));
        }
        // Alias-forwarding gadget static (Listing 9c's shape).
        {
            auto decl = std::make_unique<VarDecl>(
                "ps0", unit_->types->charType(), Storage::StaticGlobal);
            decl->init = literal(0);
            aliasStatic_ = decl.get();
            unit_->addGlobal(std::move(decl));
        }
        // Address-comparison pattern objects (Listing 3's shape).
        {
            auto array = std::make_unique<VarDecl>(
                "pa", unit_->types->arrayOf(unit_->types->charType(), 2),
                Storage::Global);
            patternArray_ = array.get();
            unit_->addGlobal(std::move(array));
            auto scalar = std::make_unique<VarDecl>(
                "pb", unit_->types->charType(), Storage::Global);
            patternScalar_ = scalar.get();
            unit_->addGlobal(std::move(scalar));
        }
    }

    //===--------------------------------------------------------------===//
    // Expressions
    //===--------------------------------------------------------------===//

    /** Integer-valued expression of bounded depth. */
    ExprPtr
    intExpr(unsigned depth)
    {
        if (depth == 0 || rng_.chance(30))
            return intLeaf();
        switch (rng_.below(8)) {
          case 0: {
            UnaryOp op = rng_.chance(50)
                             ? UnaryOp::Neg
                             : (rng_.chance(50) ? UnaryOp::BitNot
                                                : UnaryOp::LogicalNot);
            return std::make_unique<UnaryExpr>(op, intExpr(depth - 1));
          }
          case 1:
          case 2: {
            static const BinaryOp arith[] = {
                BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                BinaryOp::Div, BinaryOp::Rem, BinaryOp::BitAnd,
                BinaryOp::BitOr, BinaryOp::BitXor};
            BinaryOp op = arith[rng_.below(std::size(arith))];
            return std::make_unique<BinaryExpr>(op, intExpr(depth - 1),
                                                intExpr(depth - 1));
          }
          case 3: {
            BinaryOp op =
                rng_.chance(50) ? BinaryOp::Shl : BinaryOp::Shr;
            // Bounded shift amounts keep values comprehensible; the
            // semantics are defined for any amount regardless.
            return std::make_unique<BinaryExpr>(
                op, intExpr(depth - 1), literal(rng_.range(0, 7)));
          }
          case 4:
            return comparison(depth - 1);
          case 5: {
            BinaryOp op = rng_.chance(50) ? BinaryOp::LogicalAnd
                                          : BinaryOp::LogicalOr;
            return std::make_unique<BinaryExpr>(
                op, intExpr(depth - 1), intExpr(depth - 1));
          }
          case 6:
            return std::make_unique<ConditionalExpr>(
                condition(depth - 1), intExpr(depth - 1),
                intExpr(depth - 1));
          default:
            if (!helpers_.empty() && callDepth_ == 0) {
                // Calls only at statement-expression level to keep
                // expression evaluation cheap.
                return helperCall();
            }
            return intLeaf();
        }
    }

    ExprPtr
    intLeaf()
    {
        unsigned roll = static_cast<unsigned>(rng_.below(10));
        if (roll < 3)
            return literal(rng_.range(-4, 9));
        if (roll < 6 && !locals_.empty()) {
            const ScopeVar &var = rng_.pick(locals_);
            if (var.decl->type->isInt())
                return ref(var.decl);
        }
        if (roll < 8 && !arrayGlobals_.empty()) {
            const VarDecl *array = rng_.pick(arrayGlobals_);
            int64_t index = rng_.range(
                0,
                static_cast<int64_t>(array->type->arraySize()) - 1);
            return std::make_unique<IndexExpr>(ref(array),
                                               literal(index));
        }
        if (roll < 9 && !pointerGlobals_.empty()) {
            return std::make_unique<UnaryExpr>(
                UnaryOp::Deref, ref(rng_.pick(pointerGlobals_)));
        }
        return ref(rng_.pick(scalarGlobals_));
    }

    ExprPtr
    comparison(unsigned depth)
    {
        static const BinaryOp cmps[] = {BinaryOp::Lt, BinaryOp::Le,
                                        BinaryOp::Gt, BinaryOp::Ge,
                                        BinaryOp::Eq, BinaryOp::Ne};
        BinaryOp op = cmps[rng_.below(std::size(cmps))];
        return std::make_unique<BinaryExpr>(op, intExpr(depth),
                                            intExpr(depth));
    }

    /** Branch condition. The distribution shapes the corpus like the
     * paper's Csmith programs (§4.1): most generated blocks are dead,
     * and most of the dead ones are *provably* dead given the
     * compilers' analyses — conditions over never-written statics fold
     * once global value analysis, SCCP, and friends line up. A small
     * share uses the capability-divergence patterns of DESIGN.md §6 so
     * differential testing has something to find, and a small share is
     * genuinely runtime-dependent (dead in practice, hard to prove). */
    ExprPtr
    condition(unsigned depth)
    {
        unsigned roll = static_cast<unsigned>(rng_.below(100));
        if (roll < 10) {
            // Literal-constant false condition: even front ends fold
            // these during lowering — the paper's ~15% of dead blocks
            // that disappear at -O0.
            int64_t small = rng_.range(0, 9);
            return std::make_unique<BinaryExpr>(
                rng_.chance(50) ? BinaryOp::Gt : BinaryOp::Eq,
                literal(small), literal(rng_.range(60, 150)));
        }
        if (roll < 10 + config_.unlikelyBranchBias) {
            // Provably dead: a read-only static compared against an
            // impossible constant.
            const VarDecl *subject = rng_.pick(readonlyStatics_);
            int64_t big = rng_.range(60, 150);
            BinaryOp op = rng_.chance(50) ? BinaryOp::Gt : BinaryOp::Eq;
            return std::make_unique<BinaryExpr>(op, ref(subject),
                                                literal(big));
        }
        if (roll < 10 + config_.unlikelyBranchBias + 6)
            return divergencePattern();
        if (roll < 10 + config_.unlikelyBranchBias + 10) {
            // Runtime-dependent and unlikely: dead in the ground truth
            // but beyond static analysis (the residual both compilers
            // miss, like the paper's ~5% at -O3).
            ExprPtr lhs = intExpr(depth);
            int64_t big = rng_.range(60, 150);
            BinaryOp op = rng_.chance(50) ? BinaryOp::Gt : BinaryOp::Eq;
            return std::make_unique<BinaryExpr>(op, std::move(lhs),
                                                literal(big));
        }
        return rng_.chance(50) ? comparison(depth) : intExpr(depth);
    }

    /** A condition exercising one of the engineered compiler-capability
     * differences (DESIGN.md §6), so differential campaigns surface
     * the same bug classes the paper reports. */
    ExprPtr
    divergencePattern()
    {
        switch (rng_.below(3)) {
          case 0:
            // Listing 4a: a static whose stores re-write the
            // initializer. beta's globalopt folds; alpha misses.
            return ref(rng_.pick(storedEqInitStatics_));
          case 1: {
            // Listing 3: &pb == &pa[1]. alpha folds any offset; beta
            // only offset 0.
            auto lhs = std::make_unique<UnaryExpr>(
                UnaryOp::AddrOf, ref(patternScalar_));
            auto rhs = std::make_unique<UnaryExpr>(
                UnaryOp::AddrOf,
                std::make_unique<IndexExpr>(
                    ref(patternArray_),
                    literal(rng_.chance(70) ? 1 : 0)));
            return std::make_unique<BinaryExpr>(
                BinaryOp::Eq, std::move(lhs), std::move(rhs));
          }
          default:
            // Listing 8b essence: an equality-guarded rem check.
            // Dead whenever C % D != E; beta's VRP folds it at -O2
            // but the -O3 ConstantRange regression misses it.
            int64_t c = rng_.range(5, 20);
            int64_t d = rng_.range(2, 7);
            int64_t e = (c % d) + 1; // guaranteed mismatch
            ExprPtr guard = std::make_unique<BinaryExpr>(
                BinaryOp::Eq, intExpr(1), literal(c));
            ExprPtr rem_check = std::make_unique<BinaryExpr>(
                BinaryOp::Eq,
                std::make_unique<BinaryExpr>(
                    BinaryOp::Rem, intExpr(1), literal(d)),
                literal(e));
            // (x == C) && (x % D == E): the rem's lhs is a fresh
            // expression, so fold-ability rests on the == guard; keep
            // it simple with a conjunction over the same leaf when
            // possible.
            return std::make_unique<BinaryExpr>(
                BinaryOp::LogicalAnd, std::move(guard),
                std::move(rem_check));
        }
    }

    ExprPtr
    helperCall()
    {
        FunctionDecl *callee = rng_.pick(helpers_);
        ++callDepth_;
        std::vector<ExprPtr> args;
        for (size_t i = 0; i < callee->params.size(); ++i)
            args.push_back(intExpr(1));
        --callDepth_;
        return std::make_unique<CallExpr>(callee->name,
                                          std::move(args));
    }

    /** A writable location: local, scalar global, array element, or a
     * dereferenced pointer global. Respects frozen loop variables. */
    ExprPtr
    lvalue()
    {
        for (int attempt = 0; attempt < 4; ++attempt) {
            unsigned roll = static_cast<unsigned>(rng_.below(10));
            if (roll < 4 && !locals_.empty()) {
                const ScopeVar &var = rng_.pick(locals_);
                if (!var.frozen && var.decl->type->isInt())
                    return ref(var.decl);
                continue;
            }
            if (roll < 7)
                return ref(rng_.pick(scalarGlobals_));
            if (roll < 9 && !arrayGlobals_.empty()) {
                const VarDecl *array = rng_.pick(arrayGlobals_);
                int64_t index = rng_.range(
                    0, static_cast<int64_t>(array->type->arraySize()) -
                           1);
                return std::make_unique<IndexExpr>(ref(array),
                                                   literal(index));
            }
            if (!pointerGlobals_.empty()) {
                return std::make_unique<UnaryExpr>(
                    UnaryOp::Deref, ref(rng_.pick(pointerGlobals_)));
            }
        }
        return ref(rng_.pick(scalarGlobals_));
    }

    //===--------------------------------------------------------------===//
    // Statements
    //===--------------------------------------------------------------===//

    std::unique_ptr<BlockStmt>
    block(unsigned depth, bool in_switch_arm)
    {
        auto result = std::make_unique<BlockStmt>();
        size_t locals_mark = locals_.size();
        unsigned count = 1 + static_cast<unsigned>(rng_.below(
                                 config_.maxStmtsPerBlock));
        for (unsigned i = 0; i < count; ++i)
            appendStmt(*result, depth, in_switch_arm);
        locals_.resize(locals_mark);
        return result;
    }

    void
    appendStmt(BlockStmt &block_stmt, unsigned depth,
               bool in_switch_arm)
    {
        unsigned roll = static_cast<unsigned>(rng_.below(100));
        bool allow_nesting = depth > 0;

        if (roll < 10 && locals_.size() < 6) {
            // Local declaration (always initialized).
            auto decl = std::make_unique<VarDecl>(
                freshName("l"), randomScalarType(), Storage::Local);
            decl->init = intExpr(1);
            locals_.push_back({decl.get(), false});
            block_stmt.stmts.push_back(
                std::make_unique<DeclStmt>(std::move(decl)));
            return;
        }
        if (roll < 45) {
            // Assignment (plain or compound).
            static const AssignOp ops[] = {
                AssignOp::Assign, AssignOp::Assign, AssignOp::Assign,
                AssignOp::Add,    AssignOp::Sub,    AssignOp::Xor,
                AssignOp::And,    AssignOp::Or};
            AssignOp op = ops[rng_.below(std::size(ops))];
            block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
                std::make_unique<AssignExpr>(
                    op, lvalue(), intExpr(config_.maxExprDepth))));
            return;
        }
        if (roll < 52 && !helpers_.empty()) {
            block_stmt.stmts.push_back(
                std::make_unique<ExprStmt>(helperCall()));
            return;
        }
        if (roll < 72 && allow_nesting) {
            // if / if-else.
            StmtPtr then_block = block(depth - 1, false);
            StmtPtr else_block;
            if (rng_.chance(35))
                else_block = block(depth - 1, false);
            block_stmt.stmts.push_back(std::make_unique<IfStmt>(
                condition(2), std::move(then_block),
                std::move(else_block)));
            return;
        }
        if (roll < 84 && allow_nesting) {
            appendLoop(block_stmt, depth);
            return;
        }
        if (roll < 90 && allow_nesting && !in_switch_arm) {
            appendSwitch(block_stmt, depth);
            return;
        }
        if (roll < 92 && inMain_ && allow_nesting &&
            gadgetBudget_ > 0) {
            --gadgetBudget_;
            // Gadget bodies must not spawn further gadgets (their
            // recursive blocks would otherwise grow heavy-tailed).
            bool saved = inMain_;
            inMain_ = false;
            appendGadget(block_stmt, depth);
            inMain_ = saved;
            return;
        }
        // Fallback: increment something.
        block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
            std::make_unique<UnaryExpr>(
                rng_.chance(50) ? UnaryOp::PostInc : UnaryOp::PostDec,
                lvalue())));
    }

    void
    appendLoop(BlockStmt &block_stmt, unsigned depth)
    {
        int64_t trip = rng_.range(0, config_.maxLoopTrip);
        std::string name = freshName("i");
        auto induction = std::make_unique<VarDecl>(
            name, types().intTy(), Storage::Local);
        VarDecl *ind_ptr = induction.get();
        induction->init = literal(0);

        if (rng_.chance(70)) {
            // for (int i = 0; i < trip; i++) { ... }
            auto loop = std::make_unique<ForStmt>();
            loop->init =
                std::make_unique<DeclStmt>(std::move(induction));
            loop->cond = std::make_unique<BinaryExpr>(
                BinaryOp::Lt, std::make_unique<VarRef>(name),
                literal(trip));
            loop->step = std::make_unique<UnaryExpr>(
                UnaryOp::PostInc, std::make_unique<VarRef>(name));
            locals_.push_back({ind_ptr, /*frozen=*/true});
            loop->body = block(depth - 1, false);
            locals_.pop_back();
            block_stmt.stmts.push_back(std::move(loop));
            return;
        }

        // int n = trip; while (n > 0) { ...; n--; }
        block_stmt.stmts.push_back(
            std::make_unique<DeclStmt>(std::move(induction)));
        // Reuse the declared variable as a down-counter.
        block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
            std::make_unique<AssignExpr>(AssignOp::Assign,
                                         std::make_unique<VarRef>(name),
                                         literal(trip))));
        locals_.push_back({ind_ptr, /*frozen=*/true});
        auto body = block(depth - 1, false);
        locals_.pop_back();
        body->stmts.push_back(std::make_unique<ExprStmt>(
            std::make_unique<UnaryExpr>(
                UnaryOp::PostDec, std::make_unique<VarRef>(name))));
        auto cond = std::make_unique<BinaryExpr>(
            BinaryOp::Gt, std::make_unique<VarRef>(name), literal(0));
        block_stmt.stmts.push_back(std::make_unique<WhileStmt>(
            std::move(cond), std::move(body)));
        // The counter stays visible (and unfrozen) afterwards.
        locals_.push_back({ind_ptr, false});
    }

    void
    appendSwitch(BlockStmt &block_stmt, unsigned depth)
    {
        // Most switch subjects are foldable (never-written statics),
        // mirroring how much of a deterministic program's control flow
        // a strong compiler can decide; the rest stay runtime-valued.
        ExprPtr subject = rng_.chance(70)
                              ? ref(rng_.pick(readonlyStatics_))
                              : intExpr(2);
        auto switch_stmt =
            std::make_unique<SwitchStmt>(std::move(subject));
        unsigned arms = 2 + static_cast<unsigned>(rng_.below(3));
        std::vector<int64_t> used;
        for (unsigned i = 0; i < arms; ++i) {
            SwitchCase arm;
            if (i + 1 == arms && rng_.chance(70)) {
                arm.value = std::nullopt; // default
            } else {
                int64_t value;
                bool fresh = false;
                for (int tries = 0; tries < 8 && !fresh; ++tries) {
                    value = rng_.range(-2, 40);
                    fresh = true;
                    for (int64_t seen : used)
                        fresh &= seen != value;
                }
                if (!fresh)
                    continue;
                used.push_back(value);
                arm.value = value;
            }
            arm.body = block(depth - 1, /*in_switch_arm=*/true);
            switch_stmt->cases.push_back(std::move(arm));
        }
        if (!switch_stmt->cases.empty())
            block_stmt.stmts.push_back(std::move(switch_stmt));
    }

    //===--------------------------------------------------------------===//
    // Functions
    //===--------------------------------------------------------------===//

    void
    makeHelper(unsigned index)
    {
        const Type *ret = randomScalarType();
        auto fn = std::make_unique<FunctionDecl>(
            "helper" + std::to_string(index), ret);
        fn->isStatic = rng_.chance(75);
        unsigned params = static_cast<unsigned>(rng_.below(3));
        for (unsigned p = 0; p < params; ++p) {
            fn->params.push_back(std::make_unique<VarDecl>(
                "p" + std::to_string(p), randomScalarType(),
                Storage::Param));
        }

        locals_.clear();
        for (const auto &param : fn->params)
            locals_.push_back({param.get(), false});

        fn->body = block(config_.maxBlockDepth - 1, false);
        fn->body->stmts.push_back(std::make_unique<ReturnStmt>(
            intExpr(config_.maxExprDepth)));
        locals_.clear();

        helpers_.push_back(fn.get());
        unit_->addFunction(std::move(fn));
    }

    /** A minimal static helper with a parameter-guarded block: small
     * enough to inline at every level. Called with a constant-0
     * argument, its guarded block is dead; -O1 inlines and folds it,
     * while alpha's IPA-husk regression keeps the (uncalled, still
     * undecidable) original at -O3 — Listing 9b's shape. */
    void
    makeTinyHelper()
    {
        auto fn = std::make_unique<FunctionDecl>("tiny",
                                                 types().intTy());
        fn->isStatic = true;
        fn->params.push_back(std::make_unique<VarDecl>(
            "p0", types().intTy(), Storage::Param));
        fn->body = std::make_unique<BlockStmt>();
        auto guarded = std::make_unique<BlockStmt>();
        guarded->stmts.push_back(std::make_unique<ExprStmt>(
            std::make_unique<AssignExpr>(
                AssignOp::Assign, ref(rng_.pick(scalarGlobals_)),
                literal(rng_.range(1, 9)))));
        fn->body->stmts.push_back(std::make_unique<IfStmt>(
            std::make_unique<VarRef>("p0"), std::move(guarded),
            nullptr));
        fn->body->stmts.push_back(
            std::make_unique<ReturnStmt>(literal(0)));
        tinyHelper_ = fn.get();
        unit_->addFunction(std::move(fn));
    }

    /** Statement-level regression gadgets: shapes from the paper's
     * reported bugs that specific commits regress (DESIGN.md §6), so
     * level-differential campaigns and bisection have realistic prey. */
    void
    appendGadget(BlockStmt &block_stmt, unsigned depth)
    {
        switch (rng_.below(5)) {
          case 0: {
            // R1 (Listing 7): loop-invariant stored-equals-init check
            // inside a loop; unswitch + freeze blocks beta's -O3.
            auto guarded = block(depth > 0 ? depth - 1 : 0, false);
            auto check = std::make_unique<IfStmt>(
                ref(rng_.pick(storedEqInitStatics_)),
                std::move(guarded), nullptr);
            auto loop = std::make_unique<ForStmt>();
            std::string name = freshName("i");
            auto induction = std::make_unique<VarDecl>(
                name, types().intTy(), Storage::Local);
            induction->init = literal(0);
            loop->init =
                std::make_unique<DeclStmt>(std::move(induction));
            loop->cond = std::make_unique<BinaryExpr>(
                BinaryOp::Lt, std::make_unique<VarRef>(name),
                literal(rng_.range(1, 4)));
            loop->step = std::make_unique<UnaryExpr>(
                UnaryOp::PostInc, std::make_unique<VarRef>(name));
            auto body = std::make_unique<BlockStmt>();
            body->stmts.push_back(std::move(check));
            loop->body = std::move(body);
            block_stmt.stmts.push_back(std::move(loop));
            break;
          }
          case 1: {
            // R2 (Listing 8b): equality-guarded rem over one SSA value
            // (a local snapshot of the opaque external, so marker calls
            // cannot clobber it). The external's runtime value matches
            // the guard: the guard block is alive and a missed rem
            // check inside it is primary.
            std::string name = freshName("v");
            auto snap = std::make_unique<VarDecl>(
                name, types().intTy(), Storage::Local);
            snap->init = ref(remGlobal_);
            block_stmt.stmts.push_back(
                std::make_unique<DeclStmt>(std::move(snap)));
            int64_t d = rng_.range(2, 6);
            int64_t e = (7 % d) + 1; // 7 == remg's fixed initializer
            auto inner = std::make_unique<IfStmt>(
                std::make_unique<BinaryExpr>(
                    BinaryOp::Eq,
                    std::make_unique<BinaryExpr>(
                        BinaryOp::Rem, std::make_unique<VarRef>(name),
                        literal(d)),
                    literal(e)),
                block(depth > 0 ? depth - 1 : 0, false), nullptr);
            auto inner_wrap = std::make_unique<BlockStmt>();
            inner_wrap->stmts.push_back(std::move(inner));
            block_stmt.stmts.push_back(std::make_unique<IfStmt>(
                std::make_unique<BinaryExpr>(
                    BinaryOp::Eq, std::make_unique<VarRef>(name),
                    literal(7)),
                std::move(inner_wrap), nullptr));
            break;
          }
          case 4: {
            // R3 (Listing 9e): a tiny store loop the -O3 vectorizer
            // rewrite claims (laundering the stored value), blocking
            // the forwarding that -O1's full unroll achieves.
            int64_t k = rng_.range(1, 9);
            std::string name = freshName("i");
            auto induction = std::make_unique<VarDecl>(
                name, types().intTy(), Storage::Local);
            induction->init = literal(0);
            auto loop = std::make_unique<ForStmt>();
            loop->init =
                std::make_unique<DeclStmt>(std::move(induction));
            loop->cond = std::make_unique<BinaryExpr>(
                BinaryOp::Lt, std::make_unique<VarRef>(name),
                literal(2));
            loop->step = std::make_unique<UnaryExpr>(
                UnaryOp::PostInc, std::make_unique<VarRef>(name));
            auto body = std::make_unique<BlockStmt>();
            body->stmts.push_back(std::make_unique<ExprStmt>(
                std::make_unique<AssignExpr>(
                    AssignOp::Assign,
                    std::make_unique<IndexExpr>(
                        ref(vecArray_), std::make_unique<VarRef>(name)),
                    literal(k))));
            loop->body = std::move(body);
            block_stmt.stmts.push_back(std::move(loop));
            block_stmt.stmts.push_back(std::make_unique<IfStmt>(
                std::make_unique<BinaryExpr>(
                    BinaryOp::Ne,
                    std::make_unique<IndexExpr>(ref(vecArray_),
                                                literal(0)),
                    literal(k)),
                block(depth > 0 ? depth - 1 : 0, false), nullptr));
            break;
          }
          case 2: {
            // R5 (Listing 9c): store-forwarding across an unrelated
            // store; alpha's -O3 alias regression clobbers it.
            block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
                std::make_unique<AssignExpr>(
                    AssignOp::Assign, ref(aliasStatic_), literal(0))));
            block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
                std::make_unique<AssignExpr>(
                    AssignOp::Assign, ref(rng_.pick(scalarGlobals_)),
                    intExpr(1))));
            block_stmt.stmts.push_back(std::make_unique<IfStmt>(
                ref(aliasStatic_),
                block(depth > 0 ? depth - 1 : 0, false), nullptr));
            break;
          }
          default: {
            // R6 (Listing 9b): call the tiny helper with a constant 0.
            std::vector<ExprPtr> args;
            args.push_back(literal(0));
            block_stmt.stmts.push_back(std::make_unique<ExprStmt>(
                std::make_unique<CallExpr>("tiny", std::move(args))));
            break;
          }
        }
    }

    void
    makeMain()
    {
        auto fn = std::make_unique<FunctionDecl>("main",
                                                 types().intTy());
        locals_.clear();
        inMain_ = true;
        fn->body = block(config_.maxBlockDepth, false);
        inMain_ = false;
        // Occasionally a conditional early return — the instrumenter's
        // "function tail after conditional return" construct.
        if (rng_.chance(40)) {
            auto early = std::make_unique<IfStmt>(
                condition(2),
                std::make_unique<ReturnStmt>(literal(rng_.range(0, 5))),
                nullptr);
            size_t position = rng_.below(fn->body->stmts.size() + 1);
            fn->body->stmts.insert(
                fn->body->stmts.begin() +
                    static_cast<ptrdiff_t>(position),
                std::move(early));
        }
        // Re-write each stored-equals-init static with its initializer
        // somewhere in main (the Listing 4a seam: the store's presence
        // defeats alpha's flow-insensitive analysis, while beta proves
        // the value never changes).
        for (VarDecl *q : storedEqInitStatics_) {
            auto store = std::make_unique<ExprStmt>(
                std::make_unique<AssignExpr>(AssignOp::Assign, ref(q),
                                             literal(0)));
            size_t position = rng_.below(fn->body->stmts.size() + 1);
            fn->body->stmts.insert(
                fn->body->stmts.begin() +
                    static_cast<ptrdiff_t>(position),
                std::move(store));
        }
        fn->body->stmts.push_back(std::make_unique<ReturnStmt>(
            intExpr(2)));
        locals_.clear();
        unit_->addFunction(std::move(fn));
    }

    Rng rng_;
    GenConfig config_;
    std::unique_ptr<TranslationUnit> unit_;
    std::vector<VarDecl *> scalarGlobals_;
    /** Never-written internal statics: both compilers can prove their
     * value, so conditions over them are *statically* dead — the bulk
    * of the corpus's eliminable dead code. */
    std::vector<VarDecl *> readonlyStatics_;
    /** Statics whose only store re-writes the initializer (the paper's
     * Listing 4a pattern): beta folds them, alpha does not. */
    std::vector<VarDecl *> storedEqInitStatics_;
    VarDecl *patternArray_ = nullptr;  ///< for &x == &arr[1] compares
    VarDecl *patternScalar_ = nullptr;
    VarDecl *aliasStatic_ = nullptr;   ///< Listing 9c gadget
    VarDecl *remGlobal_ = nullptr;     ///< Listing 8b gadget
    VarDecl *vecArray_ = nullptr;      ///< Listing 9e gadget
    FunctionDecl *tinyHelper_ = nullptr; ///< Listing 9b husk gadget
    std::vector<VarDecl *> arrayGlobals_;
    std::vector<VarDecl *> pointerGlobals_;
    std::vector<FunctionDecl *> helpers_;
    std::vector<ScopeVar> locals_;
    unsigned nameCounter_ = 0;
    unsigned callDepth_ = 0;
    bool inMain_ = false;
    unsigned gadgetBudget_ = 3;
};

} // namespace

std::unique_ptr<lang::TranslationUnit>
generateProgram(uint64_t seed, const GenConfig &config)
{
    return Generator(seed, config).run();
}

std::string
generateSource(uint64_t seed, const GenConfig &config)
{
    return lang::printUnit(*generateProgram(seed, config));
}

} // namespace dce::gen
