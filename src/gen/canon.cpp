#include "gen/canon.hpp"

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/markers.hpp"

namespace dce::gen {

using lang::BlockStmt;
using lang::CallExpr;
using lang::DoWhileStmt;
using lang::Expr;
using lang::ExprKind;
using lang::ExprStmt;
using lang::ForStmt;
using lang::FunctionDecl;
using lang::IfStmt;
using lang::Stmt;
using lang::StmtKind;
using lang::SwitchStmt;
using lang::TranslationUnit;
using lang::WhileStmt;

//===------------------------------------------------------------------===//
// Marker stripping
//===------------------------------------------------------------------===//

namespace {

bool
isMarkerCallStmt(const Stmt &stmt)
{
    if (stmt.kind() != StmtKind::ExprStmt)
        return false;
    const Expr *expr = static_cast<const ExprStmt &>(stmt).expr.get();
    return expr && expr->kind() == ExprKind::Call &&
           support::markerIndex(
               static_cast<const CallExpr *>(expr)->callee)
               .has_value();
}

void stripStmt(Stmt &stmt);

void
stripBlock(BlockStmt &block)
{
    std::erase_if(block.stmts, [](const lang::StmtPtr &stmt) {
        return isMarkerCallStmt(*stmt);
    });
    for (const lang::StmtPtr &stmt : block.stmts)
        stripStmt(*stmt);
}

void
stripStmt(Stmt &stmt)
{
    switch (stmt.kind()) {
    case StmtKind::Block:
        stripBlock(static_cast<BlockStmt &>(stmt));
        break;
    case StmtKind::If: {
        auto &s = static_cast<IfStmt &>(stmt);
        stripStmt(*s.thenStmt);
        if (s.elseStmt)
            stripStmt(*s.elseStmt);
        break;
    }
    case StmtKind::While:
        stripStmt(*static_cast<WhileStmt &>(stmt).body);
        break;
    case StmtKind::DoWhile:
        stripStmt(*static_cast<DoWhileStmt &>(stmt).body);
        break;
    case StmtKind::For:
        stripStmt(*static_cast<ForStmt &>(stmt).body);
        break;
    case StmtKind::Switch:
        for (lang::SwitchCase &arm :
             static_cast<SwitchStmt &>(stmt).cases)
            stripBlock(*arm.body);
        break;
    default:
        break;
    }
}

} // namespace

void
stripMarkers(TranslationUnit &unit)
{
    for (const auto &fn : unit.functions) {
        if (fn->body)
            stripBlock(*fn->body);
    }
    // Drop the body-less DCEMarkerN declarations, remapping declOrder's
    // function indices around the holes.
    std::vector<size_t> remap(unit.functions.size(), SIZE_MAX);
    std::vector<std::unique_ptr<FunctionDecl>> kept;
    for (size_t i = 0; i < unit.functions.size(); ++i) {
        auto &fn = unit.functions[i];
        if (!fn->body && support::markerIndex(fn->name))
            continue;
        remap[i] = kept.size();
        kept.push_back(std::move(fn));
    }
    std::vector<std::pair<bool, size_t>> order;
    order.reserve(unit.declOrder.size());
    for (auto [is_function, index] : unit.declOrder) {
        if (!is_function)
            order.emplace_back(false, index);
        else if (remap[index] != SIZE_MAX)
            order.emplace_back(true, remap[index]);
    }
    unit.functions = std::move(kept);
    unit.declOrder = std::move(order);
}

std::unique_ptr<TranslationUnit>
parseStripped(std::string_view canonical_text)
{
    DiagnosticEngine diags;
    auto unit = lang::parseAndCheck(canonical_text, diags);
    if (!unit)
        return nullptr;
    stripMarkers(*unit);
    return unit;
}

Canonical
canonicalize(const TranslationUnit &unit)
{
    Canonical canon{instrument::instrumentUnit(unit), {}, {}};
    canon.text = lang::printUnit(*canon.program.unit);
    canon.hash = support::fnv1a64Hex(canon.text);
    return canon;
}

} // namespace dce::gen
