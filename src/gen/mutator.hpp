/**
 * @file
 * Mutation-based program generation (DESIGN.md §13): instead of
 * growing every corpus program from a seed, derive new candidates by
 * mutating programs the campaign has already banked in the corpus
 * store. Mutated programs stay near the distribution that produced
 * interesting findings, which is where fuzzing campaigns find their
 * follow-on bugs.
 *
 * The pool holds *instrumented* canonical program texts (the corpus
 * store's content-addressed payloads). A mutation round:
 *
 *   1. strips the DCEMarker calls and declarations from a pool program
 *      (markers are derived data — re-instrumenting after the edit
 *      keeps marker indices dense and placement canonical);
 *   2. applies a few structural edits — constant tweaks, operator
 *      swaps within a category, block shuffles, statement splices;
 *   3. pretty-prints and re-parses the candidate: Sema is the validity
 *      gate (use-before-decl after a shuffle, unresolved names after a
 *      splice, duplicate cases after a tweak all bounce here);
 *   4. re-instruments and hashes the canonical text with the same
 *      FNV-1a the store uses: a candidate whose hash is already pooled
 *      is stale (the edit round-tripped to a known program) and is
 *      skipped.
 *
 * Rejected or stale candidates retry with a derived sub-seed; when
 * every attempt misses, generation falls back to the from-scratch
 * generator so a campaign never stalls. Everything derives from the
 * 64-bit seed: makeProgram(seed) is a pure function of (pool, seed),
 * so mutation-mode campaigns keep the engine's determinism contract.
 *
 * Thread-safety: the pool is write-once (addToPool during setup);
 * makeProgram/mutate are const and touch only immutable state plus
 * atomic metrics counters, so one Mutator may serve every campaign
 * worker.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "gen/canon.hpp"
#include "gen/generator.hpp"
#include "instrument/instrument.hpp"
#include "lang/ast.hpp"
#include "support/metrics.hpp"

namespace dce::gen {

/** The structural edits a mutation round can apply. */
enum class MutationKind {
    ConstantTweak,   ///< nudge an integer literal
    OperatorTweak,   ///< swap a binary operator within its category
    BlockShuffle,    ///< swap two statements of one block
    StatementSplice, ///< clone a statement into another position
};

/** Stable label for @p kind (metrics / reports). */
const char *mutationKindName(MutationKind kind);

struct MutatorConfig {
    /** Mutation attempts (per seed) before the from-scratch
     * fallback. */
    unsigned maxAttempts = 6;
    /** Edits applied to each candidate. */
    unsigned editsPerCandidate = 2;
    /** Registry for the gen.mutation_* counters; null = none. */
    support::MetricsRegistry *metrics = nullptr;
};

class Mutator {
  public:
    explicit Mutator(MutatorConfig config = {}) : config_(config) {}

    /**
     * Add one instrumented canonical program text to the pool.
     * Records the text's content hash (the stale filter) and banks a
     * marker-stripped parse as mutation stock. Returns false when the
     * text does not parse or its hash is already pooled.
     */
    bool addToPool(std::string_view canonical_text);

    size_t poolSize() const { return pool_.size(); }

    /**
     * Produce the instrumented program for @p seed: a mutated pool
     * program when an attempt survives the validity gate and the
     * stale filter, otherwise the from-scratch generator's program for
     * the same seed (also used when the pool is empty). Deterministic
     * in (pool, seed, fallback).
     */
    instrument::Instrumented
    makeProgram(uint64_t seed, const GenConfig &fallback = {}) const;

    /**
     * The mutated, marker-free, sema-checked unit for @p seed; null
     * when the pool is empty or every attempt failed the gate.
     * Exposed for tests — campaigns use makeProgram.
     */
    std::unique_ptr<lang::TranslationUnit> mutate(uint64_t seed) const;

  private:
    std::unique_ptr<lang::TranslationUnit> mutateOnce(uint64_t sub_seed) const;
    void count(const char *name, const char *label = nullptr) const;

    MutatorConfig config_;
    /** Marker-free, sema-checked mutation stock, in addToPool order. */
    std::vector<std::unique_ptr<lang::TranslationUnit>> pool_;
    /** fnv1a64Hex of every pooled canonical text — the stale filter. */
    std::unordered_set<std::string> poolHashes_;
};

} // namespace dce::gen
