#include "gen/mutator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "gen/canon.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace dce::gen {

using lang::AssignExpr;
using lang::AssignOp;
using lang::BinaryExpr;
using lang::BinaryOp;
using lang::BlockStmt;
using lang::CallExpr;
using lang::CastExpr;
using lang::ConditionalExpr;
using lang::DeclStmt;
using lang::DoWhileStmt;
using lang::Expr;
using lang::ExprKind;
using lang::ExprStmt;
using lang::ForStmt;
using lang::FunctionDecl;
using lang::IfStmt;
using lang::IndexExpr;
using lang::IntLit;
using lang::ReturnStmt;
using lang::Stmt;
using lang::StmtKind;
using lang::SwitchStmt;
using lang::TranslationUnit;
using lang::UnaryExpr;
using lang::VarDecl;
using lang::WhileStmt;

const char *
mutationKindName(MutationKind kind)
{
    switch (kind) {
    case MutationKind::ConstantTweak:
        return "constant-tweak";
    case MutationKind::OperatorTweak:
        return "operator-tweak";
    case MutationKind::BlockShuffle:
        return "block-shuffle";
    case MutationKind::StatementSplice:
        return "statement-splice";
    }
    return "unknown";
}

//===------------------------------------------------------------------===//
// Mutation-point collection
//===------------------------------------------------------------------===//

namespace {

/** An integer literal plus the constraints its context imposes. */
struct LiteralPoint {
    IntLit *lit = nullptr;
    bool keepNonzero = false; ///< divisor position: never tweak to 0
    bool shiftAmount = false; ///< shift rhs: keep within the width
};

/**
 * Everything one candidate offers to mutate. Loop conditions, steps,
 * and for-inits are deliberately never collected: the generator's
 * termination guarantee lives in those expressions (fresh induction
 * variables the bodies never write), and mutations must not be able to
 * turn a bounded loop into an interpreter timeout. Array subscripts
 * are skipped for the same reason — a tweaked index is an
 * out-of-bounds trap, not an interesting program.
 */
struct MutationPoints {
    std::vector<LiteralPoint> literals;
    std::vector<BinaryExpr *> operators; ///< ops with a swap category
    std::vector<BlockStmt *> shuffleBlocks; ///< >= 2 statements
    std::vector<BlockStmt *> blocks;        ///< splice targets
    std::vector<std::pair<BlockStmt *, size_t>> stmts; ///< sources
};

/** The swap category of @p op: operators that can replace each other
 * without introducing a trap (no Div/Rem/Shl/Shr ever enters a
 * category). Null when @p op has none. */
const std::vector<BinaryOp> *
categoryOf(BinaryOp op)
{
    static const std::vector<BinaryOp> arith = {
        BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul};
    static const std::vector<BinaryOp> compare = {
        BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt,
        BinaryOp::Ge, BinaryOp::Eq, BinaryOp::Ne};
    static const std::vector<BinaryOp> bitwise = {
        BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor};
    static const std::vector<BinaryOp> logical = {
        BinaryOp::LogicalAnd, BinaryOp::LogicalOr};
    for (const auto *category : {&arith, &compare, &bitwise, &logical}) {
        if (std::find(category->begin(), category->end(), op) !=
            category->end())
            return category;
    }
    return nullptr;
}

void
walkExpr(Expr *expr, MutationPoints &points, bool nonzero = false,
         bool shift = false)
{
    if (!expr)
        return;
    switch (expr->kind()) {
    case ExprKind::IntLit:
        points.literals.push_back(
            {static_cast<IntLit *>(expr), nonzero, shift});
        break;
    case ExprKind::VarRef:
        break;
    case ExprKind::Unary:
        walkExpr(static_cast<UnaryExpr *>(expr)->sub.get(), points);
        break;
    case ExprKind::Binary: {
        auto *bin = static_cast<BinaryExpr *>(expr);
        if (categoryOf(bin->op))
            points.operators.push_back(bin);
        walkExpr(bin->lhs.get(), points);
        bool rhs_nonzero =
            bin->op == BinaryOp::Div || bin->op == BinaryOp::Rem;
        bool rhs_shift =
            bin->op == BinaryOp::Shl || bin->op == BinaryOp::Shr;
        walkExpr(bin->rhs.get(), points, rhs_nonzero, rhs_shift);
        break;
    }
    case ExprKind::Assign: {
        auto *assign = static_cast<AssignExpr *>(expr);
        walkExpr(assign->lhs.get(), points);
        bool rhs_nonzero = assign->op == AssignOp::Div ||
                           assign->op == AssignOp::Rem;
        bool rhs_shift = assign->op == AssignOp::Shl ||
                         assign->op == AssignOp::Shr;
        walkExpr(assign->rhs.get(), points, rhs_nonzero, rhs_shift);
        break;
    }
    case ExprKind::Index:
        // Base only; the subscript is off-limits (bounds).
        walkExpr(static_cast<IndexExpr *>(expr)->base.get(), points);
        break;
    case ExprKind::Call:
        for (const lang::ExprPtr &arg :
             static_cast<CallExpr *>(expr)->args)
            walkExpr(arg.get(), points);
        break;
    case ExprKind::Conditional: {
        auto *cond = static_cast<ConditionalExpr *>(expr);
        walkExpr(cond->cond.get(), points);
        walkExpr(cond->thenExpr.get(), points);
        walkExpr(cond->elseExpr.get(), points);
        break;
    }
    case ExprKind::Cast:
        walkExpr(static_cast<CastExpr *>(expr)->sub.get(), points,
                 nonzero, shift);
        break;
    }
}

void walkStmt(Stmt *stmt, MutationPoints &points);

void
walkBlock(BlockStmt *block, MutationPoints &points)
{
    points.blocks.push_back(block);
    if (block->stmts.size() >= 2)
        points.shuffleBlocks.push_back(block);
    for (size_t i = 0; i < block->stmts.size(); ++i) {
        points.stmts.emplace_back(block, i);
        walkStmt(block->stmts[i].get(), points);
    }
}

void
walkStmt(Stmt *stmt, MutationPoints &points)
{
    if (!stmt)
        return;
    switch (stmt->kind()) {
    case StmtKind::Block:
        walkBlock(static_cast<BlockStmt *>(stmt), points);
        break;
    case StmtKind::ExprStmt:
        walkExpr(static_cast<ExprStmt *>(stmt)->expr.get(), points);
        break;
    case StmtKind::DeclStmt: {
        VarDecl *decl = static_cast<DeclStmt *>(stmt)->decl.get();
        walkExpr(decl->init.get(), points);
        for (const lang::ExprPtr &element : decl->initList)
            walkExpr(element.get(), points);
        break;
    }
    case StmtKind::If: {
        auto *s = static_cast<IfStmt *>(stmt);
        walkExpr(s->cond.get(), points);
        walkStmt(s->thenStmt.get(), points);
        walkStmt(s->elseStmt.get(), points);
        break;
    }
    // Loop conditions/steps/inits carry the termination guarantee;
    // only the bodies are mutable.
    case StmtKind::While:
        walkStmt(static_cast<WhileStmt *>(stmt)->body.get(), points);
        break;
    case StmtKind::DoWhile:
        walkStmt(static_cast<DoWhileStmt *>(stmt)->body.get(), points);
        break;
    case StmtKind::For:
        walkStmt(static_cast<ForStmt *>(stmt)->body.get(), points);
        break;
    case StmtKind::Switch: {
        auto *s = static_cast<SwitchStmt *>(stmt);
        walkExpr(s->cond.get(), points);
        for (lang::SwitchCase &arm : s->cases)
            walkBlock(arm.body.get(), points);
        break;
    }
    case StmtKind::Return:
        walkExpr(static_cast<ReturnStmt *>(stmt)->value.get(), points);
        break;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
        break;
    }
}

MutationPoints
collectPoints(TranslationUnit &unit)
{
    MutationPoints points;
    for (const auto &global : unit.globals) {
        walkExpr(global->init.get(), points);
        for (const lang::ExprPtr &element : global->initList)
            walkExpr(element.get(), points);
    }
    for (const auto &fn : unit.functions) {
        if (fn->body)
            walkBlock(fn->body.get(), points);
    }
    return points;
}

//===------------------------------------------------------------------===//
// Edits
//===------------------------------------------------------------------===//

bool
applyOneEdit(TranslationUnit &unit, Rng &rng)
{
    MutationPoints points = collectPoints(unit);
    std::vector<MutationKind> available;
    if (!points.literals.empty())
        available.push_back(MutationKind::ConstantTweak);
    if (!points.operators.empty())
        available.push_back(MutationKind::OperatorTweak);
    if (!points.shuffleBlocks.empty())
        available.push_back(MutationKind::BlockShuffle);
    if (!points.stmts.empty() && !points.blocks.empty())
        available.push_back(MutationKind::StatementSplice);
    if (available.empty())
        return false;

    switch (rng.pick(available)) {
    case MutationKind::ConstantTweak: {
        const LiteralPoint &point = rng.pick(points.literals);
        uint64_t value = point.lit->value;
        switch (rng.below(4)) {
        case 0: value += 1; break;
        case 1: value -= 1; break;
        case 2: value += 3; break;
        default: value ^= 1; break;
        }
        if (point.shiftAmount)
            value &= 7;
        if (point.keepNonzero && value == 0)
            value = 1;
        point.lit->value = value;
        return true;
    }
    case MutationKind::OperatorTweak: {
        BinaryExpr *bin = rng.pick(points.operators);
        const std::vector<BinaryOp> &category = *categoryOf(bin->op);
        BinaryOp replacement =
            category[rng.below(category.size())];
        if (replacement == bin->op) {
            replacement = category[(static_cast<size_t>(
                                        std::find(category.begin(),
                                                  category.end(),
                                                  bin->op) -
                                        category.begin()) +
                                    1) %
                                   category.size()];
        }
        bin->op = replacement;
        return true;
    }
    case MutationKind::BlockShuffle: {
        BlockStmt *block = rng.pick(points.shuffleBlocks);
        size_t n = block->stmts.size();
        size_t i = rng.below(n);
        size_t j = rng.below(n - 1);
        if (j >= i)
            ++j;
        std::swap(block->stmts[i], block->stmts[j]);
        return true;
    }
    case MutationKind::StatementSplice: {
        auto [source_block, source_index] = rng.pick(points.stmts);
        lang::StmtPtr copy =
            source_block->stmts[source_index]->clone();
        BlockStmt *target = rng.pick(points.blocks);
        size_t position = rng.below(target->stmts.size() + 1);
        target->stmts.insert(target->stmts.begin() +
                                 static_cast<ptrdiff_t>(position),
                             std::move(copy));
        return true;
    }
    }
    return false;
}

/** Decorrelate the mutator's stream from the generator's (both are
 * splitmix64 over the campaign seed). */
constexpr uint64_t kMutatorStream = 0x6d75746174696f6eULL; // "mutation"

} // namespace

//===------------------------------------------------------------------===//
// Mutator
//===------------------------------------------------------------------===//

bool
Mutator::addToPool(std::string_view canonical_text)
{
    std::string hash = support::fnv1a64Hex(canonical_text);
    if (poolHashes_.count(hash))
        return false;
    auto unit = parseStripped(canonical_text);
    if (!unit)
        return false;
    poolHashes_.insert(std::move(hash));
    pool_.push_back(std::move(unit));
    return true;
}

std::unique_ptr<TranslationUnit>
Mutator::mutateOnce(uint64_t sub_seed) const
{
    Rng rng(sub_seed);
    const TranslationUnit &base = *pool_[rng.below(pool_.size())];
    std::unique_ptr<TranslationUnit> candidate = base.clone();
    bool edited = false;
    for (unsigned edit = 0; edit < config_.editsPerCandidate; ++edit)
        edited |= applyOneEdit(*candidate, rng);
    if (!edited)
        return nullptr;
    // Print + re-parse: Sema is the validity gate, and the round trip
    // re-installs every cross-reference the edits may have stranded.
    DiagnosticEngine diags;
    return lang::parseAndCheck(lang::printUnit(*candidate), diags);
}

std::unique_ptr<TranslationUnit>
Mutator::mutate(uint64_t seed) const
{
    if (pool_.empty())
        return nullptr;
    Rng rng(seed ^ kMutatorStream);
    for (unsigned attempt = 0; attempt < config_.maxAttempts;
         ++attempt) {
        if (auto candidate = mutateOnce(rng.next()))
            return candidate;
        count("gen.mutation_rejected");
    }
    return nullptr;
}

instrument::Instrumented
Mutator::makeProgram(uint64_t seed, const GenConfig &fallback) const
{
    if (!pool_.empty()) {
        Rng rng(seed ^ kMutatorStream);
        for (unsigned attempt = 0; attempt < config_.maxAttempts;
             ++attempt) {
            auto candidate = mutateOnce(rng.next());
            if (!candidate) {
                count("gen.mutation_rejected");
                continue;
            }
            Canonical canon = canonicalize(*candidate);
            // Stale filter: an edit that round-tripped back to a
            // program the corpus already holds is wasted campaign
            // time — its record exists.
            if (poolHashes_.count(canon.hash)) {
                count("gen.mutation_stale");
                continue;
            }
            count("gen.mutations");
            return std::move(canon.program);
        }
    }
    count("gen.mutation_fallback");
    auto unit = generateProgram(seed, fallback);
    return instrument::instrumentUnit(*unit);
}

void
Mutator::count(const char *name, const char *label) const
{
    if (config_.metrics)
        config_.metrics->counter(name, label ? label : "").add();
}

} // namespace dce::gen
