/**
 * @file
 * Canonicalization shared by every subsystem that edits program ASTs
 * and needs to re-enter the corpus pipeline: the mutation-based
 * generator (gen::Mutator) and the metamorphic variant engine
 * (equiv::deriveVariant). Both follow the same contract:
 *
 *   1. strip the DCEMarker calls and declarations (markers are derived
 *      data — editing around them would leave stale indices);
 *   2. edit the marker-free AST;
 *   3. re-instrument, pretty-print, and hash with the store's FNV-1a —
 *      the *canonical text* whose hash content-addresses the program.
 *
 * Keeping strip / re-instrument / hash in one place is what makes
 * "canonical" mean the same bytes everywhere: a mutator candidate and
 * an equivalence variant of the same marker-free program produce the
 * same canonical text, so the store's dedup and the equiv engine's
 * stale filter agree by construction.
 */
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "instrument/instrument.hpp"
#include "lang/ast.hpp"

namespace dce::gen {

/**
 * Remove every DCEMarker call statement and marker declaration from
 * @p unit in place (the inverse of instrument::instrumentUnit, up to
 * re-instrumentation). Exposed for tests and the reducer.
 */
void stripMarkers(lang::TranslationUnit &unit);

/**
 * Parse + sema-check @p canonical_text and strip its markers: the
 * marker-free, sema-checked editing stock for a stored program. Null
 * when the text does not parse clean.
 */
std::unique_ptr<lang::TranslationUnit>
parseStripped(std::string_view canonical_text);

/** One canonicalized program: the instrumented unit (with marker
 * table), its printed text, and the text's content hash. */
struct Canonical {
    instrument::Instrumented program;
    std::string text; ///< lang::printUnit of program.unit
    std::string hash; ///< support::fnv1a64Hex of text
};

/**
 * Re-instrument the marker-free @p unit and produce its canonical
 * text + content hash — step 3 of the contract above. @p unit must be
 * sema-checked (instrumentation asserts it stays clean).
 */
Canonical canonicalize(const lang::TranslationUnit &unit);

} // namespace dce::gen
