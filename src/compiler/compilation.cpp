#include "compiler/compilation.hpp"

#include "backend/codegen.hpp"
#include "support/markers.hpp"

namespace dce::compiler {

std::set<unsigned>
survivingMarkersInIr(const ir::Module &module)
{
    std::set<unsigned> alive;
    for (const auto &fn : module.functions()) {
        if (fn->isDeclaration())
            continue; // declarations emit no code
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != ir::Opcode::Call)
                    continue;
                const ir::Function *callee = instr->callee;
                if (!callee || !callee->isDeclaration())
                    continue;
                if (auto index = support::markerIndex(callee->name()))
                    alive.insert(*index);
            }
        }
    }
    return alive;
}

const std::string &
Compilation::assembly() const
{
    if (!assembly_) {
        support::MetricsRegistry &registry =
            observers_.metrics ? *observers_.metrics
                               : support::MetricsRegistry::global();
        registry.counter("backend.emits").add();
        assembly_ = backend::emitAssembly(module());
    }
    return *assembly_;
}

} // namespace dce::compiler
