/**
 * @file
 * The result object of the compile-side API (DESIGN.md §13): a
 * `Compilation` owns one build's optimized module and derives its
 * artifacts lazily, memoizing each on first use.
 *
 *  - survivingMarkers(): the alive `DCEMarkerN` set read directly from
 *    the optimized IR. This is the campaign hot path — the backend
 *    emits every call of every function with a body, so the IR walk is
 *    exactly the set an assembly grep would find, without running
 *    register allocation or formatting a single line of text.
 *  - assembly(): the backend emission, produced only when something
 *    actually needs text (dossiers, codegen-diff triage, backend
 *    tests). Each materialization bumps the `backend.emits` counter so
 *    tests can assert that a plain campaign never pays for codegen.
 *  - error(): verification failures are part of the value. The old
 *    `Compiler::lastError()` was a `mutable` string written from
 *    `const` methods on a Compiler shared across the campaign thread
 *    pool — a data race. A Compilation belongs to one worker.
 *
 * Thread-safety: a Compilation is a per-thread value object and is NOT
 * internally synchronized; the lazy getters mutate memoization state.
 * Hand the whole object across a thread boundary, never share one.
 */
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>

#include "ir/ir.hpp"
#include "support/metrics.hpp"
#include "support/remarks.hpp"

namespace dce::compiler {

/**
 * Observability hooks for one build's pipeline execution, replacing
 * the `remarks`/`metrics` default-pointer pairs the old API threaded
 * through compile/compileLowered/optimize. Both are optional; value
 * semantics, so `{&remarks, &registry}` at a call site reads like the
 * options struct it is.
 */
struct BuildObservers {
    support::RemarkCollector *remarks = nullptr;
    support::MetricsRegistry *metrics = nullptr;
};

/** The alive-marker set of an optimized module, read from the IR: every
 * Call to a marker declaration inside any function with a body. The
 * backend emits exactly these calls (it performs no reachability
 * pruning — a dead internal function a weak global-DCE kept is still
 * emitted), so this equals aliveMarkersInAsm(emitAssembly(module)). */
std::set<unsigned> survivingMarkersInIr(const ir::Module &module);

class Compilation {
  public:
    /** An empty (moved-from / default) compilation; ok() is false. */
    Compilation() = default;

    Compilation(std::unique_ptr<ir::Module> module,
                BuildObservers observers, std::string error)
        : module_(std::move(module)), observers_(observers),
          error_(std::move(error))
    {
    }

    Compilation(Compilation &&) = default;
    Compilation &operator=(Compilation &&) = default;
    Compilation(const Compilation &) = delete;
    Compilation &operator=(const Compilation &) = delete;

    /** True when the pipeline ran without a verification failure and a
     * module is present. */
    bool ok() const { return module_ != nullptr && error_.empty(); }

    /** The verification failure, empty when ok. */
    const std::string &error() const { return error_; }

    /** The optimized module. @pre a module is present (default-
     * constructed Compilations have none). */
    ir::Module &
    module() const
    {
        assert(module_ && "empty Compilation");
        return *module_;
    }

    /** Give up ownership of the module (interpreter runs, tests). The
     * Compilation is empty afterwards. */
    std::unique_ptr<ir::Module>
    takeModule()
    {
        survivingMarkers_.reset();
        assembly_.reset();
        return std::move(module_);
    }

    /** Alive `DCEMarkerN` indices, from the optimized IR; memoized. */
    const std::set<unsigned> &
    survivingMarkers() const
    {
        if (!survivingMarkers_)
            survivingMarkers_ = survivingMarkersInIr(module());
        return *survivingMarkers_;
    }

    /**
     * The backend emission; memoized. Forces codegen (phi demotion
     * mutates the module, then the emitter walks it) and bumps
     * `backend.emits` on the observers' registry (the process global
     * when none was attached) — the laziness regression guard.
     */
    const std::string &assembly() const;

    /** The observers this compilation was built with. */
    support::RemarkCollector *remarks() const { return observers_.remarks; }
    support::MetricsRegistry *metrics() const { return observers_.metrics; }

  private:
    std::unique_ptr<ir::Module> module_;
    BuildObservers observers_;
    std::string error_;
    // Memoization caches — per-thread object, no synchronization.
    mutable std::optional<std::set<unsigned>> survivingMarkers_;
    mutable std::optional<std::string> assembly_;
};

} // namespace dce::compiler
