/**
 * @file
 * The two simulated optimizing compilers and their commit histories.
 *
 * `alpha` plays the role of GCC and `beta` the role of LLVM: both are
 * built from the same pass library (src/opt) but with deliberately
 * different PassConfig capabilities and different regression commits,
 * every one of which corresponds to a bug class catalogued by the
 * paper (DESIGN.md section 6). A Compiler is addressed by
 * (CompilerId, OptLevel, commit index); bisection walks the commit
 * axis exactly like `git bisect` over compiler builds.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compilation.hpp"
#include "ir/ir.hpp"
#include "lang/ast.hpp"
#include "opt/pass.hpp"

namespace dce::compiler {

enum class CompilerId {
    Alpha, ///< GCC-like
    Beta,  ///< LLVM-like
};

enum class OptLevel { O0, O1, Os, O2, O3 };

const char *compilerName(CompilerId id);
const char *optLevelName(OptLevel level);
/** All levels in the paper's Table 1/2 order: O0, O1, Os, O2, O3. */
const std::vector<OptLevel> &allOptLevels();

/** One synthetic commit in a compiler's history. */
struct Commit {
    std::string hash;      ///< synthetic short hash
    std::string subject;   ///< one-line commit message
    std::string component; ///< taxonomy entry (Tables 3/4 categories)
    std::vector<std::string> files; ///< synthetic touched files
    /** True if this commit is known (to us) to regress DCE; used only
     * by tests/benches for validating bisection results, never by the
     * detection pipeline itself. */
    bool knownRegression = false;
    /** Mutate the configuration for builds at or after this commit. */
    std::function<void(opt::PassConfig &, OptLevel)> apply;
};

/** A compiler's full definition: base capabilities plus history. */
class CompilerSpec {
  public:
    explicit CompilerSpec(CompilerId id);

    CompilerId id() const { return id_; }
    const std::string &name() const { return name_; }
    const std::vector<Commit> &history() const { return history_; }

    /** Index of the current release (reported-on) build. Commits after
     * head are fixes landed in response to bug reports (Table 5). */
    size_t headIndex() const { return headIndex_; }
    size_t latestIndex() const { return history_.size() - 1; }

    /** Effective configuration for a build of commit @p commit_index
     * at @p level (applies commits 0..commit_index in order). */
    opt::PassConfig configAt(OptLevel level, size_t commit_index) const;

  private:
    CompilerId id_;
    std::string name_;
    std::vector<Commit> history_;
    size_t headIndex_ = 0;
};

/** The singleton spec for each compiler. */
const CompilerSpec &spec(CompilerId id);

/**
 * A concrete compiler build: (id, level, commit). compile() lowers a
 * checked translation unit, runs the build's pipeline, and returns a
 * Compilation — the lazy artifact cache over the optimized module
 * (surviving markers from IR, assembly on demand, errors as part of
 * the value). A Compiler carries no mutable state, so one instance is
 * safe to share across the campaign thread pool.
 */
class Compiler {
  public:
    /** @param commit_index the build's commit; SIZE_MAX = head. */
    Compiler(CompilerId id, OptLevel level,
             size_t commit_index = SIZE_MAX);

    CompilerId id() const { return id_; }
    OptLevel level() const { return level_; }
    size_t commitIndex() const { return commitIndex_; }
    /** e.g. "alpha-O3@a3f9c21". */
    std::string describe() const;

    /**
     * Compile @p unit: lower + optimize. A verification failure
     * (@p verify_each, tests) is carried in the returned Compilation's
     * error() — the Compiler itself stays immutable.
     *
     * @param observers optional remark/metric sinks for the pipeline
     *        run (DESIGN.md §9); also consulted by the Compilation's
     *        lazy artifacts (`backend.emits`).
     */
    Compilation compile(const lang::TranslationUnit &unit,
                        bool verify_each = false,
                        BuildObservers observers = {}) const;

    /**
     * Compile from an already-lowered O0 module instead of from the
     * AST: clone @p lowered (ir::cloneModule) and run this build's
     * pipeline over the clone. @p lowered is not modified, so one
     * lowering can be shared across every build of a campaign — the
     * engine's lowering cache. Equivalent to compile() on the unit
     * @p lowered came from.
     */
    Compilation compileLowered(const ir::Module &lowered,
                               bool verify_each = false,
                               BuildObservers observers = {}) const;

    /**
     * Run this build's pipeline in place over @p module (which must
     * be an O0 lowering this build owns).
     * @return the verification failure, empty on success.
     */
    std::string optimize(ir::Module &module, bool verify_each = false,
                         BuildObservers observers = {}) const;

  private:
    CompilerId id_;
    OptLevel level_;
    size_t commitIndex_;
};

/** Build the pass pipeline for @p level under @p config into @p pm.
 * Exposed for tests and the Figure-1 walkthrough bench. */
void buildPipeline(opt::PassManager &pm, OptLevel level);

/** Level-adjusted configuration: which pass families run at all is a
 * property of the level, applied on top of the build's capabilities. */
opt::PassConfig adjustForLevel(opt::PassConfig config, OptLevel level);

} // namespace dce::compiler
