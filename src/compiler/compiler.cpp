#include "compiler/compiler.hpp"

#include <cassert>

#include "ir/clone.hpp"
#include "ir/lowering.hpp"
#include "support/trace.hpp"

namespace dce::compiler {

using opt::PassConfig;

const char *
compilerName(CompilerId id)
{
    return id == CompilerId::Alpha ? "alpha" : "beta";
}

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "O0";
      case OptLevel::O1: return "O1";
      case OptLevel::Os: return "Os";
      case OptLevel::O2: return "O2";
      case OptLevel::O3: return "O3";
    }
    return "?";
}

const std::vector<OptLevel> &
allOptLevels()
{
    static const std::vector<OptLevel> levels = {
        OptLevel::O0, OptLevel::O1, OptLevel::Os, OptLevel::O2,
        OptLevel::O3};
    return levels;
}

//===------------------------------------------------------------------===//
// Compiler specs: capabilities and commit histories
//===------------------------------------------------------------------===//

CompilerSpec::CompilerSpec(CompilerId id)
    : id_(id), name_(compilerName(id))
{
    auto noop = [](PassConfig &, OptLevel) {};

    if (id == CompilerId::Alpha) {
        // alpha ~ GCC. Flow-insensitive global value analysis (D1),
        // pointer compares fold at any offset (D2 strength), no exit
        // DSE (D3), no uniform-zero-array folding (D6 miss), no
        // shift-nonzero relation pre-fix (R8).
        history_.push_back(
            {"9f21ab04e31", "Initial import", "Build System", {},
             false,
             [](PassConfig &cfg, OptLevel) {
                 cfg.foldStoredEqualsInitGlobals = false;
                 cfg.flowSensitiveGlobalLoads = false;
                 cfg.foldUniformZeroArrays = false;
                 cfg.foldPtrCmpAnyOffset = true;
                 cfg.dseAtExit = false;
                 cfg.shiftNonzeroRelation = false;
                 cfg.inlineThreshold = 30;
                 cfg.unrollMaxTripCount = 8;
             }});
        history_.push_back(
            {"1c44d92ab07",
             "ipa: raise the -O2/-O3 inline growth limits", "Inlining",
             {"gcc/ipa-inline.c", "gcc/params.opt"}, false,
             [](PassConfig &cfg, OptLevel level) {
                 if (level == OptLevel::O2 || level == OptLevel::O3)
                     cfg.inlineThreshold = 45;
             }});
        history_.push_back(
            {"7e80fa0c662",
             "tree-ssa-sccvn: cache value numbers across iterations",
             "Value Numbering",
             {"gcc/tree-ssa-sccvn.c", "gcc/tree-ssa-pre.c"}, false,
             noop});
        history_.push_back(
            {"d44ab3a6f19",
             "alias: rework oracle caching for partial overlaps",
             "Alias Analysis", {"gcc/tree-ssa-alias.c"}, true,
             [](PassConfig &cfg, OptLevel level) {
                 // R5: lost base-object precision at -O3 (Listing 9c).
                 if (level == OptLevel::O3)
                     cfg.preciseAliasForwarding = false;
             }});
        history_.push_back(
            {"b7a3310f254",
             "vect: vectorize constant-step pointer stores at -O3",
             "Loop Transformations",
             {"gcc/tree-vect-stmts.c", "gcc/tree-vect-loop.c"}, true,
             [](PassConfig &cfg, OptLevel level) {
                 // R3: vectorized pointer data goes through unsigned
                 // long, blocking later folds (Listing 9e).
                 if (level == OptLevel::O3) {
                     cfg.loopStoreRewrite = true;
                     cfg.loopRewriteInsertsFreeze = true;
                 }
             }});
        history_.push_back(
            {"02e9c73aa80",
             "gimple-fold: fold memcmp of small constant buffers",
             "Peephole Optimizations", {"gcc/gimple-fold.c"}, false,
             noop});
        history_.push_back(
            {"e5cc0481a3b",
             "ipa-sra: create parameter-pruned specialized clones",
             "Interprocedural SRoA", {"gcc/ipa-sra.c"}, true,
             [](PassConfig &cfg, OptLevel level) {
                 // R6: transformed copies of inlined statics stay in
                 // the binary (Listing 9b).
                 if (level == OptLevel::O3)
                     cfg.keepInlinedHusks = true;
             }});
        history_.push_back(
            {"44ba20ee1ac",
             "threader: replace the forward threader with the "
             "backwards threader",
             "Jump Threading",
             {"gcc/tree-ssa-threadbackward.c",
              "gcc/tree-ssa-threadupdate.c",
              "gcc/tree-ssa-threadedge.c"},
             true,
             [](PassConfig &cfg, OptLevel level) {
                 // R4: threads through dead code, leaving opaque
                 // residual conditions (Listing 9d).
                 if (level == OptLevel::O3)
                     cfg.threadThroughDeadPhis = true;
             }});
        history_.push_back(
            {"a81f5c30d97",
             "cfg: compact block layout before expansion",
             "Control Flow Graph Analysis", {"gcc/cfgcleanup.c",
                                             "gcc/cfglayout.c"},
             false, noop});
        headIndex_ = history_.size() - 1;
        // Fix commits landed in response to reported bugs (Table 5).
        history_.push_back(
            {"5f9ccf17de7",
             "match.pd: derive X != 0 from (X << Y) != 0",
             "Value Propagation", {"gcc/match.pd"}, false,
             [](PassConfig &cfg, OptLevel) {
                 cfg.shiftNonzeroRelation = true; // fixes Listing 9a
             }});
        history_.push_back(
            {"d1d01a66012",
             "alias: restore precision for distinct base objects",
             "Alias Analysis", {"gcc/tree-ssa-alias.c"}, false,
             [](PassConfig &cfg, OptLevel) {
                 cfg.preciseAliasForwarding = true; // fixes Listing 9c
             }});
        history_.push_back(
            {"113860301f4",
             "threader: clean leftover phis before threading",
             "Jump Threading", {"gcc/tree-ssa-threadbackward.c"},
             false,
             [](PassConfig &cfg, OptLevel) {
                 cfg.threadThroughDeadPhis = false; // fixes Listing 9d
             }});
        history_.push_back(
            {"7d6bb80931b",
             "vect: keep pointer types for vectorized pointer data",
             "Loop Transformations", {"gcc/tree-vect-stmts.c"}, false,
             [](PassConfig &cfg, OptLevel) {
                 cfg.loopRewriteInsertsFreeze = false; // fixes 9e
             }});
        return;
    }

    // beta ~ LLVM. Flow-sensitive global loads in its early history
    // (pre-R7), stored-equals-init afterwards (D4), exit DSE (D3),
    // shift-nonzero relation (R8 present), uniform-zero arrays (D6),
    // but pointer compares fold only at offset 0 (D2 miss).
    history_.push_back(
        {"3a90bb71c5e", "Initial import", "Build System", {}, false,
         [](PassConfig &cfg, OptLevel) {
             cfg.foldStoredEqualsInitGlobals = false;
             cfg.flowSensitiveGlobalLoads = true; // LLVM <= 3.7
             cfg.foldUniformZeroArrays = false;
             cfg.foldPtrCmpAnyOffset = false; // D2: EarlyCSE miss
             cfg.dseAtExit = true;
             cfg.shiftNonzeroRelation = true;
             cfg.inlineThreshold = 50;
             cfg.unrollMaxTripCount = 10;
         }});
    history_.push_back(
        {"8d1f4e2ba93",
         "GlobalOpt: fold variable-index loads of all-zero constants",
         "Instruction Operand Folding",
         {"llvm/lib/Transforms/IPO/GlobalOpt.cpp"}, false,
         [](PassConfig &cfg, OptLevel) {
             cfg.foldUniformZeroArrays = true;
         }});
    history_.push_back(
        {"65c02df91e4",
         "GlobalOpt: replace flow-sensitive initializer propagation "
         "with the stored-value heuristic",
         "Value Propagation",
         {"llvm/lib/Transforms/IPO/GlobalOpt.cpp"}, true,
         [](PassConfig &cfg, OptLevel) {
             // R7: the Listing 6a regression (LLVM 3.7 -> 3.8).
             cfg.flowSensitiveGlobalLoads = false;
             cfg.foldStoredEqualsInitGlobals = true;
         }});
    history_.push_back(
        {"f02ce317ab8",
         "InstCombine: canonicalize boolean compare chains",
         "Peephole Optimizations",
         {"llvm/lib/Transforms/InstCombine/InstCombineCompares.cpp"},
         false, noop});
    history_.push_back(
        {"a99cf2e07d4",
         "SimpleLoopUnswitch: unswitch non-trivial invariant "
         "conditions at -O3, freezing the hoisted condition",
         "Loop Transformations",
         {"llvm/lib/Transforms/Scalar/SimpleLoopUnswitch.cpp"}, true,
         [](PassConfig &cfg, OptLevel level) {
             // R1: Listings 7/8a — freeze blocks later constant folds.
             if (level == OptLevel::O3)
                 cfg.unswitchInsertsFreeze = true;
         }});
    history_.push_back(
        {"c4b8aa016f3",
         "ConstantRange: tighten binary operator range math",
         "Value Constraint Analysis",
         {"llvm/lib/IR/ConstantRange.cpp"}, true,
         [](PassConfig &cfg, OptLevel level) {
             // R2: singleton ranges no longer fold through rem
             // (Listing 8b).
             if (level == OptLevel::O3)
                 cfg.vrpFoldsRem = false;
         }});
    history_.push_back(
        {"90be2d10f77", "NewPM: re-order GVN in the -O3 pipeline",
         "Pass Management",
         {"llvm/lib/Passes/PassBuilderPipelines.cpp",
          "llvm/lib/Passes/PassRegistry.def"},
         false, noop});
    headIndex_ = history_.size() - 1;
    history_.push_back(
        {"611a02cce509",
         "ConstantRange: handle rem of singleton ranges",
         "Value Constraint Analysis",
         {"llvm/lib/IR/ConstantRange.cpp"}, false,
         [](PassConfig &cfg, OptLevel) {
             cfg.vrpFoldsRem = true; // fixes Listing 8b
         }});
}

opt::PassConfig
CompilerSpec::configAt(OptLevel level, size_t commit_index) const
{
    assert(commit_index < history_.size());
    PassConfig cfg;
    for (size_t i = 0; i <= commit_index; ++i)
        history_[i].apply(cfg, level);
    return cfg;
}

const CompilerSpec &
spec(CompilerId id)
{
    static const CompilerSpec alpha(CompilerId::Alpha);
    static const CompilerSpec beta(CompilerId::Beta);
    return id == CompilerId::Alpha ? alpha : beta;
}

//===------------------------------------------------------------------===//
// Pipelines
//===------------------------------------------------------------------===//

opt::PassConfig
adjustForLevel(opt::PassConfig config, OptLevel level)
{
    switch (level) {
      case OptLevel::O0:
        break; // no pipeline at all
      case OptLevel::O1:
        config.inlineThreshold = std::min(config.inlineThreshold, 12u);
        // -O1 still fully unrolls tiny constant-trip loops (GCC's
        // cunroll runs at -O1), which is how Listing 9e is clean there.
        config.unrollMaxTripCount =
            std::min(config.unrollMaxTripCount, 4u);
        config.dseAtExit = false;
        config.loopUnswitch = false;
        config.loopStoreRewrite = false;
        config.keepInlinedHusks = false;
        break;
      case OptLevel::Os:
        config.inlineThreshold = std::min(config.inlineThreshold, 20u);
        config.unrollMaxTripCount = 0;
        config.loopUnswitch = false;
        config.loopStoreRewrite = false;
        break;
      case OptLevel::O2:
        // -O2 full-unrolls more cautiously than -O3 (matching the
        // growing unroll budgets of real compilers).
        config.unrollMaxTripCount =
            std::min(config.unrollMaxTripCount, 4u);
        config.loopUnswitch = false;
        config.loopStoreRewrite = false;
        break;
      case OptLevel::O3:
        config.loopUnswitch = true;
        break;
    }
    return config;
}

void
buildPipeline(opt::PassManager &pm, OptLevel level)
{
    using namespace opt;
    if (level == OptLevel::O0)
        return;

    auto scalar_round = [&pm] {
        pm.add(createInstCombinePass());
        pm.add(createSccpPass());
        pm.add(createSimplifyCfgPass());
        pm.add(createGlobalOptPass());
        pm.add(createMem2RegPass()); // promote localized globals
        pm.add(createEarlyCsePass());
        pm.add(createInstCombinePass());
        pm.add(createSccpPass());
        pm.add(createSimplifyCfgPass());
        pm.add(createDcePass());
        pm.add(createDsePass(/*allow_exit_dse=*/false));
    };

    pm.add(createInlinePass());
    pm.add(createMem2RegPass());
    pm.add(createSimplifyCfgPass());

    if (level == OptLevel::O1) {
        pm.add(createInstCombinePass());
        pm.add(createSccpPass());
        pm.add(createSimplifyCfgPass());
        pm.add(createGlobalOptPass());
        pm.add(createMem2RegPass());
        pm.add(createEarlyCsePass());
        pm.add(createInstCombinePass());
        pm.add(createSccpPass());
        pm.add(createDcePass());
        pm.add(createDsePass());
        pm.add(createSimplifyCfgPass());
        pm.add(createLoopUnrollPass());
        pm.add(createInstCombinePass());
        pm.add(createSccpPass());
        pm.add(createSimplifyCfgPass());
        pm.add(createEarlyCsePass());
        pm.add(createInstCombinePass());
        pm.add(createDcePass());
        pm.add(createSimplifyCfgPass());
        pm.add(createGlobalDcePass());
        return;
    }

    // Os / O2 / O3.
    if (level == OptLevel::O3) {
        // Unswitching runs *before* the scalar rounds discover the
        // condition's constant value — the pass-ordering interplay
        // behind the unswitch regression (Listings 7/8a): the freeze
        // it inserts then blocks the later folds.
        pm.add(createLoopUnswitchPass());
    }
    scalar_round();
    if (level == OptLevel::O3) {
        // The vectorizer-style rewrite claims store loops before the
        // unroller sees them (Listing 9e).
        pm.add(createLoopStoreRewritePass());
    }
    pm.add(createLoopUnrollPass());
    scalar_round();
    pm.add(createVrpPass());
    pm.add(createJumpThreadingPass());
    pm.add(createInstCombinePass());
    pm.add(createSccpPass());
    pm.add(createSimplifyCfgPass());
    pm.add(createEarlyCsePass());
    pm.add(createDcePass());
    pm.add(createDsePass());
    pm.add(createSimplifyCfgPass());
    pm.add(createGlobalDcePass());
}

//===------------------------------------------------------------------===//
// Compiler facade
//===------------------------------------------------------------------===//

Compiler::Compiler(CompilerId id, OptLevel level, size_t commit_index)
    : id_(id), level_(level),
      commitIndex_(commit_index == SIZE_MAX ? spec(id).headIndex()
                                            : commit_index)
{
    assert(commitIndex_ < spec(id).history().size());
}

std::string
Compiler::describe() const
{
    return std::string(compilerName(id_)) + "-" + optLevelName(level_) +
           "@" + spec(id_).history()[commitIndex_].hash;
}

Compilation
Compiler::compile(const lang::TranslationUnit &unit, bool verify_each,
                  BuildObservers observers) const
{
    std::unique_ptr<ir::Module> module = ir::lowerToIr(unit);
    std::string error = optimize(*module, verify_each, observers);
    return Compilation(std::move(module), observers, std::move(error));
}

Compilation
Compiler::compileLowered(const ir::Module &lowered, bool verify_each,
                         BuildObservers observers) const
{
    std::unique_ptr<ir::Module> module = ir::cloneModule(lowered);
    std::string error = optimize(*module, verify_each, observers);
    return Compilation(std::move(module), observers, std::move(error));
}

std::string
Compiler::optimize(ir::Module &module, bool verify_each,
                   BuildObservers observers) const
{
    if (level_ == OptLevel::O0)
        return {};
    support::TraceSpan span("optimize", "compile");
    opt::PassConfig config =
        adjustForLevel(spec(id_).configAt(level_, commitIndex_), level_);
    opt::PassManager pm(config);
    buildPipeline(pm, level_);
    pm.setRemarks(observers.remarks);
    pm.setMetrics(observers.metrics);
    pm.run(module, verify_each);
    return pm.lastError();
}

} // namespace dce::compiler
