#include "lang/sema.hpp"

#include <cassert>

#include "support/ints.hpp"

namespace dce::lang {

void
Sema::error(SourceLoc loc, std::string message)
{
    diags_.error(loc, std::move(message));
}

//===------------------------------------------------------------------===//
// Top level
//===------------------------------------------------------------------===//

void
Sema::check(TranslationUnit &unit)
{
    unit_ = &unit;
    scopes_.clear();
    scopes_.emplace_back(); // file scope

    // Register all file-scope names first so functions can reference
    // globals and call functions declared later in the file.
    for (auto &global : unit.globals) {
        if (scopes_[0].vars.count(global->name)) {
            error(global->loc, "redefinition of '" + global->name + "'");
            continue;
        }
        scopes_[0].vars[global->name] = global.get();
    }
    for (auto &fn : unit.functions) {
        // Multiple declarations of the same function are allowed if at
        // most one has a body; findFunction returns the first, so the
        // definition must come first or be unique. We check signature
        // compatibility only loosely (arity + return type).
        FunctionDecl *previous = nullptr;
        for (auto &other : unit.functions) {
            if (other.get() != fn.get() && other->name == fn->name) {
                previous = other.get();
                break;
            }
        }
        if (previous &&
            (previous->returnType != fn->returnType ||
             previous->params.size() != fn->params.size())) {
            error(fn->loc,
                  "conflicting declaration of '" + fn->name + "'");
        }
        if (previous && previous->isDefinition() && fn->isDefinition())
            error(fn->loc, "redefinition of function '" + fn->name + "'");
    }

    for (auto &global : unit.globals)
        checkGlobal(*global);
    for (auto &fn : unit.functions)
        checkFunction(*fn);

    scopes_.clear();
    unit_ = nullptr;
}

void
Sema::checkGlobal(VarDecl &decl)
{
    if (decl.init) {
        const Type *init_type = checkExpr(decl.init);
        if (!init_type)
            return;
        if (decl.type->isArray()) {
            error(decl.loc, "array global '" + decl.name +
                                "' requires a brace initializer");
            return;
        }
        convertTo(decl.init, decl.type);
        if (decl.type->isInt() && !evalConstInt(*decl.init)) {
            error(decl.loc, "initializer of global '" + decl.name +
                                "' is not a constant expression");
        }
        // Pointer globals may be initialized by address constants
        // (&global or &global[k]); lowering validates the exact shape.
    }
    for (ExprPtr &element : decl.initList) {
        if (!decl.type->isArray()) {
            error(decl.loc, "brace initializer requires an array type");
            return;
        }
        if (!checkExpr(element))
            return;
        convertTo(element, decl.type->element());
        if (decl.type->element()->isInt() && !evalConstInt(*element)) {
            error(decl.loc, "array initializer element is not constant");
        }
    }
    if (decl.type->isArray() &&
        decl.initList.size() > decl.type->arraySize()) {
        error(decl.loc, "too many initializers for '" + decl.name + "'");
    }
}

void
Sema::checkFunction(FunctionDecl &fn)
{
    if (!fn.body)
        return;
    currentFunction_ = &fn;
    scopes_.emplace_back();
    for (auto &param : fn.params) {
        if (scopes_.back().vars.count(param->name))
            error(param->loc, "duplicate parameter '" + param->name + "'");
        scopes_.back().vars[param->name] = param.get();
    }
    // The body's statements are checked in the parameter scope plus one
    // nested block scope (opened by checkStmt for the BlockStmt).
    checkStmt(*fn.body);
    scopes_.pop_back();
    currentFunction_ = nullptr;
}

//===------------------------------------------------------------------===//
// Statements
//===------------------------------------------------------------------===//

void
Sema::checkVarDecl(VarDecl &decl)
{
    if (scopes_.back().vars.count(decl.name)) {
        error(decl.loc,
              "redefinition of local variable '" + decl.name + "'");
    }
    scopes_.back().vars[decl.name] = &decl;
    if (decl.init) {
        if (checkExpr(decl.init))
            convertTo(decl.init, decl.type);
    }
    for (ExprPtr &element : decl.initList) {
        if (!decl.type->isArray()) {
            error(decl.loc, "brace initializer requires an array type");
            return;
        }
        if (checkExpr(element))
            convertTo(element, decl.type->element());
    }
}

void
Sema::checkStmt(Stmt &stmt)
{
    switch (stmt.kind()) {
      case StmtKind::Block: {
        auto &block = static_cast<BlockStmt &>(stmt);
        scopes_.emplace_back();
        for (StmtPtr &child : block.stmts)
            checkStmt(*child);
        scopes_.pop_back();
        break;
      }
      case StmtKind::ExprStmt:
        checkExpr(static_cast<ExprStmt &>(stmt).expr);
        break;
      case StmtKind::DeclStmt:
        checkVarDecl(*static_cast<DeclStmt &>(stmt).decl);
        break;
      case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(stmt);
        checkCondition(if_stmt.cond, "if");
        checkStmt(*if_stmt.thenStmt);
        if (if_stmt.elseStmt)
            checkStmt(*if_stmt.elseStmt);
        break;
      }
      case StmtKind::While: {
        auto &while_stmt = static_cast<WhileStmt &>(stmt);
        checkCondition(while_stmt.cond, "while");
        ++loopDepth_;
        checkStmt(*while_stmt.body);
        --loopDepth_;
        break;
      }
      case StmtKind::DoWhile: {
        auto &do_stmt = static_cast<DoWhileStmt &>(stmt);
        ++loopDepth_;
        checkStmt(*do_stmt.body);
        --loopDepth_;
        checkCondition(do_stmt.cond, "do-while");
        break;
      }
      case StmtKind::For: {
        auto &for_stmt = static_cast<ForStmt &>(stmt);
        scopes_.emplace_back(); // for-init declarations scope
        if (for_stmt.init)
            checkStmt(*for_stmt.init);
        if (for_stmt.cond)
            checkCondition(for_stmt.cond, "for");
        if (for_stmt.step)
            checkExpr(for_stmt.step);
        ++loopDepth_;
        checkStmt(*for_stmt.body);
        --loopDepth_;
        scopes_.pop_back();
        break;
      }
      case StmtKind::Switch: {
        auto &switch_stmt = static_cast<SwitchStmt &>(stmt);
        const Type *cond_type = checkExpr(switch_stmt.cond);
        if (cond_type && !cond_type->isInt()) {
            error(switch_stmt.loc, "switch value must be an integer");
        } else if (cond_type) {
            convertTo(switch_stmt.cond, promoted(cond_type));
        }
        bool saw_default = false;
        std::vector<int64_t> seen_values;
        for (SwitchCase &arm : switch_stmt.cases) {
            if (!arm.value) {
                if (saw_default)
                    error(arm.loc, "multiple default cases");
                saw_default = true;
            } else {
                for (int64_t seen : seen_values) {
                    if (seen == *arm.value)
                        error(arm.loc, "duplicate case value");
                }
                seen_values.push_back(*arm.value);
            }
            ++switchDepth_;
            checkStmt(*arm.body);
            --switchDepth_;
        }
        break;
      }
      case StmtKind::Return: {
        auto &ret = static_cast<ReturnStmt &>(stmt);
        assert(currentFunction_);
        const Type *expected = currentFunction_->returnType;
        if (ret.value) {
            if (expected->isVoid()) {
                error(ret.loc, "void function cannot return a value");
            } else if (checkExpr(ret.value)) {
                convertTo(ret.value, expected);
            }
        } else if (!expected->isVoid()) {
            error(ret.loc, "non-void function must return a value");
        }
        break;
      }
      case StmtKind::Break:
        if (loopDepth_ == 0 && switchDepth_ == 0)
            error(stmt.loc, "break outside of loop or switch");
        break;
      case StmtKind::Continue:
        if (loopDepth_ == 0)
            error(stmt.loc, "continue outside of loop");
        break;
      case StmtKind::Empty:
        break;
    }
}

void
Sema::checkCondition(ExprPtr &expr, const char *construct)
{
    const Type *type = checkExpr(expr);
    if (!type)
        return;
    decay(expr);
    if (!expr->type->isScalar()) {
        error(expr->loc, std::string(construct) +
                             " condition must have scalar type, got " +
                             type->str());
    }
}

//===------------------------------------------------------------------===//
// Conversions
//===------------------------------------------------------------------===//

const Type *
Sema::promoted(const Type *type) const
{
    if (type->isInt() && type->bits() < 32)
        return unit_->types->intType(32, true);
    return type;
}

const Type *
Sema::commonType(const Type *a, const Type *b) const
{
    assert(a->isInt() && b->isInt());
    a = promoted(a);
    b = promoted(b);
    if (a == b)
        return a;
    if (a->isSigned() == b->isSigned())
        return a->bits() >= b->bits() ? a : b;
    const Type *unsigned_type = a->isSigned() ? b : a;
    const Type *signed_type = a->isSigned() ? a : b;
    if (unsigned_type->bits() >= signed_type->bits())
        return unsigned_type;
    // The signed type is strictly wider, so it represents every value
    // of the unsigned type.
    return signed_type;
}

void
Sema::decay(ExprPtr &expr)
{
    if (!expr->type || !expr->type->isArray())
        return;
    const Type *ptr = unit_->types->pointerTo(expr->type->element());
    auto cast = std::make_unique<CastExpr>(ptr, std::move(expr),
                                           /*implicit=*/true);
    cast->loc = cast->sub->loc;
    cast->type = ptr;
    cast->lvalue = false;
    expr = std::move(cast);
}

void
Sema::convertTo(ExprPtr &expr, const Type *target)
{
    if (!expr->type)
        return; // a prior error; stay quiet
    decay(expr);
    const Type *from = expr->type;
    if (from == target)
        return;
    bool ok = false;
    if (from->isInt() && target->isInt()) {
        ok = true;
    } else if (from->isPtr() && target->isPtr()) {
        ok = (from == target);
    } else if (target->isPtr() && from->isInt()) {
        // Only the null pointer constant converts.
        std::optional<int64_t> value = evalConstInt(*expr);
        ok = value && *value == 0;
    }
    if (!ok) {
        error(expr->loc, "cannot convert " + from->str() + " to " +
                             target->str());
        return;
    }
    auto cast = std::make_unique<CastExpr>(target, std::move(expr),
                                           /*implicit=*/true);
    cast->loc = cast->sub->loc;
    cast->type = target;
    cast->lvalue = false;
    expr = std::move(cast);
}

//===------------------------------------------------------------------===//
// Expressions
//===------------------------------------------------------------------===//

VarDecl *
Sema::lookupVar(const std::string &name) const
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->vars.find(name);
        if (found != it->vars.end())
            return found->second;
    }
    return nullptr;
}

const Type *
Sema::checkExpr(ExprPtr &expr)
{
    assert(expr);
    switch (expr->kind()) {
      case ExprKind::IntLit: {
        auto &lit = static_cast<IntLit &>(*expr);
        // Literals that fit in int are int; otherwise long. Unsigned
        // 64-bit literals above INT64_MAX become unsigned long.
        if (lit.value <= INT32_MAX)
            lit.type = unit_->types->intType(32, true);
        else if (lit.value <= INT64_MAX)
            lit.type = unit_->types->intType(64, true);
        else
            lit.type = unit_->types->intType(64, false);
        lit.lvalue = false;
        return lit.type;
      }
      case ExprKind::VarRef: {
        auto &ref = static_cast<VarRef &>(*expr);
        ref.decl = lookupVar(ref.name);
        if (!ref.decl) {
            error(ref.loc, "use of undeclared variable '" + ref.name + "'");
            return nullptr;
        }
        ref.type = ref.decl->type;
        ref.lvalue = true;
        return ref.type;
      }
      case ExprKind::Unary:
        return checkUnary(expr);
      case ExprKind::Binary:
        return checkBinary(expr);
      case ExprKind::Assign:
        return checkAssign(expr);
      case ExprKind::Index:
        return checkIndex(expr);
      case ExprKind::Call:
        return checkCall(expr);
      case ExprKind::Conditional:
        return checkConditional(expr);
      case ExprKind::Cast: {
        auto &cast = static_cast<CastExpr &>(*expr);
        const Type *sub_type = checkExpr(cast.sub);
        if (!sub_type)
            return nullptr;
        decay(cast.sub);
        sub_type = cast.sub->type;
        bool ok = (sub_type->isInt() && cast.target->isInt()) ||
                  (sub_type->isPtr() && cast.target == sub_type);
        if (!ok) {
            error(cast.loc, "invalid cast from " + sub_type->str() +
                                " to " + cast.target->str());
            return nullptr;
        }
        cast.type = cast.target;
        cast.lvalue = false;
        return cast.type;
      }
    }
    return nullptr;
}

const Type *
Sema::checkUnary(ExprPtr &slot)
{
    auto &unary = static_cast<UnaryExpr &>(*slot);
    const Type *sub_type = checkExpr(unary.sub);
    if (!sub_type)
        return nullptr;

    switch (unary.op) {
      case UnaryOp::Neg:
      case UnaryOp::BitNot: {
        decay(unary.sub);
        if (!unary.sub->type->isInt()) {
            error(unary.loc, "operand of unary " +
                                 std::string(unaryOpSpelling(unary.op)) +
                                 " must be an integer");
            return nullptr;
        }
        const Type *result = promoted(unary.sub->type);
        convertTo(unary.sub, result);
        unary.type = result;
        unary.lvalue = false;
        return result;
      }
      case UnaryOp::LogicalNot: {
        decay(unary.sub);
        if (!unary.sub->type->isScalar()) {
            error(unary.loc, "operand of ! must be scalar");
            return nullptr;
        }
        unary.type = unit_->types->intType(32, true);
        unary.lvalue = false;
        return unary.type;
      }
      case UnaryOp::AddrOf: {
        if (!unary.sub->lvalue) {
            error(unary.loc, "cannot take address of rvalue");
            return nullptr;
        }
        // &array yields a pointer to the first element (MiniC collapses
        // T(*)[N] into T*; see DESIGN.md).
        const Type *pointee = sub_type->isArray() ? sub_type->element()
                                                  : sub_type;
        unary.type = unit_->types->pointerTo(pointee);
        unary.lvalue = false;
        return unary.type;
      }
      case UnaryOp::Deref: {
        decay(unary.sub);
        if (!unary.sub->type->isPtr()) {
            error(unary.loc, "cannot dereference non-pointer type " +
                                 sub_type->str());
            return nullptr;
        }
        unary.type = unary.sub->type->element();
        if (unary.type->isVoid()) {
            error(unary.loc, "cannot dereference void pointer");
            return nullptr;
        }
        unary.lvalue = true;
        return unary.type;
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        if (!unary.sub->lvalue || !sub_type->isInt()) {
            error(unary.loc,
                  "operand of ++/-- must be an integer lvalue");
            return nullptr;
        }
        unary.type = sub_type;
        unary.lvalue = false;
        return unary.type;
      }
    }
    return nullptr;
}

const Type *
Sema::checkBinary(ExprPtr &slot)
{
    auto &binary = static_cast<BinaryExpr &>(*slot);
    const Type *lhs_type = checkExpr(binary.lhs);
    const Type *rhs_type = checkExpr(binary.rhs);
    if (!lhs_type || !rhs_type)
        return nullptr;
    decay(binary.lhs);
    decay(binary.rhs);
    lhs_type = binary.lhs->type;
    rhs_type = binary.rhs->type;
    const Type *int_type = unit_->types->intType(32, true);

    switch (binary.op) {
      case BinaryOp::LogicalAnd:
      case BinaryOp::LogicalOr:
        if (!lhs_type->isScalar() || !rhs_type->isScalar()) {
            error(binary.loc, "operands of &&/|| must be scalar");
            return nullptr;
        }
        binary.type = int_type;
        binary.lvalue = false;
        return binary.type;

      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge: {
        if (lhs_type->isPtr() || rhs_type->isPtr()) {
            // Pointer comparison: both pointers of the same type, or
            // one side a null constant.
            if (lhs_type->isInt())
                convertTo(binary.lhs, rhs_type);
            else if (rhs_type->isInt())
                convertTo(binary.rhs, lhs_type);
            if (binary.lhs->type != binary.rhs->type ||
                !binary.lhs->type->isPtr()) {
                error(binary.loc, "invalid pointer comparison between " +
                                      lhs_type->str() + " and " +
                                      rhs_type->str());
                return nullptr;
            }
        } else {
            const Type *common = commonType(lhs_type, rhs_type);
            convertTo(binary.lhs, common);
            convertTo(binary.rhs, common);
        }
        binary.type = int_type;
        binary.lvalue = false;
        return binary.type;
      }

      case BinaryOp::Shl:
      case BinaryOp::Shr: {
        if (!lhs_type->isInt() || !rhs_type->isInt()) {
            error(binary.loc, "shift operands must be integers");
            return nullptr;
        }
        const Type *result = promoted(lhs_type);
        convertTo(binary.lhs, result);
        convertTo(binary.rhs, promoted(rhs_type));
        binary.type = result;
        binary.lvalue = false;
        return result;
      }

      default: { // arithmetic and bitwise
        if (!lhs_type->isInt() || !rhs_type->isInt()) {
            error(binary.loc,
                  std::string("operands of ") +
                      binaryOpSpelling(binary.op) +
                      " must be integers, got " + lhs_type->str() +
                      " and " + rhs_type->str());
            return nullptr;
        }
        const Type *common = commonType(lhs_type, rhs_type);
        convertTo(binary.lhs, common);
        convertTo(binary.rhs, common);
        binary.type = common;
        binary.lvalue = false;
        return common;
      }
    }
}

const Type *
Sema::checkAssign(ExprPtr &slot)
{
    auto &assign = static_cast<AssignExpr &>(*slot);
    const Type *lhs_type = checkExpr(assign.lhs);
    const Type *rhs_type = checkExpr(assign.rhs);
    if (!lhs_type || !rhs_type)
        return nullptr;
    if (!assign.lhs->lvalue) {
        error(assign.loc, "left side of assignment is not an lvalue");
        return nullptr;
    }
    if (lhs_type->isArray()) {
        error(assign.loc, "cannot assign to an array");
        return nullptr;
    }
    if (assign.op != AssignOp::Assign && !lhs_type->isInt()) {
        error(assign.loc, "compound assignment requires integer lvalue");
        return nullptr;
    }
    convertTo(assign.rhs, assign.op == AssignOp::Assign
                              ? lhs_type
                              : promoted(assign.rhs->type));
    assign.type = lhs_type;
    assign.lvalue = false;
    return lhs_type;
}

const Type *
Sema::checkIndex(ExprPtr &slot)
{
    auto &index = static_cast<IndexExpr &>(*slot);
    const Type *base_type = checkExpr(index.base);
    const Type *index_type = checkExpr(index.index);
    if (!base_type || !index_type)
        return nullptr;
    if (!index_type->isInt()) {
        error(index.loc, "array subscript must be an integer");
        return nullptr;
    }
    convertTo(index.index, unit_->types->intType(64, true));

    const Type *element = nullptr;
    if (base_type->isArray()) {
        // Arrays are indexed in place (no decay needed).
        element = base_type->element();
    } else {
        decay(index.base);
        if (!index.base->type->isPtr()) {
            error(index.loc, "subscripted value is not array or pointer");
            return nullptr;
        }
        element = index.base->type->element();
    }
    index.type = element;
    index.lvalue = true;
    return element;
}

const Type *
Sema::checkCall(ExprPtr &slot)
{
    auto &call = static_cast<CallExpr &>(*slot);
    call.decl = unit_->findFunction(call.callee);
    if (!call.decl) {
        error(call.loc, "call to undeclared function '" + call.callee +
                            "'");
        return nullptr;
    }
    if (call.args.size() != call.decl->params.size()) {
        error(call.loc, "wrong number of arguments to '" + call.callee +
                            "': expected " +
                            std::to_string(call.decl->params.size()) +
                            ", got " + std::to_string(call.args.size()));
        return nullptr;
    }
    for (size_t i = 0; i < call.args.size(); ++i) {
        if (checkExpr(call.args[i]))
            convertTo(call.args[i], call.decl->params[i]->type);
    }
    call.type = call.decl->returnType;
    call.lvalue = false;
    return call.type;
}

const Type *
Sema::checkConditional(ExprPtr &slot)
{
    auto &cond = static_cast<ConditionalExpr &>(*slot);
    checkCondition(cond.cond, "conditional");
    const Type *then_type = checkExpr(cond.thenExpr);
    const Type *else_type = checkExpr(cond.elseExpr);
    if (!then_type || !else_type)
        return nullptr;
    decay(cond.thenExpr);
    decay(cond.elseExpr);
    then_type = cond.thenExpr->type;
    else_type = cond.elseExpr->type;

    const Type *result = nullptr;
    if (then_type->isInt() && else_type->isInt()) {
        result = commonType(then_type, else_type);
        convertTo(cond.thenExpr, result);
        convertTo(cond.elseExpr, result);
    } else if (then_type->isPtr() && then_type == else_type) {
        result = then_type;
    } else {
        error(cond.loc, "incompatible conditional operand types " +
                            then_type->str() + " and " + else_type->str());
        return nullptr;
    }
    cond.type = result;
    cond.lvalue = false;
    return result;
}

//===------------------------------------------------------------------===//
// Constant evaluation
//===------------------------------------------------------------------===//

std::optional<int64_t>
evalConstInt(const Expr &expr)
{
    if (!expr.type || !expr.type->isInt())
        return std::nullopt;
    unsigned bits = expr.type->bits();
    bool is_signed = expr.type->isSigned();

    switch (expr.kind()) {
      case ExprKind::IntLit: {
        const auto &lit = static_cast<const IntLit &>(expr);
        return wrapInt(static_cast<int64_t>(lit.value), bits, is_signed);
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        std::optional<int64_t> sub = evalConstInt(*cast.sub);
        if (!sub)
            return std::nullopt;
        return wrapInt(*sub, bits, is_signed);
      }
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        std::optional<int64_t> sub = evalConstInt(*unary.sub);
        if (!sub)
            return std::nullopt;
        switch (unary.op) {
          case UnaryOp::Neg:
            return subInt(0, *sub, bits, is_signed);
          case UnaryOp::BitNot:
            return wrapInt(~*sub, bits, is_signed);
          case UnaryOp::LogicalNot:
            return *sub == 0 ? 1 : 0;
          default:
            return std::nullopt;
        }
      }
      case ExprKind::Binary: {
        const auto &binary = static_cast<const BinaryExpr &>(expr);
        std::optional<int64_t> lhs = evalConstInt(*binary.lhs);
        // && and || short-circuit even in constant expressions.
        if (binary.op == BinaryOp::LogicalAnd) {
            if (!lhs)
                return std::nullopt;
            if (*lhs == 0)
                return 0;
            std::optional<int64_t> rhs = evalConstInt(*binary.rhs);
            if (!rhs)
                return std::nullopt;
            return *rhs != 0 ? 1 : 0;
        }
        if (binary.op == BinaryOp::LogicalOr) {
            if (!lhs)
                return std::nullopt;
            if (*lhs != 0)
                return 1;
            std::optional<int64_t> rhs = evalConstInt(*binary.rhs);
            if (!rhs)
                return std::nullopt;
            return *rhs != 0 ? 1 : 0;
        }
        std::optional<int64_t> rhs = evalConstInt(*binary.rhs);
        if (!lhs || !rhs)
            return std::nullopt;
        // Operands share the expression's operation type except for
        // shifts, where the rhs was converted independently; either
        // way the lhs type drives the semantics below.
        const Type *op_type = binary.lhs->type;
        unsigned op_bits = op_type->bits();
        bool op_signed = op_type->isSigned();
        switch (binary.op) {
          case BinaryOp::Add:
            return addInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Sub:
            return subInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Mul:
            return mulInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Div:
            return divInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Rem:
            return remInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Shl:
            return shlInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::Shr:
            return shrInt(*lhs, *rhs, op_bits, op_signed);
          case BinaryOp::BitAnd:
            return wrapInt(*lhs & *rhs, op_bits, op_signed);
          case BinaryOp::BitOr:
            return wrapInt(*lhs | *rhs, op_bits, op_signed);
          case BinaryOp::BitXor:
            return wrapInt(*lhs ^ *rhs, op_bits, op_signed);
          case BinaryOp::Lt:
            return ltInt(*lhs, *rhs, op_signed) ? 1 : 0;
          case BinaryOp::Gt:
            return ltInt(*rhs, *lhs, op_signed) ? 1 : 0;
          case BinaryOp::Le:
            return ltInt(*rhs, *lhs, op_signed) ? 0 : 1;
          case BinaryOp::Ge:
            return ltInt(*lhs, *rhs, op_signed) ? 0 : 1;
          case BinaryOp::Eq:
            return *lhs == *rhs ? 1 : 0;
          case BinaryOp::Ne:
            return *lhs != *rhs ? 1 : 0;
          default:
            return std::nullopt;
        }
      }
      case ExprKind::Conditional: {
        const auto &cond = static_cast<const ConditionalExpr &>(expr);
        std::optional<int64_t> selector = evalConstInt(*cond.cond);
        if (!selector)
            return std::nullopt;
        return evalConstInt(*selector ? *cond.thenExpr : *cond.elseExpr);
      }
      default:
        return std::nullopt;
    }
}

} // namespace dce::lang
