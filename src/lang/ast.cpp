#include "lang/ast.hpp"

#include <cassert>

namespace dce::lang {

const char *
unaryOpSpelling(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::LogicalNot: return "!";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::AddrOf: return "&";
      case UnaryOp::Deref: return "*";
      case UnaryOp::PreInc: return "++";
      case UnaryOp::PreDec: return "--";
      case UnaryOp::PostInc: return "++";
      case UnaryOp::PostDec: return "--";
    }
    return "?";
}

const char *
binaryOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::LogicalAnd: return "&&";
      case BinaryOp::LogicalOr: return "||";
    }
    return "?";
}

const char *
assignOpSpelling(AssignOp op)
{
    switch (op) {
      case AssignOp::Assign: return "=";
      case AssignOp::Add: return "+=";
      case AssignOp::Sub: return "-=";
      case AssignOp::Mul: return "*=";
      case AssignOp::Div: return "/=";
      case AssignOp::Rem: return "%=";
      case AssignOp::Shl: return "<<=";
      case AssignOp::Shr: return ">>=";
      case AssignOp::And: return "&=";
      case AssignOp::Or: return "|=";
      case AssignOp::Xor: return "^=";
    }
    return "?";
}

BinaryOp
assignOpBinary(AssignOp op)
{
    switch (op) {
      case AssignOp::Add: return BinaryOp::Add;
      case AssignOp::Sub: return BinaryOp::Sub;
      case AssignOp::Mul: return BinaryOp::Mul;
      case AssignOp::Div: return BinaryOp::Div;
      case AssignOp::Rem: return BinaryOp::Rem;
      case AssignOp::Shl: return BinaryOp::Shl;
      case AssignOp::Shr: return BinaryOp::Shr;
      case AssignOp::And: return BinaryOp::BitAnd;
      case AssignOp::Or: return BinaryOp::BitOr;
      case AssignOp::Xor: return BinaryOp::BitXor;
      case AssignOp::Assign:
        break;
    }
    assert(false && "plain assignment has no binary op");
    return BinaryOp::Add;
}

namespace {

/** Copy the source-location and sema annotations shared by all exprs. */
ExprPtr
withExprCommon(const Expr &from, ExprPtr to)
{
    to->loc = from.loc;
    to->type = from.type;
    to->lvalue = from.lvalue;
    return to;
}

ExprPtr
cloneOrNull(const ExprPtr &expr)
{
    return expr ? expr->clone() : nullptr;
}

StmtPtr
cloneOrNull(const StmtPtr &stmt)
{
    return stmt ? stmt->clone() : nullptr;
}

} // namespace

ExprPtr
IntLit::clone() const
{
    return withExprCommon(*this, std::make_unique<IntLit>(value));
}

ExprPtr
VarRef::clone() const
{
    // decl deliberately not copied: clones must be re-sema'd.
    return withExprCommon(*this, std::make_unique<VarRef>(name));
}

ExprPtr
UnaryExpr::clone() const
{
    return withExprCommon(*this,
                          std::make_unique<UnaryExpr>(op, sub->clone()));
}

ExprPtr
BinaryExpr::clone() const
{
    return withExprCommon(
        *this, std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone()));
}

ExprPtr
AssignExpr::clone() const
{
    return withExprCommon(
        *this, std::make_unique<AssignExpr>(op, lhs->clone(), rhs->clone()));
}

ExprPtr
IndexExpr::clone() const
{
    return withExprCommon(
        *this, std::make_unique<IndexExpr>(base->clone(), index->clone()));
}

ExprPtr
CallExpr::clone() const
{
    std::vector<ExprPtr> cloned_args;
    cloned_args.reserve(args.size());
    for (const ExprPtr &arg : args)
        cloned_args.push_back(arg->clone());
    return withExprCommon(
        *this, std::make_unique<CallExpr>(callee, std::move(cloned_args)));
}

ExprPtr
ConditionalExpr::clone() const
{
    return withExprCommon(
        *this, std::make_unique<ConditionalExpr>(
                   cond->clone(), thenExpr->clone(), elseExpr->clone()));
}

ExprPtr
CastExpr::clone() const
{
    return withExprCommon(
        *this, std::make_unique<CastExpr>(target, sub->clone(), implicit));
}

std::unique_ptr<VarDecl>
VarDecl::clone() const
{
    auto copy = std::make_unique<VarDecl>(name, type, storage);
    copy->init = cloneOrNull(init);
    copy->initList.reserve(initList.size());
    for (const ExprPtr &element : initList)
        copy->initList.push_back(element->clone());
    copy->loc = loc;
    return copy;
}

std::unique_ptr<FunctionDecl>
FunctionDecl::clone() const
{
    auto copy = std::make_unique<FunctionDecl>(name, returnType);
    copy->params.reserve(params.size());
    for (const auto &param : params)
        copy->params.push_back(param->clone());
    if (body)
        copy->body = body->cloneBlock();
    copy->isStatic = isStatic;
    copy->loc = loc;
    return copy;
}

std::unique_ptr<BlockStmt>
BlockStmt::cloneBlock() const
{
    auto copy = std::make_unique<BlockStmt>();
    copy->loc = loc;
    copy->stmts.reserve(stmts.size());
    for (const StmtPtr &stmt : stmts)
        copy->stmts.push_back(stmt->clone());
    return copy;
}

StmtPtr
BlockStmt::clone() const
{
    return cloneBlock();
}

StmtPtr
ExprStmt::clone() const
{
    auto copy = std::make_unique<ExprStmt>(expr->clone());
    copy->loc = loc;
    return copy;
}

StmtPtr
DeclStmt::clone() const
{
    auto copy = std::make_unique<DeclStmt>(decl->clone());
    copy->loc = loc;
    return copy;
}

StmtPtr
IfStmt::clone() const
{
    auto copy = std::make_unique<IfStmt>(cond->clone(), thenStmt->clone(),
                                         cloneOrNull(elseStmt));
    copy->loc = loc;
    return copy;
}

StmtPtr
WhileStmt::clone() const
{
    auto copy = std::make_unique<WhileStmt>(cond->clone(), body->clone());
    copy->loc = loc;
    return copy;
}

StmtPtr
DoWhileStmt::clone() const
{
    auto copy = std::make_unique<DoWhileStmt>(body->clone(), cond->clone());
    copy->loc = loc;
    return copy;
}

StmtPtr
ForStmt::clone() const
{
    auto copy = std::make_unique<ForStmt>();
    copy->init = cloneOrNull(init);
    copy->cond = cloneOrNull(cond);
    copy->step = cloneOrNull(step);
    copy->body = body->clone();
    copy->loc = loc;
    return copy;
}

SwitchCase
SwitchCase::clone() const
{
    SwitchCase copy;
    copy.value = value;
    copy.body = body->cloneBlock();
    copy.loc = loc;
    return copy;
}

StmtPtr
SwitchStmt::clone() const
{
    auto copy = std::make_unique<SwitchStmt>(cond->clone());
    copy->cases.reserve(cases.size());
    for (const SwitchCase &arm : cases)
        copy->cases.push_back(arm.clone());
    copy->loc = loc;
    return copy;
}

StmtPtr
ReturnStmt::clone() const
{
    auto copy = std::make_unique<ReturnStmt>(cloneOrNull(value));
    copy->loc = loc;
    return copy;
}

StmtPtr
BreakStmt::clone() const
{
    auto copy = std::make_unique<BreakStmt>();
    copy->loc = loc;
    return copy;
}

StmtPtr
ContinueStmt::clone() const
{
    auto copy = std::make_unique<ContinueStmt>();
    copy->loc = loc;
    return copy;
}

StmtPtr
EmptyStmt::clone() const
{
    auto copy = std::make_unique<EmptyStmt>();
    copy->loc = loc;
    return copy;
}

FunctionDecl *
TranslationUnit::findFunction(const std::string &name) const
{
    for (const auto &fn : functions) {
        if (fn->name == name)
            return fn.get();
    }
    return nullptr;
}

VarDecl *
TranslationUnit::findGlobal(const std::string &name) const
{
    for (const auto &global : globals) {
        if (global->name == name)
            return global.get();
    }
    return nullptr;
}

std::unique_ptr<TranslationUnit>
TranslationUnit::clone() const
{
    auto copy = std::make_unique<TranslationUnit>();
    copy->types = types;
    copy->globals.reserve(globals.size());
    for (const auto &global : globals)
        copy->globals.push_back(global->clone());
    copy->functions.reserve(functions.size());
    for (const auto &fn : functions)
        copy->functions.push_back(fn->clone());
    copy->declOrder = declOrder;
    return copy;
}

} // namespace dce::lang
