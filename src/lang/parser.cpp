#include "lang/parser.hpp"

#include <cassert>

#include "lang/lexer.hpp"
#include "lang/sema.hpp"

namespace dce::lang {

Parser::Parser(std::string_view source, DiagnosticEngine &diags)
    : diags_(diags)
{
    Lexer lexer(source, diags);
    tokens_ = lexer.lexAll();
}

const Token &
Parser::peek(size_t ahead) const
{
    size_t index = pos_ + ahead;
    if (index >= tokens_.size())
        index = tokens_.size() - 1; // Eof token
    return tokens_[index];
}

Token
Parser::consume()
{
    Token tok = current();
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return tok;
}

bool
Parser::accept(TokKind kind)
{
    if (!check(kind))
        return false;
    consume();
    return true;
}

Token
Parser::expect(TokKind kind, const char *context)
{
    if (!check(kind)) {
        diags_.error(current().loc,
                     std::string("expected ") + tokKindName(kind) + " " +
                         context + ", found " + tokKindName(current().kind));
        throw ParseError{};
    }
    return consume();
}

void
Parser::fail(const char *message)
{
    diags_.error(current().loc, message);
    throw ParseError{};
}

//===------------------------------------------------------------------===//
// Types
//===------------------------------------------------------------------===//

bool
Parser::startsType() const
{
    switch (current().kind) {
      case TokKind::KwVoid:
      case TokKind::KwChar:
      case TokKind::KwShort:
      case TokKind::KwInt:
      case TokKind::KwLong:
      case TokKind::KwUnsigned:
      case TokKind::KwSigned:
        return true;
      default:
        return false;
    }
}

const Type *
Parser::parseTypeSpecifier(bool allow_void)
{
    bool is_signed = true;
    bool saw_sign = false;
    if (accept(TokKind::KwUnsigned)) {
        is_signed = false;
        saw_sign = true;
    } else if (accept(TokKind::KwSigned)) {
        saw_sign = true;
    }

    switch (current().kind) {
      case TokKind::KwVoid:
        if (!allow_void || saw_sign)
            fail("'void' not allowed here");
        consume();
        return types_->voidType();
      case TokKind::KwChar:
        consume();
        return types_->intType(8, is_signed);
      case TokKind::KwShort:
        consume();
        accept(TokKind::KwInt); // "short int"
        return types_->intType(16, is_signed);
      case TokKind::KwInt:
        consume();
        return types_->intType(32, is_signed);
      case TokKind::KwLong:
        consume();
        accept(TokKind::KwLong); // "long long" == long
        accept(TokKind::KwInt);  // "long int"
        return types_->intType(64, is_signed);
      default:
        if (saw_sign) // bare "unsigned" / "signed" == int
            return types_->intType(32, is_signed);
        fail("expected a type specifier");
    }
}

const Type *
Parser::parsePointerSuffix(const Type *base)
{
    const Type *type = base;
    while (accept(TokKind::Star))
        type = types_->pointerTo(type);
    return type;
}

//===------------------------------------------------------------------===//
// Declarations
//===------------------------------------------------------------------===//

std::unique_ptr<TranslationUnit>
Parser::parseTranslationUnit()
{
    auto unit = std::make_unique<TranslationUnit>();
    types_ = unit->types;
    while (!check(TokKind::Eof)) {
        try {
            parseTopLevel(*unit);
        } catch (ParseError &) {
            // Skip to the next ';' or '}' at file scope and resume, so
            // one bad declaration yields one diagnostic, not a cascade.
            while (!check(TokKind::Eof) && !accept(TokKind::Semicolon) &&
                   !accept(TokKind::RBrace)) {
                consume();
            }
        }
    }
    return unit;
}

void
Parser::parseTopLevel(TranslationUnit &unit)
{
    SourceLoc loc = current().loc;
    bool is_static = accept(TokKind::KwStatic);
    bool is_extern = !is_static && accept(TokKind::KwExtern);
    (void)is_extern; // extern is the default linkage; accepted, ignored
    const Type *base = parseTypeSpecifier(/*allow_void=*/true);

    for (;;) {
        const Type *decl_type = parsePointerSuffix(base);
        Token name = expect(TokKind::Identifier, "in declaration");

        if (check(TokKind::LParen)) {
            unit.addFunction(
                parseFunctionRest(decl_type, name.text, is_static, loc));
            return;
        }

        if (decl_type->isVoid())
            fail("variable cannot have type void");
        Storage storage =
            is_static ? Storage::StaticGlobal : Storage::Global;
        unit.addGlobal(parseVarRest(decl_type, name.text, storage, loc));
        if (accept(TokKind::Comma))
            continue;
        expect(TokKind::Semicolon, "after global declaration");
        return;
    }
}

std::unique_ptr<FunctionDecl>
Parser::parseFunctionRest(const Type *ret_type, std::string name,
                          bool is_static, SourceLoc loc)
{
    auto fn = std::make_unique<FunctionDecl>(std::move(name), ret_type);
    fn->isStatic = is_static;
    fn->loc = loc;

    expect(TokKind::LParen, "in function declaration");
    if (check(TokKind::KwVoid) && peek(1).is(TokKind::RParen)) {
        consume(); // (void)
    } else if (!check(TokKind::RParen)) {
        for (;;) {
            SourceLoc param_loc = current().loc;
            const Type *base = parseTypeSpecifier(/*allow_void=*/false);
            const Type *param_type = parsePointerSuffix(base);
            Token param_name = expect(TokKind::Identifier, "in parameter");
            auto param = std::make_unique<VarDecl>(
                param_name.text, param_type, Storage::Param);
            param->loc = param_loc;
            fn->params.push_back(std::move(param));
            if (!accept(TokKind::Comma))
                break;
        }
    }
    expect(TokKind::RParen, "after parameters");

    if (accept(TokKind::Semicolon))
        return fn; // extern declaration, no body
    fn->body = parseBlock();
    return fn;
}

std::unique_ptr<VarDecl>
Parser::parseVarRest(const Type *decl_type, std::string name,
                     Storage storage, SourceLoc loc)
{
    const Type *type = decl_type;
    if (accept(TokKind::LBracket)) {
        Token size = expect(TokKind::IntLiteral, "as array size");
        expect(TokKind::RBracket, "after array size");
        if (size.intValue == 0)
            fail("array size must be positive");
        type = types_->arrayOf(decl_type, size.intValue);
    }
    auto decl = std::make_unique<VarDecl>(std::move(name), type, storage);
    decl->loc = loc;

    if (accept(TokKind::Assign)) {
        if (accept(TokKind::LBrace)) {
            if (!type->isArray())
                fail("brace initializer requires an array type");
            if (!check(TokKind::RBrace)) {
                for (;;) {
                    decl->initList.push_back(parseAssignment());
                    if (!accept(TokKind::Comma))
                        break;
                }
            }
            expect(TokKind::RBrace, "after array initializer");
        } else {
            decl->init = parseAssignment();
        }
    }
    return decl;
}

//===------------------------------------------------------------------===//
// Statements
//===------------------------------------------------------------------===//

std::unique_ptr<BlockStmt>
Parser::parseBlock()
{
    auto block = std::make_unique<BlockStmt>();
    block->loc = current().loc;
    expect(TokKind::LBrace, "to open block");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        if (startsType() || check(TokKind::KwStatic)) {
            parseLocalDecls(block->stmts);
        } else {
            block->stmts.push_back(parseStmt());
        }
    }
    expect(TokKind::RBrace, "to close block");
    return block;
}

void
Parser::parseLocalDecls(std::vector<StmtPtr> &out)
{
    SourceLoc loc = current().loc;
    bool is_static = accept(TokKind::KwStatic);
    // MiniC restricts function-scope statics to keep the interpreter's
    // storage model simple; Csmith-style programs declare statics at
    // file scope.
    if (is_static)
        fail("function-scope static variables are not supported");
    const Type *base = parseTypeSpecifier(/*allow_void=*/false);
    for (;;) {
        const Type *decl_type = parsePointerSuffix(base);
        Token name = expect(TokKind::Identifier, "in local declaration");
        auto decl =
            parseVarRest(decl_type, name.text, Storage::Local, loc);
        auto stmt = std::make_unique<DeclStmt>(std::move(decl));
        stmt->loc = loc;
        out.push_back(std::move(stmt));
        if (accept(TokKind::Comma))
            continue;
        expect(TokKind::Semicolon, "after local declaration");
        return;
    }
}

StmtPtr
Parser::parseStmt()
{
    SourceLoc loc = current().loc;
    switch (current().kind) {
      case TokKind::LBrace:
        return parseBlock();
      case TokKind::KwIf:
        return parseIf();
      case TokKind::KwWhile:
        return parseWhile();
      case TokKind::KwDo:
        return parseDoWhile();
      case TokKind::KwFor:
        return parseFor();
      case TokKind::KwSwitch:
        return parseSwitch();
      case TokKind::KwReturn:
        return parseReturn();
      case TokKind::KwBreak: {
        consume();
        expect(TokKind::Semicolon, "after break");
        auto stmt = std::make_unique<BreakStmt>();
        stmt->loc = loc;
        return stmt;
      }
      case TokKind::KwContinue: {
        consume();
        expect(TokKind::Semicolon, "after continue");
        auto stmt = std::make_unique<ContinueStmt>();
        stmt->loc = loc;
        return stmt;
      }
      case TokKind::Semicolon: {
        consume();
        auto stmt = std::make_unique<EmptyStmt>();
        stmt->loc = loc;
        return stmt;
      }
      default: {
        ExprPtr expr = parseExpr();
        expect(TokKind::Semicolon, "after expression statement");
        auto stmt = std::make_unique<ExprStmt>(std::move(expr));
        stmt->loc = loc;
        return stmt;
      }
    }
}

StmtPtr
Parser::parseIf()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwIf, "");
    expect(TokKind::LParen, "after if");
    ExprPtr cond = parseExpr();
    expect(TokKind::RParen, "after if condition");
    StmtPtr then_stmt = parseStmt();
    StmtPtr else_stmt;
    if (accept(TokKind::KwElse))
        else_stmt = parseStmt();
    auto stmt = std::make_unique<IfStmt>(std::move(cond),
                                         std::move(then_stmt),
                                         std::move(else_stmt));
    stmt->loc = loc;
    return stmt;
}

StmtPtr
Parser::parseWhile()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwWhile, "");
    expect(TokKind::LParen, "after while");
    ExprPtr cond = parseExpr();
    expect(TokKind::RParen, "after while condition");
    StmtPtr body = parseStmt();
    auto stmt = std::make_unique<WhileStmt>(std::move(cond),
                                            std::move(body));
    stmt->loc = loc;
    return stmt;
}

StmtPtr
Parser::parseDoWhile()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwDo, "");
    StmtPtr body = parseStmt();
    expect(TokKind::KwWhile, "after do body");
    expect(TokKind::LParen, "after while");
    ExprPtr cond = parseExpr();
    expect(TokKind::RParen, "after do-while condition");
    expect(TokKind::Semicolon, "after do-while");
    auto stmt = std::make_unique<DoWhileStmt>(std::move(body),
                                              std::move(cond));
    stmt->loc = loc;
    return stmt;
}

StmtPtr
Parser::parseFor()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwFor, "");
    expect(TokKind::LParen, "after for");

    auto stmt = std::make_unique<ForStmt>();
    stmt->loc = loc;
    if (accept(TokKind::Semicolon)) {
        // no init
    } else if (startsType()) {
        const Type *base = parseTypeSpecifier(/*allow_void=*/false);
        const Type *decl_type = parsePointerSuffix(base);
        Token name = expect(TokKind::Identifier, "in for-init");
        auto decl = parseVarRest(decl_type, name.text, Storage::Local, loc);
        stmt->init = std::make_unique<DeclStmt>(std::move(decl));
        expect(TokKind::Semicolon, "after for-init");
    } else {
        stmt->init = std::make_unique<ExprStmt>(parseExpr());
        expect(TokKind::Semicolon, "after for-init");
    }
    if (!check(TokKind::Semicolon))
        stmt->cond = parseExpr();
    expect(TokKind::Semicolon, "after for-condition");
    if (!check(TokKind::RParen))
        stmt->step = parseExpr();
    expect(TokKind::RParen, "after for-step");
    stmt->body = parseStmt();
    return stmt;
}

StmtPtr
Parser::parseSwitch()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwSwitch, "");
    expect(TokKind::LParen, "after switch");
    ExprPtr cond = parseExpr();
    expect(TokKind::RParen, "after switch value");
    auto stmt = std::make_unique<SwitchStmt>(std::move(cond));
    stmt->loc = loc;

    expect(TokKind::LBrace, "to open switch body");
    while (!check(TokKind::RBrace)) {
        SwitchCase arm;
        arm.loc = current().loc;
        if (accept(TokKind::KwCase)) {
            bool negative = accept(TokKind::Minus);
            Token value = expect(TokKind::IntLiteral, "after case");
            int64_t v = static_cast<int64_t>(value.intValue);
            arm.value = negative ? -v : v;
        } else if (accept(TokKind::KwDefault)) {
            arm.value = std::nullopt;
        } else {
            fail("expected 'case' or 'default' in switch body");
        }
        expect(TokKind::Colon, "after case label");

        // MiniC switch arms do not fall through: the body runs until the
        // mandatory trailing 'break;', which we consume here.
        arm.body = std::make_unique<BlockStmt>();
        arm.body->loc = arm.loc;
        for (;;) {
            if (check(TokKind::KwBreak)) {
                consume();
                expect(TokKind::Semicolon, "after break");
                break;
            }
            if (check(TokKind::RBrace) || check(TokKind::KwCase) ||
                check(TokKind::KwDefault)) {
                fail("MiniC switch arms must end with 'break;'");
            }
            if (startsType())
                parseLocalDecls(arm.body->stmts);
            else
                arm.body->stmts.push_back(parseStmt());
        }
        stmt->cases.push_back(std::move(arm));
    }
    expect(TokKind::RBrace, "to close switch body");
    return stmt;
}

StmtPtr
Parser::parseReturn()
{
    SourceLoc loc = current().loc;
    expect(TokKind::KwReturn, "");
    ExprPtr value;
    if (!check(TokKind::Semicolon))
        value = parseExpr();
    expect(TokKind::Semicolon, "after return");
    auto stmt = std::make_unique<ReturnStmt>(std::move(value));
    stmt->loc = loc;
    return stmt;
}

//===------------------------------------------------------------------===//
// Expressions
//===------------------------------------------------------------------===//

ExprPtr
Parser::parseExpr()
{
    return parseAssignment();
}

ExprPtr
Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();

    AssignOp op;
    switch (current().kind) {
      case TokKind::Assign: op = AssignOp::Assign; break;
      case TokKind::PlusAssign: op = AssignOp::Add; break;
      case TokKind::MinusAssign: op = AssignOp::Sub; break;
      case TokKind::StarAssign: op = AssignOp::Mul; break;
      case TokKind::SlashAssign: op = AssignOp::Div; break;
      case TokKind::PercentAssign: op = AssignOp::Rem; break;
      case TokKind::AmpAssign: op = AssignOp::And; break;
      case TokKind::PipeAssign: op = AssignOp::Or; break;
      case TokKind::CaretAssign: op = AssignOp::Xor; break;
      case TokKind::ShlAssign: op = AssignOp::Shl; break;
      case TokKind::ShrAssign: op = AssignOp::Shr; break;
      default:
        return lhs;
    }
    SourceLoc loc = consume().loc;
    ExprPtr rhs = parseAssignment(); // right-associative
    auto expr = std::make_unique<AssignExpr>(op, std::move(lhs),
                                             std::move(rhs));
    expr->loc = loc;
    return expr;
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr cond = parseBinary(0);
    if (!check(TokKind::Question))
        return cond;
    SourceLoc loc = consume().loc;
    ExprPtr then_expr = parseExpr();
    expect(TokKind::Colon, "in conditional expression");
    ExprPtr else_expr = parseConditional();
    auto expr = std::make_unique<ConditionalExpr>(
        std::move(cond), std::move(then_expr), std::move(else_expr));
    expr->loc = loc;
    return expr;
}

namespace {

/** Binary operator precedence table; higher binds tighter. Returns -1
 * for tokens that are not binary operators. */
int
binaryPrecedence(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return 1;
      case TokKind::AmpAmp: return 2;
      case TokKind::Pipe: return 3;
      case TokKind::Caret: return 4;
      case TokKind::Amp: return 5;
      case TokKind::EqEq:
      case TokKind::NotEq: return 6;
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge: return 7;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      default: return -1;
    }
}

BinaryOp
binaryOpForToken(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return BinaryOp::LogicalOr;
      case TokKind::AmpAmp: return BinaryOp::LogicalAnd;
      case TokKind::Pipe: return BinaryOp::BitOr;
      case TokKind::Caret: return BinaryOp::BitXor;
      case TokKind::Amp: return BinaryOp::BitAnd;
      case TokKind::EqEq: return BinaryOp::Eq;
      case TokKind::NotEq: return BinaryOp::Ne;
      case TokKind::Lt: return BinaryOp::Lt;
      case TokKind::Le: return BinaryOp::Le;
      case TokKind::Gt: return BinaryOp::Gt;
      case TokKind::Ge: return BinaryOp::Ge;
      case TokKind::Shl: return BinaryOp::Shl;
      case TokKind::Shr: return BinaryOp::Shr;
      case TokKind::Plus: return BinaryOp::Add;
      case TokKind::Minus: return BinaryOp::Sub;
      case TokKind::Star: return BinaryOp::Mul;
      case TokKind::Slash: return BinaryOp::Div;
      case TokKind::Percent: return BinaryOp::Rem;
      default:
        assert(false && "not a binary operator token");
        return BinaryOp::Add;
    }
}

} // namespace

ExprPtr
Parser::parseBinary(int min_precedence)
{
    ExprPtr lhs = parseUnary();
    for (;;) {
        int precedence = binaryPrecedence(current().kind);
        if (precedence < 0 || precedence < min_precedence)
            return lhs;
        Token op_tok = consume();
        ExprPtr rhs = parseBinary(precedence + 1);
        auto expr = std::make_unique<BinaryExpr>(
            binaryOpForToken(op_tok.kind), std::move(lhs), std::move(rhs));
        expr->loc = op_tok.loc;
        lhs = std::move(expr);
    }
}

ExprPtr
Parser::parseUnary()
{
    SourceLoc loc = current().loc;
    UnaryOp op;
    switch (current().kind) {
      case TokKind::Minus: op = UnaryOp::Neg; break;
      case TokKind::Bang: op = UnaryOp::LogicalNot; break;
      case TokKind::Tilde: op = UnaryOp::BitNot; break;
      case TokKind::Amp: op = UnaryOp::AddrOf; break;
      case TokKind::Star: op = UnaryOp::Deref; break;
      case TokKind::PlusPlus: op = UnaryOp::PreInc; break;
      case TokKind::MinusMinus: op = UnaryOp::PreDec; break;
      case TokKind::Plus: // unary plus is a no-op; parse and drop
        consume();
        return parseUnary();
      case TokKind::LParen:
        // Cast: '(' starts a type.
        if (peek(1).is(TokKind::KwVoid) || peek(1).is(TokKind::KwChar) ||
            peek(1).is(TokKind::KwShort) || peek(1).is(TokKind::KwInt) ||
            peek(1).is(TokKind::KwLong) ||
            peek(1).is(TokKind::KwUnsigned) ||
            peek(1).is(TokKind::KwSigned)) {
            consume(); // (
            const Type *base = parseTypeSpecifier(/*allow_void=*/false);
            const Type *target = parsePointerSuffix(base);
            expect(TokKind::RParen, "after cast type");
            ExprPtr sub = parseUnary();
            auto expr = std::make_unique<CastExpr>(target, std::move(sub),
                                                   /*implicit=*/false);
            expr->loc = loc;
            return expr;
        }
        return parsePostfix();
      default:
        return parsePostfix();
    }
    consume();
    ExprPtr sub = parseUnary();
    auto expr = std::make_unique<UnaryExpr>(op, std::move(sub));
    expr->loc = loc;
    return expr;
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr expr = parsePrimary();
    for (;;) {
        SourceLoc loc = current().loc;
        if (accept(TokKind::LBracket)) {
            ExprPtr index = parseExpr();
            expect(TokKind::RBracket, "after subscript");
            auto indexed = std::make_unique<IndexExpr>(std::move(expr),
                                                       std::move(index));
            indexed->loc = loc;
            expr = std::move(indexed);
        } else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
            UnaryOp op = check(TokKind::PlusPlus) ? UnaryOp::PostInc
                                                  : UnaryOp::PostDec;
            consume();
            auto unary = std::make_unique<UnaryExpr>(op, std::move(expr));
            unary->loc = loc;
            expr = std::move(unary);
        } else {
            return expr;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    SourceLoc loc = current().loc;
    switch (current().kind) {
      case TokKind::IntLiteral: {
        Token tok = consume();
        auto expr = std::make_unique<IntLit>(tok.intValue);
        expr->loc = loc;
        return expr;
      }
      case TokKind::Identifier: {
        Token tok = consume();
        if (accept(TokKind::LParen)) {
            std::vector<ExprPtr> args;
            if (!check(TokKind::RParen)) {
                for (;;) {
                    args.push_back(parseAssignment());
                    if (!accept(TokKind::Comma))
                        break;
                }
            }
            expect(TokKind::RParen, "after call arguments");
            auto expr = std::make_unique<CallExpr>(tok.text,
                                                   std::move(args));
            expr->loc = loc;
            return expr;
        }
        auto expr = std::make_unique<VarRef>(tok.text);
        expr->loc = loc;
        return expr;
      }
      case TokKind::LParen: {
        consume();
        ExprPtr expr = parseExpr();
        expect(TokKind::RParen, "after parenthesized expression");
        return expr;
      }
      default:
        fail("expected an expression");
    }
}

std::unique_ptr<TranslationUnit>
parseAndCheck(std::string_view source, DiagnosticEngine &diags)
{
    Parser parser(source, diags);
    std::unique_ptr<TranslationUnit> unit = parser.parseTranslationUnit();
    if (diags.hasErrors())
        return nullptr;
    Sema sema(diags);
    sema.check(*unit);
    if (diags.hasErrors())
        return nullptr;
    return unit;
}

} // namespace dce::lang
