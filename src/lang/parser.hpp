/**
 * @file
 * Recursive-descent parser for MiniC. Produces an un-annotated AST;
 * run Sema afterwards to resolve names and install types.
 */
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace dce::lang {

/**
 * Parses one MiniC source buffer into a TranslationUnit.
 *
 * On a syntax error a diagnostic is emitted and parsing of the current
 * top-level declaration is abandoned; the returned unit contains
 * everything successfully parsed before the error. Callers should treat
 * the unit as unusable when diags.hasErrors().
 */
class Parser {
  public:
    Parser(std::string_view source, DiagnosticEngine &diags);

    std::unique_ptr<TranslationUnit> parseTranslationUnit();

  private:
    struct ParseError {};

    const Token &peek(size_t ahead = 0) const;
    const Token &current() const { return peek(0); }
    Token consume();
    bool check(TokKind kind) const { return current().is(kind); }
    bool accept(TokKind kind);
    Token expect(TokKind kind, const char *context);
    [[noreturn]] void fail(const char *message);

    // Types.
    bool startsType() const;
    const Type *parseTypeSpecifier(bool allow_void);
    const Type *parsePointerSuffix(const Type *base);

    // Declarations.
    void parseTopLevel(TranslationUnit &unit);
    std::unique_ptr<FunctionDecl> parseFunctionRest(const Type *ret_type,
                                                    std::string name,
                                                    bool is_static,
                                                    SourceLoc loc);
    std::unique_ptr<VarDecl> parseVarRest(const Type *decl_type,
                                          std::string name, Storage storage,
                                          SourceLoc loc);

    // Statements.
    StmtPtr parseStmt();
    std::unique_ptr<BlockStmt> parseBlock();
    StmtPtr parseIf();
    StmtPtr parseWhile();
    StmtPtr parseDoWhile();
    StmtPtr parseFor();
    StmtPtr parseSwitch();
    StmtPtr parseReturn();
    void parseLocalDecls(std::vector<StmtPtr> &out);

    // Expressions (precedence climbing).
    ExprPtr parseExpr();
    ExprPtr parseAssignment();
    ExprPtr parseConditional();
    ExprPtr parseBinary(int min_precedence);
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    DiagnosticEngine &diags_;
    std::shared_ptr<TypeContext> types_;
};

/**
 * Convenience: lex + parse + (optionally) run sema in one call.
 * @return the unit, or null when diagnostics contain errors.
 */
std::unique_ptr<TranslationUnit> parseAndCheck(std::string_view source,
                                               DiagnosticEngine &diags);

} // namespace dce::lang
