/**
 * @file
 * Token definitions for the MiniC lexer.
 */
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.hpp"

namespace dce::lang {

/** All MiniC token kinds. */
enum class TokKind {
    Eof,
    Identifier,
    IntLiteral,

    // Keywords.
    KwVoid,
    KwChar,
    KwShort,
    KwInt,
    KwLong,
    KwUnsigned,
    KwSigned,
    KwStatic,
    KwExtern,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
};

/** Human-readable token kind name, for diagnostics. */
const char *tokKindName(TokKind kind);

/** One lexed token. Identifier text / literal value are populated as
 * appropriate for the kind. */
struct Token {
    TokKind kind = TokKind::Eof;
    SourceLoc loc;
    std::string text;     ///< identifier spelling
    uint64_t intValue = 0; ///< integer literal value

    bool is(TokKind k) const { return kind == k; }
};

} // namespace dce::lang
