/**
 * @file
 * Semantic analysis for MiniC: name resolution, type checking,
 * insertion of implicit conversions, and validation of global
 * initializers. Sema is idempotent and re-runnable — the instrumenter
 * and the reducer mutate the AST and re-run Sema to refresh
 * annotations.
 */
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace dce::lang {

/** Runs semantic analysis over a TranslationUnit. */
class Sema {
  public:
    explicit Sema(DiagnosticEngine &diags) : diags_(diags) {}

    /**
     * Analyze @p unit in place: resolve every VarRef/CallExpr, install
     * Expr::type / Expr::lvalue, wrap operands in implicit CastExprs,
     * and validate declarations. Errors go to the DiagnosticEngine.
     */
    void check(TranslationUnit &unit);

  private:
    struct Scope {
        std::unordered_map<std::string, VarDecl *> vars;
    };

    void checkGlobal(VarDecl &decl);
    void checkFunction(FunctionDecl &fn);
    void checkStmt(Stmt &stmt);
    void checkVarDecl(VarDecl &decl);

    /** Type-check an expression tree; returns its type (null on error). */
    const Type *checkExpr(ExprPtr &expr);
    const Type *checkUnary(ExprPtr &slot);
    const Type *checkBinary(ExprPtr &slot);
    const Type *checkAssign(ExprPtr &slot);
    const Type *checkIndex(ExprPtr &slot);
    const Type *checkCall(ExprPtr &slot);
    const Type *checkConditional(ExprPtr &slot);

    /** Check an expression used as a branch condition (must be scalar). */
    void checkCondition(ExprPtr &expr, const char *construct);

    /** Insert an implicit cast so @p expr has exactly @p target type.
     * Also performs array-to-pointer decay. Reports an error and leaves
     * the tree unchanged if no implicit conversion exists. */
    void convertTo(ExprPtr &expr, const Type *target);

    /** Apply array-to-pointer decay if @p expr has array type. */
    void decay(ExprPtr &expr);

    /** Integer promotion: types narrower than int are widened to int. */
    const Type *promoted(const Type *type) const;
    /** C's usual arithmetic conversions (simplified, see DESIGN.md). */
    const Type *commonType(const Type *a, const Type *b) const;

    VarDecl *lookupVar(const std::string &name) const;

    void error(SourceLoc loc, std::string message);

    DiagnosticEngine &diags_;
    TranslationUnit *unit_ = nullptr;
    FunctionDecl *currentFunction_ = nullptr;
    std::vector<Scope> scopes_;
    int loopDepth_ = 0;
    int switchDepth_ = 0;
};

/**
 * Constant-expression evaluation with MiniC semantics. Returns the
 * canonical integer value of @p expr if it is a constant integer
 * expression, nullopt otherwise. Requires sema annotations.
 */
std::optional<int64_t> evalConstInt(const Expr &expr);

} // namespace dce::lang
