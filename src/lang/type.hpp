/**
 * @file
 * The MiniC type system. MiniC is the C subset Csmith-style generated
 * programs live in: integer scalars of four widths (signed or unsigned),
 * pointers, one-dimensional arrays, and void function returns. Types are
 * interned in a TypeContext and compared by pointer identity.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dce::lang {

class TypeContext;

/** Categories of MiniC types. */
enum class TypeKind {
    Void,
    Int,   ///< integer scalar, any width/signedness
    Ptr,   ///< pointer to element type
    Array, ///< fixed-size one-dimensional array
};

/**
 * An immutable, interned MiniC type. Obtain instances from TypeContext;
 * equal types are pointer-equal.
 */
class Type {
  public:
    TypeKind kind() const { return kind_; }
    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool isInt() const { return kind_ == TypeKind::Int; }
    bool isPtr() const { return kind_ == TypeKind::Ptr; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    /** Integer or pointer: valid in conditions and comparisons. */
    bool isScalar() const { return isInt() || isPtr(); }

    /** Bit width (8/16/32/64). @pre isInt(). */
    unsigned bits() const
    {
        assert(isInt());
        return bits_;
    }

    /** @pre isInt(). */
    bool isSigned() const
    {
        assert(isInt());
        return isSigned_;
    }

    /** Pointee / array element type. @pre isPtr() || isArray(). */
    const Type *
    element() const
    {
        assert(isPtr() || isArray());
        return element_;
    }

    /** Number of elements. @pre isArray(). */
    uint64_t
    arraySize() const
    {
        assert(isArray());
        return arraySize_;
    }

    /** Size of a value of this type in bytes (array = whole array). */
    uint64_t sizeInBytes() const;

    /** C-like spelling, e.g. "unsigned short", "int *", "char[4]". */
    std::string str() const;

  private:
    friend class TypeContext;
    Type() = default;

    TypeKind kind_ = TypeKind::Void;
    unsigned bits_ = 0;
    bool isSigned_ = true;
    const Type *element_ = nullptr;
    uint64_t arraySize_ = 0;
};

/**
 * Owns and interns Type instances for one translation unit (or one
 * long-running tool session; types are context-wide singletons).
 */
class TypeContext {
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidType() const { return void_; }
    /** @param bits one of 8, 16, 32, 64. */
    const Type *intType(unsigned bits, bool is_signed) const;

    // Convenience accessors for the C spellings MiniC supports.
    const Type *charType() const { return intType(8, true); }
    const Type *shortType() const { return intType(16, true); }
    const Type *intTy() const { return intType(32, true); }
    const Type *longType() const { return intType(64, true); }

    const Type *pointerTo(const Type *element);
    const Type *arrayOf(const Type *element, uint64_t size);

  private:
    std::vector<std::unique_ptr<Type>> owned_;
    const Type *void_ = nullptr;
    // ints_[signedness][log2(bits) - 3]
    const Type *ints_[2][4] = {};
};

} // namespace dce::lang
