/**
 * @file
 * Hand-written lexer for MiniC. Produces the full token stream up
 * front; MiniC sources are small enough that there is no benefit to
 * on-demand lexing, and an eager stream makes parser lookahead trivial.
 */
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace dce::lang {

/** Tokenizes one MiniC source buffer. */
class Lexer {
  public:
    Lexer(std::string_view source, DiagnosticEngine &diags);

    /**
     * Lex the entire buffer.
     * @return all tokens, terminated by an Eof token. On a lexical
     * error, a diagnostic is emitted and the offending character is
     * skipped, so the stream is always well-formed.
     */
    std::vector<Token> lexAll();

  private:
    char peek(size_t ahead = 0) const;
    char advance();
    bool match(char expected);
    SourceLoc here() const { return {line_, column_}; }

    Token lexToken();
    Token lexIdentifierOrKeyword();
    Token lexNumber();
    Token makeToken(TokKind kind, SourceLoc loc) const;
    void skipWhitespaceAndComments();

    std::string_view source_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t column_ = 1;
};

} // namespace dce::lang
