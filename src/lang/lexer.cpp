#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace dce::lang {

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Eof: return "end of file";
      case TokKind::Identifier: return "identifier";
      case TokKind::IntLiteral: return "integer literal";
      case TokKind::KwVoid: return "'void'";
      case TokKind::KwChar: return "'char'";
      case TokKind::KwShort: return "'short'";
      case TokKind::KwInt: return "'int'";
      case TokKind::KwLong: return "'long'";
      case TokKind::KwUnsigned: return "'unsigned'";
      case TokKind::KwSigned: return "'signed'";
      case TokKind::KwStatic: return "'static'";
      case TokKind::KwExtern: return "'extern'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwWhile: return "'while'";
      case TokKind::KwDo: return "'do'";
      case TokKind::KwFor: return "'for'";
      case TokKind::KwSwitch: return "'switch'";
      case TokKind::KwCase: return "'case'";
      case TokKind::KwDefault: return "'default'";
      case TokKind::KwBreak: return "'break'";
      case TokKind::KwContinue: return "'continue'";
      case TokKind::KwReturn: return "'return'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Semicolon: return "';'";
      case TokKind::Comma: return "','";
      case TokKind::Colon: return "':'";
      case TokKind::Question: return "'?'";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::Assign: return "'='";
      case TokKind::PlusAssign: return "'+='";
      case TokKind::MinusAssign: return "'-='";
      case TokKind::StarAssign: return "'*='";
      case TokKind::SlashAssign: return "'/='";
      case TokKind::PercentAssign: return "'%='";
      case TokKind::AmpAssign: return "'&='";
      case TokKind::PipeAssign: return "'|='";
      case TokKind::CaretAssign: return "'^='";
      case TokKind::ShlAssign: return "'<<='";
      case TokKind::ShrAssign: return "'>>='";
      case TokKind::PlusPlus: return "'++'";
      case TokKind::MinusMinus: return "'--'";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::Lt: return "'<'";
      case TokKind::Gt: return "'>'";
      case TokKind::Le: return "'<='";
      case TokKind::Ge: return "'>='";
      case TokKind::EqEq: return "'=='";
      case TokKind::NotEq: return "'!='";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
    }
    return "<bad token>";
}

namespace {

const std::unordered_map<std::string_view, TokKind> kKeywords = {
    {"void", TokKind::KwVoid},       {"char", TokKind::KwChar},
    {"short", TokKind::KwShort},     {"int", TokKind::KwInt},
    {"long", TokKind::KwLong},       {"unsigned", TokKind::KwUnsigned},
    {"signed", TokKind::KwSigned},   {"static", TokKind::KwStatic},
    {"extern", TokKind::KwExtern},   {"if", TokKind::KwIf},
    {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
    {"do", TokKind::KwDo},           {"for", TokKind::KwFor},
    {"switch", TokKind::KwSwitch},   {"case", TokKind::KwCase},
    {"default", TokKind::KwDefault}, {"break", TokKind::KwBreak},
    {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
};

} // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine &diags)
    : source_(source), diags_(diags)
{
}

char
Lexer::peek(size_t ahead) const
{
    if (pos_ + ahead >= source_.size())
        return '\0';
    return source_[pos_ + ahead];
}

char
Lexer::advance()
{
    char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0') {
                    diags_.error(here(), "unterminated block comment");
                    return;
                }
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(TokKind kind, SourceLoc loc) const
{
    Token tok;
    tok.kind = kind;
    tok.loc = loc;
    return tok;
}

Token
Lexer::lexIdentifierOrKeyword()
{
    SourceLoc loc = here();
    size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        advance();
    std::string_view text = source_.substr(start, pos_ - start);
    auto it = kKeywords.find(text);
    if (it != kKeywords.end())
        return makeToken(it->second, loc);
    Token tok = makeToken(TokKind::Identifier, loc);
    tok.text = std::string(text);
    return tok;
}

Token
Lexer::lexNumber()
{
    SourceLoc loc = here();
    uint64_t value = 0;
    bool overflow = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
            char c = advance();
            uint64_t digit = std::isdigit(static_cast<unsigned char>(c))
                                 ? static_cast<uint64_t>(c - '0')
                                 : static_cast<uint64_t>(
                                       std::tolower(c) - 'a' + 10);
            if (value > (UINT64_MAX - digit) / 16)
                overflow = true;
            value = value * 16 + digit;
        }
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            uint64_t digit = static_cast<uint64_t>(advance() - '0');
            if (value > (UINT64_MAX - digit) / 10)
                overflow = true;
            value = value * 10 + digit;
        }
    }
    // C-style suffixes are accepted and ignored; MiniC literal types are
    // inferred from the value in sema.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
        advance();
    if (overflow)
        diags_.error(loc, "integer literal too large");
    Token tok = makeToken(TokKind::IntLiteral, loc);
    tok.intValue = value;
    return tok;
}

Token
Lexer::lexToken()
{
    skipWhitespaceAndComments();
    SourceLoc loc = here();
    char c = peek();
    if (c == '\0')
        return makeToken(TokKind::Eof, loc);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifierOrKeyword();
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();

    advance();
    switch (c) {
      case '(': return makeToken(TokKind::LParen, loc);
      case ')': return makeToken(TokKind::RParen, loc);
      case '{': return makeToken(TokKind::LBrace, loc);
      case '}': return makeToken(TokKind::RBrace, loc);
      case '[': return makeToken(TokKind::LBracket, loc);
      case ']': return makeToken(TokKind::RBracket, loc);
      case ';': return makeToken(TokKind::Semicolon, loc);
      case ',': return makeToken(TokKind::Comma, loc);
      case ':': return makeToken(TokKind::Colon, loc);
      case '?': return makeToken(TokKind::Question, loc);
      case '~': return makeToken(TokKind::Tilde, loc);
      case '+':
        if (match('+'))
            return makeToken(TokKind::PlusPlus, loc);
        if (match('='))
            return makeToken(TokKind::PlusAssign, loc);
        return makeToken(TokKind::Plus, loc);
      case '-':
        if (match('-'))
            return makeToken(TokKind::MinusMinus, loc);
        if (match('='))
            return makeToken(TokKind::MinusAssign, loc);
        return makeToken(TokKind::Minus, loc);
      case '*':
        if (match('='))
            return makeToken(TokKind::StarAssign, loc);
        return makeToken(TokKind::Star, loc);
      case '/':
        if (match('='))
            return makeToken(TokKind::SlashAssign, loc);
        return makeToken(TokKind::Slash, loc);
      case '%':
        if (match('='))
            return makeToken(TokKind::PercentAssign, loc);
        return makeToken(TokKind::Percent, loc);
      case '&':
        if (match('&'))
            return makeToken(TokKind::AmpAmp, loc);
        if (match('='))
            return makeToken(TokKind::AmpAssign, loc);
        return makeToken(TokKind::Amp, loc);
      case '|':
        if (match('|'))
            return makeToken(TokKind::PipePipe, loc);
        if (match('='))
            return makeToken(TokKind::PipeAssign, loc);
        return makeToken(TokKind::Pipe, loc);
      case '^':
        if (match('='))
            return makeToken(TokKind::CaretAssign, loc);
        return makeToken(TokKind::Caret, loc);
      case '!':
        if (match('='))
            return makeToken(TokKind::NotEq, loc);
        return makeToken(TokKind::Bang, loc);
      case '=':
        if (match('='))
            return makeToken(TokKind::EqEq, loc);
        return makeToken(TokKind::Assign, loc);
      case '<':
        if (match('<')) {
            if (match('='))
                return makeToken(TokKind::ShlAssign, loc);
            return makeToken(TokKind::Shl, loc);
        }
        if (match('='))
            return makeToken(TokKind::Le, loc);
        return makeToken(TokKind::Lt, loc);
      case '>':
        if (match('>')) {
            if (match('='))
                return makeToken(TokKind::ShrAssign, loc);
            return makeToken(TokKind::Shr, loc);
        }
        if (match('='))
            return makeToken(TokKind::Ge, loc);
        return makeToken(TokKind::Gt, loc);
      default:
        diags_.error(loc,
                     std::string("unexpected character '") + c + "'");
        return lexToken();
    }
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    for (;;) {
        tokens.push_back(lexToken());
        if (tokens.back().is(TokKind::Eof))
            break;
    }
    return tokens;
}

} // namespace dce::lang
