/**
 * @file
 * Pretty-printer rendering a MiniC AST back to compilable source.
 * Round-trip property: print(parse(s)) parses to an equivalent AST.
 * Used by the reducer (to emit candidates), the instrumenter (to show
 * instrumented programs), and throughout tests.
 */
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace dce::lang {

/** Render a whole translation unit as MiniC source text. */
std::string printUnit(const TranslationUnit &unit);

/** Render a single statement (for debugging and test assertions). */
std::string printStmt(const Stmt &stmt, unsigned indent = 0);

/** Render a single expression. Implicit casts are transparent. */
std::string printExpr(const Expr &expr);

} // namespace dce::lang
