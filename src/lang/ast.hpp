/**
 * @file
 * Abstract syntax tree for MiniC. The AST is the exchange format
 * between the parser, the semantic analyzer (which annotates types and
 * resolves declarations), the marker instrumenter (which inserts
 * DCEMarker calls), the reducer (which deletes/simplifies subtrees), the
 * pretty-printer, and the AST-to-IR lowering.
 *
 * Nodes own their children via unique_ptr. Every node supports deep
 * clone(); cross-references (VarRef::decl, CallExpr::decl) are raw
 * non-owning pointers installed by sema and must be re-resolved after a
 * clone by re-running sema.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/type.hpp"
#include "support/source_location.hpp"

namespace dce::lang {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===------------------------------------------------------------------===//
// Operators
//===------------------------------------------------------------------===//

enum class UnaryOp {
    Neg,        ///< -x
    LogicalNot, ///< !x
    BitNot,     ///< ~x
    AddrOf,     ///< &x
    Deref,      ///< *p
    PreInc,     ///< ++x
    PreDec,     ///< --x
    PostInc,    ///< x++
    PostDec,    ///< x--
};

enum class BinaryOp {
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    BitAnd, BitOr, BitXor,
    LogicalAnd, LogicalOr,
};

/** Compound assignment operators; Assign is plain '='. */
enum class AssignOp {
    Assign,
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    And, Or, Xor,
};

const char *unaryOpSpelling(UnaryOp op);
const char *binaryOpSpelling(BinaryOp op);
const char *assignOpSpelling(AssignOp op);

/** The BinaryOp a compound AssignOp applies, e.g. Add for '+='.
 * @pre op != AssignOp::Assign. */
BinaryOp assignOpBinary(AssignOp op);

//===------------------------------------------------------------------===//
// Expressions
//===------------------------------------------------------------------===//

enum class ExprKind {
    IntLit,
    VarRef,
    Unary,
    Binary,
    Assign,
    Index,
    Call,
    Conditional,
    Cast,
};

/**
 * Base class of all MiniC expressions. After sema, type() is non-null
 * and isLValue() tells whether the expression designates storage.
 */
class Expr {
  public:
    virtual ~Expr() = default;

    ExprKind kind() const { return kind_; }
    SourceLoc loc;

    /** Result type; installed by sema, null before. */
    const Type *type = nullptr;
    /** True if the expression designates storage; installed by sema. */
    bool lvalue = false;

    virtual ExprPtr clone() const = 0;

  protected:
    explicit Expr(ExprKind kind) : kind_(kind) {}

  private:
    ExprKind kind_;
};

/** Integer literal. The value is stored unsigned-extended; sema picks
 * the literal's type (int, or long if it does not fit). */
class IntLit : public Expr {
  public:
    explicit IntLit(uint64_t value) : Expr(ExprKind::IntLit), value(value) {}

    uint64_t value;

    ExprPtr clone() const override;
};

/** Reference to a named variable (global, local, or parameter). */
class VarRef : public Expr {
  public:
    explicit VarRef(std::string name)
        : Expr(ExprKind::VarRef), name(std::move(name))
    {
    }

    std::string name;
    /** Resolved declaration; installed by sema. */
    VarDecl *decl = nullptr;

    ExprPtr clone() const override;
};

/** Unary operator application. */
class UnaryExpr : public Expr {
  public:
    UnaryExpr(UnaryOp op, ExprPtr sub)
        : Expr(ExprKind::Unary), op(op), sub(std::move(sub))
    {
    }

    UnaryOp op;
    ExprPtr sub;

    ExprPtr clone() const override;
};

/** Binary operator application (no assignment; see AssignExpr). */
class BinaryExpr : public Expr {
  public:
    BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
        : Expr(ExprKind::Binary), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {
    }

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;

    ExprPtr clone() const override;
};

/** Plain or compound assignment; lhs must be an lvalue. */
class AssignExpr : public Expr {
  public:
    AssignExpr(AssignOp op, ExprPtr lhs, ExprPtr rhs)
        : Expr(ExprKind::Assign), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {
    }

    AssignOp op;
    ExprPtr lhs;
    ExprPtr rhs;

    ExprPtr clone() const override;
};

/** Array subscript base[index]; base is an array lvalue or a pointer. */
class IndexExpr : public Expr {
  public:
    IndexExpr(ExprPtr base, ExprPtr index)
        : Expr(ExprKind::Index), base(std::move(base)),
          index(std::move(index))
    {
    }

    ExprPtr base;
    ExprPtr index;

    ExprPtr clone() const override;
};

/** Direct call to a named function. MiniC has no function pointers. */
class CallExpr : public Expr {
  public:
    CallExpr(std::string callee, std::vector<ExprPtr> args)
        : Expr(ExprKind::Call), callee(std::move(callee)),
          args(std::move(args))
    {
    }

    std::string callee;
    std::vector<ExprPtr> args;
    /** Resolved declaration; installed by sema. */
    FunctionDecl *decl = nullptr;

    ExprPtr clone() const override;
};

/** Ternary conditional cond ? thenExpr : elseExpr. */
class ConditionalExpr : public Expr {
  public:
    ConditionalExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
        : Expr(ExprKind::Conditional), cond(std::move(cond)),
          thenExpr(std::move(then_expr)), elseExpr(std::move(else_expr))
    {
    }

    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;

    ExprPtr clone() const override;
};

/** Explicit cast "(T)e", or an implicit conversion inserted by sema. */
class CastExpr : public Expr {
  public:
    CastExpr(const Type *target, ExprPtr sub, bool implicit)
        : Expr(ExprKind::Cast), target(target), sub(std::move(sub)),
          implicit(implicit)
    {
    }

    const Type *target;
    ExprPtr sub;
    /** Implicit casts are not printed by the pretty-printer. */
    bool implicit;

    ExprPtr clone() const override;
};

//===------------------------------------------------------------------===//
// Declarations
//===------------------------------------------------------------------===//

/** Where a variable lives. */
enum class Storage {
    Global,       ///< file-scope, external linkage
    StaticGlobal, ///< file-scope, internal linkage
    Local,        ///< function-local
    Param,        ///< function parameter
};

/** A variable declaration (file-scope, local, or parameter). */
class VarDecl {
  public:
    VarDecl(std::string name, const Type *type, Storage storage)
        : name(std::move(name)), type(type), storage(storage)
    {
    }

    std::string name;
    const Type *type;
    Storage storage;
    /** Optional initializer. For globals it must be a constant
     * expression (sema checks). Arrays use initList instead. */
    ExprPtr init;
    /** Array initializer elements, e.g. {0, 0}; empty = zero-init. */
    std::vector<ExprPtr> initList;
    SourceLoc loc;

    bool isFileScope() const
    {
        return storage == Storage::Global || storage == Storage::StaticGlobal;
    }

    std::unique_ptr<VarDecl> clone() const;
};

class BlockStmt;

/** A function declaration, with or without a body. Body-less functions
 * are opaque externals — exactly what optimization markers are. */
class FunctionDecl {
  public:
    FunctionDecl(std::string name, const Type *return_type)
        : name(std::move(name)), returnType(return_type)
    {
    }

    std::string name;
    const Type *returnType;
    std::vector<std::unique_ptr<VarDecl>> params;
    /** Null for extern declarations. */
    std::unique_ptr<BlockStmt> body;
    bool isStatic = false;
    SourceLoc loc;

    bool isDefinition() const { return body != nullptr; }

    std::unique_ptr<FunctionDecl> clone() const;
};

//===------------------------------------------------------------------===//
// Statements
//===------------------------------------------------------------------===//

enum class StmtKind {
    Block,
    ExprStmt,
    DeclStmt,
    If,
    While,
    DoWhile,
    For,
    Switch,
    Return,
    Break,
    Continue,
    Empty,
};

/** Base class of all MiniC statements. */
class Stmt {
  public:
    virtual ~Stmt() = default;

    StmtKind kind() const { return kind_; }
    SourceLoc loc;

    virtual StmtPtr clone() const = 0;

  protected:
    explicit Stmt(StmtKind kind) : kind_(kind) {}

  private:
    StmtKind kind_;
};

/** { stmt... } */
class BlockStmt : public Stmt {
  public:
    BlockStmt() : Stmt(StmtKind::Block) {}

    std::vector<StmtPtr> stmts;

    StmtPtr clone() const override;
    /** Typed clone for contexts that require a block (function bodies). */
    std::unique_ptr<BlockStmt> cloneBlock() const;
};

/** An expression evaluated for its effects. */
class ExprStmt : public Stmt {
  public:
    explicit ExprStmt(ExprPtr expr)
        : Stmt(StmtKind::ExprStmt), expr(std::move(expr))
    {
    }

    ExprPtr expr;

    StmtPtr clone() const override;
};

/** A local variable declaration in statement position. */
class DeclStmt : public Stmt {
  public:
    explicit DeclStmt(std::unique_ptr<VarDecl> decl)
        : Stmt(StmtKind::DeclStmt), decl(std::move(decl))
    {
    }

    std::unique_ptr<VarDecl> decl;

    StmtPtr clone() const override;
};

class IfStmt : public Stmt {
  public:
    IfStmt(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt)
        : Stmt(StmtKind::If), cond(std::move(cond)),
          thenStmt(std::move(then_stmt)), elseStmt(std::move(else_stmt))
    {
    }

    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null

    StmtPtr clone() const override;
};

class WhileStmt : public Stmt {
  public:
    WhileStmt(ExprPtr cond, StmtPtr body)
        : Stmt(StmtKind::While), cond(std::move(cond)), body(std::move(body))
    {
    }

    ExprPtr cond;
    StmtPtr body;

    StmtPtr clone() const override;
};

class DoWhileStmt : public Stmt {
  public:
    DoWhileStmt(StmtPtr body, ExprPtr cond)
        : Stmt(StmtKind::DoWhile), body(std::move(body)),
          cond(std::move(cond))
    {
    }

    StmtPtr body;
    ExprPtr cond;

    StmtPtr clone() const override;
};

class ForStmt : public Stmt {
  public:
    ForStmt() : Stmt(StmtKind::For) {}

    StmtPtr init;  ///< DeclStmt, ExprStmt, or null
    ExprPtr cond;  ///< may be null (infinite)
    ExprPtr step;  ///< may be null
    StmtPtr body;

    StmtPtr clone() const override;
};

/** One arm of a switch. value == nullopt means "default:". MiniC
 * switch arms do not fall through (sema requires a trailing break,
 * which the printer emits and the parser consumes). */
struct SwitchCase {
    std::optional<int64_t> value;
    std::unique_ptr<BlockStmt> body;
    SourceLoc loc;

    SwitchCase clone() const;
};

class SwitchStmt : public Stmt {
  public:
    explicit SwitchStmt(ExprPtr cond)
        : Stmt(StmtKind::Switch), cond(std::move(cond))
    {
    }

    ExprPtr cond;
    std::vector<SwitchCase> cases;

    StmtPtr clone() const override;
};

class ReturnStmt : public Stmt {
  public:
    explicit ReturnStmt(ExprPtr value)
        : Stmt(StmtKind::Return), value(std::move(value))
    {
    }

    ExprPtr value; ///< null for "return;"

    StmtPtr clone() const override;
};

class BreakStmt : public Stmt {
  public:
    BreakStmt() : Stmt(StmtKind::Break) {}
    StmtPtr clone() const override;
};

class ContinueStmt : public Stmt {
  public:
    ContinueStmt() : Stmt(StmtKind::Continue) {}
    StmtPtr clone() const override;
};

class EmptyStmt : public Stmt {
  public:
    EmptyStmt() : Stmt(StmtKind::Empty) {}
    StmtPtr clone() const override;
};

//===------------------------------------------------------------------===//
// Translation unit
//===------------------------------------------------------------------===//

/**
 * A whole MiniC source file: an ordered list of file-scope variable and
 * function declarations. Owns the TypeContext so a TranslationUnit is
 * fully self-contained.
 */
class TranslationUnit {
  public:
    TranslationUnit() : types(std::make_shared<TypeContext>()) {}

    /** Shared so clones reference the same interned types. */
    std::shared_ptr<TypeContext> types;
    std::vector<std::unique_ptr<VarDecl>> globals;
    std::vector<std::unique_ptr<FunctionDecl>> functions;
    /** Interleaving order for printing: pairs of (isFunction, index). */
    std::vector<std::pair<bool, size_t>> declOrder;

    void
    addGlobal(std::unique_ptr<VarDecl> decl)
    {
        declOrder.emplace_back(false, globals.size());
        globals.push_back(std::move(decl));
    }

    void
    addFunction(std::unique_ptr<FunctionDecl> decl)
    {
        declOrder.emplace_back(true, functions.size());
        functions.push_back(std::move(decl));
    }

    FunctionDecl *findFunction(const std::string &name) const;
    VarDecl *findGlobal(const std::string &name) const;

    std::unique_ptr<TranslationUnit> clone() const;
};

} // namespace dce::lang
