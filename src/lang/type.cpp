#include "lang/type.hpp"

namespace dce::lang {

uint64_t
Type::sizeInBytes() const
{
    switch (kind_) {
      case TypeKind::Void:
        return 0;
      case TypeKind::Int:
        return bits_ / 8;
      case TypeKind::Ptr:
        return 8;
      case TypeKind::Array:
        return arraySize_ * element_->sizeInBytes();
    }
    return 0;
}

std::string
Type::str() const
{
    switch (kind_) {
      case TypeKind::Void:
        return "void";
      case TypeKind::Int: {
        std::string base;
        switch (bits_) {
          case 8:
            base = "char";
            break;
          case 16:
            base = "short";
            break;
          case 32:
            base = "int";
            break;
          case 64:
            base = "long";
            break;
          default:
            base = "int" + std::to_string(bits_);
            break;
        }
        return isSigned_ ? base : "unsigned " + base;
      }
      case TypeKind::Ptr:
        return element_->str() + " *";
      case TypeKind::Array:
        return element_->str() + "[" + std::to_string(arraySize_) + "]";
    }
    return "<bad type>";
}

TypeContext::TypeContext()
{
    auto make = [this](TypeKind kind) {
        owned_.push_back(std::unique_ptr<Type>(new Type()));
        Type *type = owned_.back().get();
        type->kind_ = kind;
        return type;
    };
    void_ = make(TypeKind::Void);
    for (int sign = 0; sign < 2; ++sign) {
        unsigned bits = 8;
        for (int slot = 0; slot < 4; ++slot, bits *= 2) {
            Type *type = make(TypeKind::Int);
            type->bits_ = bits;
            type->isSigned_ = (sign == 1);
            ints_[sign][slot] = type;
        }
    }
}

const Type *
TypeContext::intType(unsigned bits, bool is_signed) const
{
    int slot;
    switch (bits) {
      case 8:
        slot = 0;
        break;
      case 16:
        slot = 1;
        break;
      case 32:
        slot = 2;
        break;
      case 64:
        slot = 3;
        break;
      default:
        assert(false && "unsupported integer width");
        slot = 2;
        break;
    }
    return ints_[is_signed ? 1 : 0][slot];
}

const Type *
TypeContext::pointerTo(const Type *element)
{
    for (const auto &type : owned_) {
        if (type->kind_ == TypeKind::Ptr && type->element_ == element)
            return type.get();
    }
    owned_.push_back(std::unique_ptr<Type>(new Type()));
    Type *type = owned_.back().get();
    type->kind_ = TypeKind::Ptr;
    type->element_ = element;
    return type;
}

const Type *
TypeContext::arrayOf(const Type *element, uint64_t size)
{
    for (const auto &type : owned_) {
        if (type->kind_ == TypeKind::Array && type->element_ == element &&
            type->arraySize_ == size) {
            return type.get();
        }
    }
    owned_.push_back(std::unique_ptr<Type>(new Type()));
    Type *type = owned_.back().get();
    type->kind_ = TypeKind::Array;
    type->element_ = element;
    type->arraySize_ = size;
    return type;
}

} // namespace dce::lang
