#include "lang/printer.hpp"

#include <cassert>

namespace dce::lang {

namespace {

/** Operator precedence used to decide parenthesization when printing.
 * Mirrors the parser's table; higher binds tighter. */
int
exprPrecedence(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::IntLit:
      case ExprKind::VarRef:
      case ExprKind::Call:
        return 100;
      case ExprKind::Index:
        return 90;
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        // Postfix ++/-- bind at postfix (subscript) level.
        if (unary.op == UnaryOp::PostInc ||
            unary.op == UnaryOp::PostDec) {
            return 90;
        }
        return 80;
      }
      case ExprKind::Cast:
        return 80;
      case ExprKind::Binary: {
        const auto &binary = static_cast<const BinaryExpr &>(expr);
        switch (binary.op) {
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Rem:
            return 70;
          case BinaryOp::Add:
          case BinaryOp::Sub:
            return 65;
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            return 60;
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
            return 55;
          case BinaryOp::Eq:
          case BinaryOp::Ne:
            return 50;
          case BinaryOp::BitAnd:
            return 45;
          case BinaryOp::BitXor:
            return 40;
          case BinaryOp::BitOr:
            return 35;
          case BinaryOp::LogicalAnd:
            return 30;
          case BinaryOp::LogicalOr:
            return 25;
        }
        return 25;
      }
      case ExprKind::Conditional:
        return 20;
      case ExprKind::Assign:
        return 10;
    }
    return 0;
}

/** Print @p expr, parenthesized if its precedence is below @p min. */
void
printExprPrec(std::string &out, const Expr &expr, int min_precedence)
{
    // Implicit casts are invisible in source.
    if (expr.kind() == ExprKind::Cast) {
        const auto &cast = static_cast<const CastExpr &>(expr);
        if (cast.implicit) {
            printExprPrec(out, *cast.sub, min_precedence);
            return;
        }
    }

    int precedence = exprPrecedence(expr);
    bool parens = precedence < min_precedence;
    if (parens)
        out += "(";

    switch (expr.kind()) {
      case ExprKind::IntLit: {
        const auto &lit = static_cast<const IntLit &>(expr);
        out += std::to_string(lit.value);
        // Suffix literals that need 64 bits so round-tripping keeps the
        // same type.
        if (lit.value > INT32_MAX)
            out += "L";
        break;
      }
      case ExprKind::VarRef:
        out += static_cast<const VarRef &>(expr).name;
        break;
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        bool postfix = unary.op == UnaryOp::PostInc ||
                       unary.op == UnaryOp::PostDec;
        if (postfix) {
            printExprPrec(out, *unary.sub, precedence);
            out += unaryOpSpelling(unary.op);
        } else {
            out += unaryOpSpelling(unary.op);
            // `- -x` must not print as `--x`; unary ops bind at their
            // own precedence so nested unaries get no parens, hence the
            // defensive space for the ambiguous pairs.
            if ((unary.op == UnaryOp::Neg || unary.op == UnaryOp::PreDec) &&
                !out.empty() && out.back() == '-' &&
                unary.sub->kind() == ExprKind::Unary) {
                out += " ";
            }
            printExprPrec(out, *unary.sub, precedence);
        }
        break;
      }
      case ExprKind::Binary: {
        const auto &binary = static_cast<const BinaryExpr &>(expr);
        printExprPrec(out, *binary.lhs, precedence);
        out += " ";
        out += binaryOpSpelling(binary.op);
        out += " ";
        printExprPrec(out, *binary.rhs, precedence + 1);
        break;
      }
      case ExprKind::Assign: {
        const auto &assign = static_cast<const AssignExpr &>(expr);
        printExprPrec(out, *assign.lhs, precedence + 1);
        out += " ";
        out += assignOpSpelling(assign.op);
        out += " ";
        printExprPrec(out, *assign.rhs, precedence);
        break;
      }
      case ExprKind::Index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        printExprPrec(out, *index.base, precedence);
        out += "[";
        printExprPrec(out, *index.index, 0);
        out += "]";
        break;
      }
      case ExprKind::Call: {
        const auto &call = static_cast<const CallExpr &>(expr);
        out += call.callee;
        out += "(";
        for (size_t i = 0; i < call.args.size(); ++i) {
            if (i > 0)
                out += ", ";
            printExprPrec(out, *call.args[i], 0);
        }
        out += ")";
        break;
      }
      case ExprKind::Conditional: {
        const auto &cond = static_cast<const ConditionalExpr &>(expr);
        printExprPrec(out, *cond.cond, precedence + 1);
        out += " ? ";
        printExprPrec(out, *cond.thenExpr, 0);
        out += " : ";
        printExprPrec(out, *cond.elseExpr, precedence);
        break;
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        out += "(";
        out += cast.target->str();
        out += ")";
        printExprPrec(out, *cast.sub, precedence);
        break;
      }
    }
    if (parens)
        out += ")";
}

void printStmtInto(std::string &out, const Stmt &stmt, unsigned indent);

std::string
indentStr(unsigned indent)
{
    return std::string(indent * 2, ' ');
}

/** Print a declared type around a name: "int *x", "char y[2]". */
std::string
declString(const Type *type, const std::string &name)
{
    if (type->isArray()) {
        return type->element()->str() + " " + name + "[" +
               std::to_string(type->arraySize()) + "]";
    }
    std::string spelled = type->str();
    // "int *" already ends with a star; glue the name without a space.
    if (!spelled.empty() && spelled.back() == '*')
        return spelled + name;
    return spelled + " " + name;
}

void
printVarDeclInto(std::string &out, const VarDecl &decl)
{
    if (decl.storage == Storage::StaticGlobal)
        out += "static ";
    out += declString(decl.type, decl.name);
    if (decl.init) {
        out += " = ";
        printExprPrec(out, *decl.init, 0);
    } else if (!decl.initList.empty()) {
        out += " = {";
        for (size_t i = 0; i < decl.initList.size(); ++i) {
            if (i > 0)
                out += ", ";
            printExprPrec(out, *decl.initList[i], 0);
        }
        out += "}";
    }
}

void
printBlockInto(std::string &out, const BlockStmt &block, unsigned indent)
{
    out += "{\n";
    for (const StmtPtr &stmt : block.stmts)
        printStmtInto(out, *stmt, indent + 1);
    out += indentStr(indent);
    out += "}";
}

/** Print a control-structure body as a braced block regardless of
 * whether the AST node is a BlockStmt. Does not emit the leading
 * indent (the caller is mid-line) or a trailing newline. */
void
printBodyInto(std::string &out, const Stmt &body, unsigned indent)
{
    if (body.kind() == StmtKind::Block) {
        printBlockInto(out, static_cast<const BlockStmt &>(body), indent);
        return;
    }
    out += "{\n";
    printStmtInto(out, body, indent + 1);
    out += indentStr(indent);
    out += "}";
}

void
printStmtInto(std::string &out, const Stmt &stmt, unsigned indent)
{
    out += indentStr(indent);
    switch (stmt.kind()) {
      case StmtKind::Block:
        printBlockInto(out, static_cast<const BlockStmt &>(stmt), indent);
        out += "\n";
        break;
      case StmtKind::ExprStmt:
        printExprPrec(out, *static_cast<const ExprStmt &>(stmt).expr, 0);
        out += ";\n";
        break;
      case StmtKind::DeclStmt:
        printVarDeclInto(out, *static_cast<const DeclStmt &>(stmt).decl);
        out += ";\n";
        break;
      case StmtKind::If: {
        const auto &if_stmt = static_cast<const IfStmt &>(stmt);
        out += "if (";
        printExprPrec(out, *if_stmt.cond, 0);
        out += ") ";
        printBodyInto(out, *if_stmt.thenStmt, indent);
        if (if_stmt.elseStmt) {
            out += " else ";
            printBodyInto(out, *if_stmt.elseStmt, indent);
        }
        out += "\n";
        break;
      }
      case StmtKind::While: {
        const auto &while_stmt = static_cast<const WhileStmt &>(stmt);
        out += "while (";
        printExprPrec(out, *while_stmt.cond, 0);
        out += ") ";
        printBodyInto(out, *while_stmt.body, indent);
        out += "\n";
        break;
      }
      case StmtKind::DoWhile: {
        const auto &do_stmt = static_cast<const DoWhileStmt &>(stmt);
        out += "do ";
        printBodyInto(out, *do_stmt.body, indent);
        out += " while (";
        printExprPrec(out, *do_stmt.cond, 0);
        out += ");\n";
        break;
      }
      case StmtKind::For: {
        const auto &for_stmt = static_cast<const ForStmt &>(stmt);
        out += "for (";
        if (for_stmt.init) {
            if (for_stmt.init->kind() == StmtKind::DeclStmt) {
                printVarDeclInto(
                    out,
                    *static_cast<const DeclStmt &>(*for_stmt.init).decl);
            } else {
                printExprPrec(
                    out,
                    *static_cast<const ExprStmt &>(*for_stmt.init).expr,
                    0);
            }
        }
        out += "; ";
        if (for_stmt.cond)
            printExprPrec(out, *for_stmt.cond, 0);
        out += "; ";
        if (for_stmt.step)
            printExprPrec(out, *for_stmt.step, 0);
        out += ") ";
        printBodyInto(out, *for_stmt.body, indent);
        out += "\n";
        break;
      }
      case StmtKind::Switch: {
        const auto &switch_stmt = static_cast<const SwitchStmt &>(stmt);
        out += "switch (";
        printExprPrec(out, *switch_stmt.cond, 0);
        out += ") {\n";
        for (const SwitchCase &arm : switch_stmt.cases) {
            out += indentStr(indent + 1);
            if (arm.value) {
                out += "case ";
                out += std::to_string(*arm.value);
                out += ":\n";
            } else {
                out += "default:\n";
            }
            for (const StmtPtr &child : arm.body->stmts)
                printStmtInto(out, *child, indent + 2);
            out += indentStr(indent + 2);
            out += "break;\n";
        }
        out += indentStr(indent);
        out += "}\n";
        break;
      }
      case StmtKind::Return: {
        const auto &ret = static_cast<const ReturnStmt &>(stmt);
        out += "return";
        if (ret.value) {
            out += " ";
            printExprPrec(out, *ret.value, 0);
        }
        out += ";\n";
        break;
      }
      case StmtKind::Break:
        out += "break;\n";
        break;
      case StmtKind::Continue:
        out += "continue;\n";
        break;
      case StmtKind::Empty:
        out += ";\n";
        break;
    }
}

} // namespace

std::string
printExpr(const Expr &expr)
{
    std::string out;
    printExprPrec(out, expr, 0);
    return out;
}

std::string
printStmt(const Stmt &stmt, unsigned indent)
{
    std::string out;
    printStmtInto(out, stmt, indent);
    return out;
}

std::string
printUnit(const TranslationUnit &unit)
{
    std::string out;
    for (const auto &[is_function, index] : unit.declOrder) {
        if (!is_function) {
            const VarDecl &decl = *unit.globals[index];
            printVarDeclInto(out, decl);
            out += ";\n";
            continue;
        }
        const FunctionDecl &fn = *unit.functions[index];
        if (fn.isStatic)
            out += "static ";
        std::string ret = fn.returnType->str();
        if (!ret.empty() && ret.back() == '*')
            out += ret;
        else
            out += ret + " ";
        out += fn.name;
        out += "(";
        if (fn.params.empty()) {
            out += "void";
        } else {
            for (size_t i = 0; i < fn.params.size(); ++i) {
                if (i > 0)
                    out += ", ";
                out += declString(fn.params[i]->type, fn.params[i]->name);
            }
        }
        out += ")";
        if (!fn.body) {
            out += ";\n";
        } else {
            out += " ";
            printBlockInto(out, *fn.body, 0);
            out += "\n";
        }
    }
    return out;
}

} // namespace dce::lang
