#include "interp/interpreter.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "support/ints.hpp"
#include "support/trace.hpp"

namespace dce::interp {

using ir::BasicBlock;
using ir::BinOp;
using ir::CastOp;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::GlobalVar;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Param;
using ir::Value;
using ir::ValueKind;

namespace {

/** One allocated memory object (global, or an executed alloca). */
struct MemObject {
    std::vector<IValue> slots;
    IrType elementType;
};

/** Thrown internally to unwind on timeout/trap. */
struct ExecStop {
    ExecStatus status;
};

class Machine {
  public:
    Machine(const Module &module, const ExecLimits &limits)
        : module_(module), limits_(limits)
    {
        initGlobals();
    }

    ExecResult
    run(const std::string &entry)
    {
        ExecResult result;
        const Function *fn = module_.getFunction(entry);
        if (!fn || fn->isDeclaration()) {
            result.status = ExecStatus::NoEntry;
            return result;
        }
        try {
            IValue ret = callFunction(*fn, {});
            result.status = ExecStatus::Ok;
            result.exitValue = ret.i;
        } catch (ExecStop &stop) {
            result.status = stop.status;
        }
        result.steps = steps_;
        result.executedBlocks = std::move(executedBlocks_);
        result.callTrace = std::move(callTrace_);
        for (const std::string &name : result.callTrace)
            result.calledExternals.insert(name);
        snapshotGlobals(result);
        return result;
    }

  private:
    void
    initGlobals()
    {
        // Two passes: allocate all objects, then fill address inits.
        for (const auto &global : module_.globals()) {
            MemObject object;
            object.elementType = global->elementType();
            object.slots.assign(global->count(),
                                zeroOf(global->elementType()));
            globalObject_[global.get()] =
                static_cast<int32_t>(objects_.size());
            objects_.push_back(std::move(object));
        }
        for (const auto &global : module_.globals()) {
            MemObject &object =
                objects_[static_cast<size_t>(globalObject_.at(global.get()))];
            for (size_t i = 0;
                 i < global->init.size() && i < object.slots.size(); ++i) {
                const ir::GlobalInit &init = global->init[i];
                if (init.isAddress()) {
                    PtrVal ptr;
                    ptr.obj = globalObject_.at(init.base);
                    ptr.index = init.value;
                    object.slots[i] = IValue::ptrValue(ptr);
                } else if (global->elementType().isPtr()) {
                    assert(init.value == 0 && "int init of pointer slot");
                    object.slots[i] = IValue::ptrValue(PtrVal{});
                } else {
                    object.slots[i] = IValue::intValue(
                        wrapInt(init.value, global->elementType().bits,
                                global->elementType().isSigned));
                }
            }
        }
    }

    static IValue
    zeroOf(IrType type)
    {
        if (type.isPtr())
            return IValue::ptrValue(PtrVal{});
        return IValue::intValue(0);
    }

    void
    snapshotGlobals(ExecResult &result) const
    {
        for (const auto &global : module_.globals()) {
            // Internal (C "static") globals are unobservable once main
            // returns; optimizations may legally drop final stores to
            // them (that is what dead-store elimination on Listing 1's
            // `c = 0;` does). Only external globals are part of the
            // observable behaviour.
            if (global->isInternal())
                continue;
            const MemObject &object = objects_[static_cast<size_t>(
                globalObject_.at(global.get()))];
            // Pointer slots are normalized to *name-rank* object ids:
            // two modules optimized differently (global DCE may have
            // removed unused internals) number their objects
            // differently, but a pointer to @g4 must compare equal
            // across them. Non-global targets (allocas) normalize to a
            // sentinel; MiniC programs cannot observe local addresses
            // after main returns anyway.
            std::vector<IValue> slots = object.slots;
            for (IValue &slot : slots) {
                if (!slot.isPtr || slot.p.isNull())
                    continue;
                slot.p.obj = nameRankOf(slot.p.obj);
            }
            result.finalGlobals[global->name()] = std::move(slots);
        }
    }

    /** Stable cross-module id for a pointed-to object: an FNV-1a hash
     * of the global's name (module-independent), or -2 for non-global
     * objects. Optimized modules may have fewer globals than the
     * baseline, so any per-module numbering would not compare. */
    int32_t
    nameRankOf(int32_t object_id) const
    {
        for (const auto &global : module_.globals()) {
            if (globalObject_.at(global.get()) != object_id)
                continue;
            uint32_t hash = 2166136261u;
            for (char c : global->name()) {
                hash ^= static_cast<unsigned char>(c);
                hash *= 16777619u;
            }
            // Keep it positive so it can never collide with the null
            // (-1) or non-global (-2) sentinels.
            return static_cast<int32_t>(hash & 0x7fffffffu);
        }
        return -2; // an alloca or other non-global object
    }

    void
    tick()
    {
        if (++steps_ > limits_.maxSteps)
            throw ExecStop{ExecStatus::Timeout};
    }

    /** Frame-local SSA environment. */
    using Env = std::unordered_map<const Value *, IValue>;

    IValue
    evalOperand(const Value *value, const Env &env) const
    {
        switch (value->valueKind()) {
          case ValueKind::Constant: {
            const auto *c = static_cast<const Constant *>(value);
            if (c->type().isPtr())
                return IValue::ptrValue(PtrVal{});
            return IValue::intValue(c->value());
          }
          case ValueKind::Global: {
            const auto *global = static_cast<const GlobalVar *>(value);
            PtrVal ptr;
            ptr.obj = globalObject_.at(global);
            ptr.index = 0;
            return IValue::ptrValue(ptr);
          }
          case ValueKind::Param:
          case ValueKind::Instruction: {
            auto it = env.find(value);
            assert(it != env.end() && "use of undefined value");
            return it->second;
          }
        }
        return IValue::intValue(0);
    }

    IValue
    loadFrom(PtrVal ptr, IrType type) const
    {
        if (ptr.isNull())
            return zeroOf(type);
        const MemObject &object = objects_[static_cast<size_t>(ptr.obj)];
        if (ptr.index < 0 ||
            static_cast<uint64_t>(ptr.index) >= object.slots.size()) {
            return zeroOf(type); // OOB load: defined as zero
        }
        IValue slot = object.slots[static_cast<size_t>(ptr.index)];
        if (type.isPtr())
            return slot.isPtr ? slot : IValue::ptrValue(PtrVal{});
        int64_t raw = slot.isPtr ? 0 : slot.i;
        return IValue::intValue(wrapInt(raw, type.bits, type.isSigned));
    }

    void
    storeTo(PtrVal ptr, IValue value)
    {
        if (ptr.isNull())
            return; // dropped, defined
        MemObject &object = objects_[static_cast<size_t>(ptr.obj)];
        if (ptr.index < 0 ||
            static_cast<uint64_t>(ptr.index) >= object.slots.size()) {
            return; // OOB store: dropped
        }
        // Canonicalize integers to the slot's element type so memory
        // always holds values in slot-typed form.
        if (!value.isPtr && object.elementType.isInt()) {
            value.i = wrapInt(value.i, object.elementType.bits,
                              object.elementType.isSigned);
        }
        object.slots[static_cast<size_t>(ptr.index)] = value;
    }

    static int64_t
    evalBin(BinOp op, int64_t a, int64_t b, IrType type)
    {
        unsigned bits = type.bits;
        bool is_signed = type.isSigned;
        switch (op) {
          case BinOp::Add: return addInt(a, b, bits, is_signed);
          case BinOp::Sub: return subInt(a, b, bits, is_signed);
          case BinOp::Mul: return mulInt(a, b, bits, is_signed);
          case BinOp::Div: return divInt(a, b, bits, is_signed);
          case BinOp::Rem: return remInt(a, b, bits, is_signed);
          case BinOp::Shl: return shlInt(a, b, bits, is_signed);
          case BinOp::Shr: return shrInt(a, b, bits, is_signed);
          case BinOp::And: return wrapInt(a & b, bits, is_signed);
          case BinOp::Or: return wrapInt(a | b, bits, is_signed);
          case BinOp::Xor: return wrapInt(a ^ b, bits, is_signed);
        }
        return 0;
    }

    static bool
    evalCmpInt(CmpPred pred, int64_t a, int64_t b)
    {
        switch (pred) {
          case CmpPred::Eq: return a == b;
          case CmpPred::Ne: return a != b;
          case CmpPred::Slt: return a < b;
          case CmpPred::Sle: return a <= b;
          case CmpPred::Sgt: return a > b;
          case CmpPred::Sge: return a >= b;
          case CmpPred::Ult:
            return static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
          case CmpPred::Ule:
            return static_cast<uint64_t>(a) <= static_cast<uint64_t>(b);
          case CmpPred::Ugt:
            return static_cast<uint64_t>(a) > static_cast<uint64_t>(b);
          case CmpPred::Uge:
            return static_cast<uint64_t>(a) >= static_cast<uint64_t>(b);
        }
        return false;
    }

    /** Pointer comparison: total deterministic order by (obj, index);
     * distinct objects never compare equal (MiniC rule). */
    static bool
    evalCmpPtr(CmpPred pred, PtrVal a, PtrVal b)
    {
        bool eq = a == b;
        auto less = [&] {
            if (a.obj != b.obj)
                return a.obj < b.obj;
            return a.index < b.index;
        };
        switch (pred) {
          case CmpPred::Eq: return eq;
          case CmpPred::Ne: return !eq;
          case CmpPred::Slt:
          case CmpPred::Ult: return less();
          case CmpPred::Sle:
          case CmpPred::Ule: return less() || eq;
          case CmpPred::Sgt:
          case CmpPred::Ugt: return !less() && !eq;
          case CmpPred::Sge:
          case CmpPred::Uge: return !less();
        }
        return false;
    }

    IValue
    callFunction(const Function &fn, const std::vector<IValue> &args)
    {
        if (++callDepth_ > limits_.maxCallDepth)
            throw ExecStop{ExecStatus::Trap};

        Env env;
        for (size_t i = 0; i < fn.params().size(); ++i)
            env[fn.params()[i].get()] = args[i];

        const BasicBlock *block = fn.entry();
        const BasicBlock *previous = nullptr;
        IValue return_value = zeroOf(fn.returnType());

        for (;;) {
            if (limits_.recordBlocks)
                executedBlocks_.insert(block);
            // Phi nodes evaluate simultaneously on block entry.
            std::vector<std::pair<const Instr *, IValue>> phi_values;
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != Opcode::Phi)
                    break;
                Value *incoming = instr->incomingValueFor(previous);
                assert(incoming && "phi has no incoming for pred");
                phi_values.emplace_back(instr.get(),
                                        evalOperand(incoming, env));
            }
            for (auto &[phi, value] : phi_values)
                env[phi] = value;

            const BasicBlock *next = nullptr;
            for (const auto &owned : block->instrs()) {
                const Instr *instr = owned.get();
                if (instr->opcode() == Opcode::Phi)
                    continue;
                tick();
                switch (instr->opcode()) {
                  case Opcode::Alloca: {
                    MemObject object;
                    object.elementType = instr->allocatedType;
                    object.slots.assign(instr->allocatedCount,
                                        zeroOf(instr->allocatedType));
                    PtrVal ptr;
                    ptr.obj = static_cast<int32_t>(objects_.size());
                    objects_.push_back(std::move(object));
                    env[instr] = IValue::ptrValue(ptr);
                    break;
                  }
                  case Opcode::Load: {
                    PtrVal ptr = evalOperand(instr->operand(0), env).p;
                    env[instr] = loadFrom(ptr, instr->type());
                    break;
                  }
                  case Opcode::Store: {
                    IValue value = evalOperand(instr->operand(0), env);
                    PtrVal ptr = evalOperand(instr->operand(1), env).p;
                    storeTo(ptr, value);
                    break;
                  }
                  case Opcode::Bin: {
                    int64_t a = evalOperand(instr->operand(0), env).i;
                    int64_t b = evalOperand(instr->operand(1), env).i;
                    env[instr] = IValue::intValue(
                        evalBin(instr->binOp, a, b, instr->type()));
                    break;
                  }
                  case Opcode::Cmp: {
                    IValue a = evalOperand(instr->operand(0), env);
                    IValue b = evalOperand(instr->operand(1), env);
                    bool result;
                    if (a.isPtr || b.isPtr)
                        result = evalCmpPtr(instr->cmpPred, a.p, b.p);
                    else
                        result = evalCmpInt(instr->cmpPred, a.i, b.i);
                    env[instr] = IValue::intValue(result ? 1 : 0);
                    break;
                  }
                  case Opcode::Cast: {
                    int64_t value =
                        evalOperand(instr->operand(0), env).i;
                    IrType to = instr->type();
                    env[instr] = IValue::intValue(
                        wrapInt(value, to.bits, to.isSigned));
                    break;
                  }
                  case Opcode::Gep: {
                    IValue base = evalOperand(instr->operand(0), env);
                    int64_t index =
                        evalOperand(instr->operand(1), env).i;
                    PtrVal ptr = base.p;
                    if (!ptr.isNull())
                        ptr.index += index;
                    env[instr] = IValue::ptrValue(ptr);
                    break;
                  }
                  case Opcode::Freeze:
                    env[instr] = evalOperand(instr->operand(0), env);
                    break;
                  case Opcode::Select: {
                    int64_t cond =
                        evalOperand(instr->operand(0), env).i;
                    env[instr] = evalOperand(
                        instr->operand(cond != 0 ? 1 : 2), env);
                    break;
                  }
                  case Opcode::Call: {
                    const Function *callee = instr->callee;
                    if (callee->isDeclaration()) {
                        callTrace_.push_back(callee->name());
                        if (!instr->type().isVoid())
                            env[instr] = zeroOf(instr->type());
                        break;
                    }
                    std::vector<IValue> call_args;
                    call_args.reserve(instr->numOperands());
                    for (size_t i = 0; i < instr->numOperands(); ++i)
                        call_args.push_back(
                            evalOperand(instr->operand(i), env));
                    IValue result = callFunction(*callee, call_args);
                    if (!instr->type().isVoid())
                        env[instr] = result;
                    break;
                  }
                  case Opcode::Ret:
                    if (instr->numOperands() == 1)
                        return_value =
                            evalOperand(instr->operand(0), env);
                    --callDepth_;
                    return return_value;
                  case Opcode::Br:
                    next = instr->blockOperands()[0];
                    break;
                  case Opcode::CondBr: {
                    IValue cond = evalOperand(instr->operand(0), env);
                    bool taken = cond.isPtr ? !cond.p.isNull()
                                            : cond.i != 0;
                    next = instr->blockOperands()[taken ? 0 : 1];
                    break;
                  }
                  case Opcode::Switch: {
                    int64_t value =
                        evalOperand(instr->operand(0), env).i;
                    next = instr->blockOperands()[0]; // default
                    for (size_t i = 0; i < instr->caseValues.size();
                         ++i) {
                        if (instr->caseValues[i] == value) {
                            next = instr->blockOperands()[i + 1];
                            break;
                        }
                    }
                    break;
                  }
                  case Opcode::Unreachable:
                    // Defined in MiniC as an immediate trap; correct
                    // programs never execute one.
                    throw ExecStop{ExecStatus::Trap};
                  case Opcode::Phi:
                    break; // handled above
                }
                if (next)
                    break;
            }
            assert(next && "block fell through without terminator");
            previous = block;
            block = next;
        }
    }

    const Module &module_;
    ExecLimits limits_;
    std::vector<MemObject> objects_;
    std::unordered_map<const GlobalVar *, int32_t> globalObject_;
    std::vector<std::string> callTrace_;
    std::unordered_set<const BasicBlock *> executedBlocks_;
    uint64_t steps_ = 0;
    unsigned callDepth_ = 0;
};

} // namespace

ExecResult
execute(const Module &module, const std::string &entry,
        const ExecLimits &limits)
{
    support::TraceSpan span("execute", "interp");
    Machine machine(module, limits);
    return machine.run(entry);
}

bool
observablyEqual(const ExecResult &a, const ExecResult &b)
{
    return a.status == b.status && a.exitValue == b.exitValue &&
           a.callTrace == b.callTrace && a.finalGlobals == b.finalGlobals;
}

std::string
explainDifference(const ExecResult &a, const ExecResult &b)
{
    std::string out;
    if (a.status != b.status) {
        out += "status differs: " +
               std::to_string(static_cast<int>(a.status)) + " vs " +
               std::to_string(static_cast<int>(b.status)) + "\n";
    }
    if (a.exitValue != b.exitValue) {
        out += "exit value differs: " + std::to_string(a.exitValue) +
               " vs " + std::to_string(b.exitValue) + "\n";
    }
    if (a.callTrace != b.callTrace) {
        out += "call trace differs (" +
               std::to_string(a.callTrace.size()) + " vs " +
               std::to_string(b.callTrace.size()) + " calls)\n";
        size_t limit = std::min(a.callTrace.size(), b.callTrace.size());
        for (size_t i = 0; i < limit; ++i) {
            if (a.callTrace[i] != b.callTrace[i]) {
                out += "  first divergence at call " + std::to_string(i) +
                       ": " + a.callTrace[i] + " vs " + b.callTrace[i] +
                       "\n";
                break;
            }
        }
    }
    if (a.finalGlobals != b.finalGlobals) {
        for (const auto &[name, slots] : a.finalGlobals) {
            auto it = b.finalGlobals.find(name);
            if (it == b.finalGlobals.end()) {
                out += "global @" + name + " missing on one side\n";
                continue;
            }
            if (slots != it->second) {
                out += "global @" + name + " differs";
                if (!slots.empty() && !it->second.empty() &&
                    !slots[0].isPtr) {
                    out += ": [0] = " + std::to_string(slots[0].i) +
                           " vs " + std::to_string(it->second[0].i);
                }
                out += "\n";
            }
        }
    }
    return out;
}

} // namespace dce::interp
