/**
 * @file
 * Reference interpreter for the IR. Two roles, both central to the
 * paper's methodology:
 *
 *  1. Ground truth (§4.1): instrumented test programs are deterministic
 *     and input-free, so executing them yields the set of markers that
 *     actually run — the *alive* blocks. Every non-executed marker is
 *     dead, which is what the "ideal compiler" comparison needs.
 *
 *  2. Translation validation (our testing oracle): the optimized module
 *     must produce the same external-call trace, the same exit value,
 *     and the same final global memory as the -O0 module.
 *
 * MiniC has no undefined behavior, so the interpreter defines every
 * outcome: allocas are zero-initialized, out-of-bounds loads yield 0,
 * out-of-bounds stores are dropped, pointers to distinct objects never
 * compare equal, and arithmetic follows support/ints.hpp.
 */
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "ir/ir.hpp"

namespace dce::interp {

/** A runtime pointer: object handle plus element index. obj < 0 is the
 * null pointer. */
struct PtrVal {
    int32_t obj = -1;
    int64_t index = 0;

    bool isNull() const { return obj < 0; }
    bool operator==(const PtrVal &) const = default;
};

/** A dynamically-typed runtime value (integer or pointer). */
struct IValue {
    bool isPtr = false;
    int64_t i = 0;
    PtrVal p;

    static IValue
    intValue(int64_t value)
    {
        IValue v;
        v.i = value;
        return v;
    }
    static IValue
    ptrValue(PtrVal value)
    {
        IValue v;
        v.isPtr = true;
        v.p = value;
        return v;
    }

    bool operator==(const IValue &) const = default;
};

/** Why execution stopped. */
enum class ExecStatus {
    Ok,        ///< main returned
    Timeout,   ///< step budget exhausted (program likely diverges)
    Trap,      ///< recursion-depth or stack limit hit
    NoEntry,   ///< module lacks the requested entry function
};

/** Everything observable about one execution. */
struct ExecResult {
    ExecStatus status = ExecStatus::Ok;
    int64_t exitValue = 0;
    uint64_t steps = 0;
    /** External (declaration-only) calls, in order — the program's
     * observable behaviour. Includes every executed marker. */
    std::vector<std::string> callTrace;
    /** Deduplicated set of called externals. */
    std::set<std::string> calledExternals;
    /** Final global memory (name -> slot values), for validation. */
    std::map<std::string, std::vector<IValue>> finalGlobals;
    /** Basic blocks entered at least once (filled when
     * ExecLimits::recordBlocks is set). Pointers into the executed
     * module — keep it alive while using this. */
    std::unordered_set<const ir::BasicBlock *> executedBlocks;

    bool ok() const { return status == ExecStatus::Ok; }
};

/** Tunable execution limits. */
struct ExecLimits {
    uint64_t maxSteps = 2'000'000;
    unsigned maxCallDepth = 128;
    /** Record the set of executed basic blocks (primary-marker CFG
     * analysis needs per-block ground truth). */
    bool recordBlocks = false;
};

/**
 * Execute @p module's @p entry function with no arguments.
 * The module is not modified.
 */
ExecResult execute(const ir::Module &module,
                   const std::string &entry = "main",
                   const ExecLimits &limits = {});

/** True if two results are observably equal (status, exit value, call
 * trace, final globals) — the translation-validation criterion. */
bool observablyEqual(const ExecResult &a, const ExecResult &b);

/** Human-readable diff of two results (empty when equal). */
std::string explainDifference(const ExecResult &a, const ExecResult &b);

} // namespace dce::interp
