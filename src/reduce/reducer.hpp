/**
 * @file
 * Test-case reduction — the C-Reduce stand-in (§4.3). Delta debugging
 * (ddmin with complements) over source lines: repeatedly try dropping
 * chunks of lines, keeping a candidate whenever the caller's
 * interestingness predicate still holds. The predicate owns validity
 * checking (a candidate that no longer parses is simply uninteresting),
 * exactly like C-Reduce's interestingness scripts.
 *
 * Two entry points share one canonical algorithm:
 *
 *  - reduceSource(): the serial convenience wrapper;
 *  - ParallelReducer: C-Reduce-style *speculative* reduction. Each
 *    sweep's next `workers` candidates are evaluated concurrently on a
 *    support::ThreadPool; the first interesting candidate in canonical
 *    order is committed and the rest discarded, so the reduced source
 *    is bit-identical for 1 and N workers — speculation only buys wall
 *    clock, never changes the answer.
 *
 * Interestingness results are memoized by candidate text, so the
 * verification pass (and any candidate re-visited after a restart)
 * never re-runs the predicate. Memoization is why iterating the ddmin
 * core to a fixpoint is affordable: the final, unproductive run is
 * mostly cache hits.
 *
 * Algorithm (per DESIGN.md §10): the core is a greedy complement
 * sweep — chunk sizes halve from half the kept lines down to 1, each
 * size swept left to right. A successful removal commits immediately
 * and is extended exponentially in place (try 2s, 4s, ... further
 * lines at the same position), so a contiguous removable region costs
 * O(log n) accepted candidates — accepted candidates are the
 * expensive ones, since only they run both differential builds. The
 * sweep then continues at the same position (the following lines
 * shift in); the size-1 sweep repeats until unproductive so removals
 * that unlock further removals drain without re-running the
 * large-chunk cascade. (The seed implementation instead restarted the
 * whole cascade after any productive pass, going quadratic on
 * dependency-chain inputs.) The outer loop re-runs the core only
 * after a productive run, which guarantees the result is a fixpoint
 * (reducing it again is a no-op).
 */
#pragma once

#include <functional>
#include <string>

#include "support/metrics.hpp"

namespace dce::reduce {

/** Decide if a candidate still exhibits the behaviour under study.
 * Must return false for invalid programs, must be deterministic, and —
 * when reducing with workers > 1 — must be safe to call concurrently
 * from several threads. */
using Predicate = std::function<bool(const std::string &source)>;

struct ReduceResult {
    std::string source;     ///< smallest interesting variant found
    /** Canonical candidate decisions consumed by the algorithm
     * (memoized answers included). Identical for every worker count;
     * the actual predicate-invocation count — which speculation and
     * memoization change — is in the `reduce.tests` metric. */
    unsigned testsRun = 0;
    unsigned linesBefore = 0;
    unsigned linesAfter = 0;
    /** Completed ddmin core runs (>= 1 unless the input was
     * uninteresting); the last one is always unproductive. */
    unsigned passes = 0;
};

struct ReduceOptions {
    /** Safety budget on canonical candidate decisions (testsRun). */
    unsigned maxTests = 5000;
    /** Speculation width: candidates evaluated concurrently per batch.
     * 1 = serial (no worker threads at all); 0 = one per hardware
     * thread. The reduced source never depends on this. */
    unsigned workers = 1;
    /** Registry receiving the reduce.{tests,cache_hits,wall_us}
     * instruments; null = the process global. */
    support::MetricsRegistry *metrics = nullptr;
};

/**
 * Speculative parallel delta-debugging reducer. Stateless apart from
 * its options: reduce() may be called repeatedly and from different
 * threads (each call builds its own memo table and worker pool).
 */
class ParallelReducer {
  public:
    explicit ParallelReducer(ReduceOptions options = {});

    /**
     * Shrink @p source while @p interesting holds.
     * @pre interesting(source) is true (checked; returned unchanged
     * with testsRun == 1 otherwise).
     */
    ReduceResult reduce(const std::string &source,
                        const Predicate &interesting) const;

  private:
    ReduceOptions options_;
};

/**
 * Serial convenience wrapper: ParallelReducer with one worker.
 * @param max_tests safety budget on candidate decisions.
 */
ReduceResult reduceSource(const std::string &source,
                          const Predicate &interesting,
                          unsigned max_tests = 5000);

} // namespace dce::reduce
