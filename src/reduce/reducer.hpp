/**
 * @file
 * Test-case reduction — the C-Reduce stand-in (§4.3). Delta debugging
 * (ddmin) over source lines: repeatedly try dropping chunks of lines,
 * keeping a candidate whenever the caller's interestingness predicate
 * still holds. The predicate owns validity checking (a candidate that
 * no longer parses is simply uninteresting), exactly like C-Reduce's
 * interestingness scripts.
 */
#pragma once

#include <functional>
#include <string>

namespace dce::reduce {

/** Decide if a candidate still exhibits the behaviour under study.
 * Must return false for invalid programs. */
using Predicate = std::function<bool(const std::string &source)>;

struct ReduceResult {
    std::string source;     ///< smallest interesting variant found
    unsigned testsRun = 0;  ///< predicate invocations
    unsigned linesBefore = 0;
    unsigned linesAfter = 0;
};

/**
 * Shrink @p source while @p interesting holds.
 * @pre interesting(source) is true (checked; returned unchanged with
 * testsRun == 1 otherwise).
 * @param max_tests safety budget on predicate invocations.
 */
ReduceResult reduceSource(const std::string &source,
                          const Predicate &interesting,
                          unsigned max_tests = 5000);

} // namespace dce::reduce
