#include "reduce/reducer.hpp"

#include <vector>

namespace dce::reduce {

namespace {

std::vector<std::string>
splitLines(const std::string &source)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        lines.push_back(source.substr(pos, eol - pos));
        pos = eol + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines,
          const std::vector<bool> &keep)
{
    std::string out;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (keep[i]) {
            out += lines[i];
            out += "\n";
        }
    }
    return out;
}

} // namespace

ReduceResult
reduceSource(const std::string &source, const Predicate &interesting,
             unsigned max_tests)
{
    ReduceResult result;
    result.source = source;

    std::vector<std::string> lines = splitLines(source);
    result.linesBefore = static_cast<unsigned>(lines.size());
    std::vector<bool> keep(lines.size(), true);

    auto countKept = [&] {
        size_t count = 0;
        for (bool flag : keep)
            count += flag ? 1 : 0;
        return count;
    };

    ++result.testsRun;
    if (!interesting(source)) {
        result.linesAfter = result.linesBefore;
        return result;
    }

    // ddmin: chunk sizes halve from n/2 down to 1; restart from the
    // top whenever a whole sweep at size 1 removed something.
    bool improved = true;
    while (improved && result.testsRun < max_tests) {
        improved = false;
        for (size_t chunk = std::max<size_t>(countKept() / 2, 1);
             chunk >= 1 && result.testsRun < max_tests; chunk /= 2) {
            for (size_t start = 0;
                 start < lines.size() && result.testsRun < max_tests;) {
                // Select the next `chunk` kept lines from `start`.
                std::vector<size_t> selected;
                size_t cursor = start;
                while (cursor < lines.size() &&
                       selected.size() < chunk) {
                    if (keep[cursor])
                        selected.push_back(cursor);
                    ++cursor;
                }
                if (selected.empty())
                    break;
                for (size_t index : selected)
                    keep[index] = false;
                std::string candidate = joinLines(lines, keep);
                ++result.testsRun;
                if (interesting(candidate)) {
                    improved = true;
                    result.source = std::move(candidate);
                } else {
                    for (size_t index : selected)
                        keep[index] = true;
                }
                start = cursor;
            }
            if (chunk == 1)
                break;
        }
    }

    result.linesAfter = static_cast<unsigned>(countKept());
    return result;
}

} // namespace dce::reduce
