#include "reduce/reducer.hpp"

#include <chrono>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dce::reduce {

namespace {

std::vector<std::string>
splitLines(const std::string &source)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        lines.push_back(source.substr(pos, eol - pos));
        pos = eol + 1;
    }
    return lines;
}

/**
 * One reduction in flight: the fixed line array, the kept-line index
 * vector, the memo table, and the worker pool. The canonical candidate
 * order — and with it the committed result — is defined entirely by
 * this class; workers only compute predicate answers.
 */
class Ddmin {
  public:
    Ddmin(const std::vector<std::string> &lines,
          const Predicate &interesting, const ReduceOptions &options,
          support::MetricsRegistry &registry)
        : lines_(lines), interesting_(interesting), options_(options),
          pool_(options.workers == 0 ? 0 : options.workers),
          tests_(registry.counter("reduce.tests")),
          cacheHits_(registry.counter("reduce.cache_hits"))
    {
        kept_.reserve(lines.size());
        braceDelta_.reserve(lines.size());
        for (size_t i = 0; i < lines.size(); ++i) {
            kept_.push_back(i);
            long delta = 0;
            for (char c : lines[i]) {
                if (c == '{')
                    ++delta;
                else if (c == '}')
                    --delta;
            }
            braceDelta_.push_back(delta);
        }
    }

    /** Canonical decisions consumed so far (memo hits included). */
    unsigned testsRun() const { return testsRun_; }
    bool budgetLeft() const { return testsRun_ < options_.maxTests; }
    size_t keptCount() const { return kept_.size(); }

    std::string
    keptSource() const
    {
        std::string out;
        for (size_t index : kept_) {
            out += lines_[index];
            out += "\n";
        }
        return out;
    }

    /** Record the pre-checked answer for the original input. */
    void
    primeOriginal(const std::string &source, bool result)
    {
        ++testsRun_;
        memo_.emplace(source, result);
    }

    /**
     * One complete complement-sweep run: chunk sizes halve from half
     * the kept set down to 1, each size swept left to right with
     * greedy commits (a successful removal stays at the same position
     * — the next lines shift in — instead of restarting the cascade,
     * which was the seed's quadratic restart bug). The size-1 sweep
     * repeats until unproductive, so removals that unlock further
     * removals drain without re-paying the large-chunk cascade.
     * Returns true if the run removed anything.
     */
    bool
    runCore()
    {
        bool removed = false;
        size_t s = std::max<size_t>(kept_.size() / 2, 1);
        while (budgetLeft()) {
            SweepOutcome outcome = sweep(s);
            if (outcome == SweepOutcome::Budget)
                break;
            if (outcome == SweepOutcome::Productive)
                removed = true;
            if (s == 1) {
                if (outcome == SweepOutcome::Productive)
                    continue; // drain unlocked single-line removals
                break;
            }
            s /= 2;
        }
        return removed;
    }

  private:
    enum class SweepOutcome { Productive, Unproductive, Budget };

    /**
     * End of the removal starting at kept position @p pos with
     * nominal size @p s, snapped to brace balance: if the removed
     * lines open more blocks than they close, the removal extends to
     * the line restoring balance. Removing "if (c) {" therefore drops
     * the whole block in one candidate instead of producing an
     * unparseable fragment — dead blocks and functions go in one
     * accepted test each. Depends only on the kept set, pos and s, so
     * the candidate geometry is canonical.
     */
    size_t
    snappedEnd(size_t pos, size_t s) const
    {
        size_t hi = std::min(pos + s, kept_.size());
        long depth = 0;
        size_t j = pos;
        while (j < hi)
            depth += braceDelta_[kept_[j++]];
        while (j < kept_.size() && depth > 0)
            depth += braceDelta_[kept_[j++]];
        return j;
    }

    /** The candidate source with kept lines [pos, snappedEnd) removed. */
    std::string
    candidateFor(size_t pos, size_t s) const
    {
        size_t hi = snappedEnd(pos, s);
        std::string out;
        for (size_t j = 0; j < kept_.size(); ++j) {
            if (j >= pos && j < hi)
                continue;
            out += lines_[kept_[j]];
            out += "\n";
        }
        return out;
    }

    /**
     * One left-to-right sweep at chunk size @p s, speculatively
     * evaluating up to `workers` candidates at a time. Speculation
     * assumes failures: the batch holds the candidates at positions
     * pos, pos+s, pos+2s, ... of the current kept set. Candidates are
     * consumed in canonical order; the first interesting one commits
     * (invalidating the rest of the batch, whose answers stay in the
     * memo), so the outcome equals a strictly serial sweep.
     *
     * The speculation width adapts to the recent commit rate: a
     * commit resets it to 1 (the next candidate is almost certainly
     * stale the moment anything commits), and every fully consumed
     * commit-free batch doubles it back up to the worker count. The
     * width never affects any decision — only which answers are
     * precomputed — so the reduction stays bit-identical.
     */
    SweepOutcome
    sweep(size_t s)
    {
        bool productive = false;
        size_t pos = 0;
        while (pos < kept_.size()) {
            size_t width =
                std::min<size_t>(specWidth_, pool_.threadCount());
            // Scan stride stays s even where candidates snap wider:
            // block interiors must still get their own candidates.
            std::vector<size_t> starts;
            for (size_t p = pos;
                 p < kept_.size() && starts.size() < width; p += s)
                starts.push_back(p);
            size_t batch = starts.size();

            std::vector<std::string> candidates(batch);
            std::vector<char> results(batch, 0);
            std::vector<std::optional<bool>> cached(batch);
            for (size_t j = 0; j < batch; ++j) {
                candidates[j] = candidateFor(starts[j], s);
                auto hit = memo_.find(candidates[j]);
                if (hit != memo_.end()) {
                    cached[j] = hit->second;
                    cacheHits_.add();
                }
            }
            std::vector<size_t> misses;
            for (size_t j = 0; j < batch; ++j) {
                if (cached[j].has_value())
                    results[j] = *cached[j] ? 1 : 0;
                else
                    misses.push_back(j);
            }
            auto evaluate = [this, &candidates, &results](size_t j) {
                tests_.add();
                results[j] = interesting_(candidates[j]) ? 1 : 0;
            };
            // The calling thread takes the first uncached candidate;
            // the pool workers speculate on the rest.
            for (size_t m = 1; m < misses.size(); ++m)
                pool_.submit([&evaluate, &misses, m] {
                    evaluate(misses[m]);
                });
            if (!misses.empty())
                evaluate(misses[0]);
            pool_.wait();
            for (size_t j = 0; j < batch; ++j) {
                if (!cached[j].has_value())
                    memo_.emplace(std::move(candidates[j]),
                                  results[j] != 0);
            }

            // Consume the batch in canonical order: commit the first
            // interesting candidate and stay at its position, exactly
            // as the serial sweep would.
            bool committed = false;
            for (size_t j = 0; j < batch; ++j) {
                if (!budgetLeft())
                    return SweepOutcome::Budget;
                ++testsRun_;
                if (results[j]) {
                    commit(starts[j], s);
                    pos = starts[j];
                    committed = true;
                    productive = true;
                    specWidth_ = 1;
                    extendAt(pos, s);
                    break;
                }
            }
            if (!committed) {
                pos = starts.back() + s;
                specWidth_ = std::min<size_t>(
                    2 * specWidth_, pool_.threadCount());
            }
        }
        return productive ? SweepOutcome::Productive
                          : SweepOutcome::Unproductive;
    }

    /**
     * Exponential extension after a commit at @p pos: try removing
     * 2s, then 4s, ... further lines at the same position, committing
     * while the predicate holds. Contiguous removable regions — dead
     * blocks are usually contiguous — then cost O(log n) accepted
     * candidates instead of n, and since every accepted candidate is
     * the expensive kind (the predicate runs both differential
     * builds), this is the main compile saver. A failed extension is
     * usually cheap (most oversized removals no longer parse).
     */
    void
    extendAt(size_t pos, size_t s)
    {
        size_t ext = 2 * s;
        while (pos < kept_.size() && budgetLeft()) {
            std::string candidate = candidateFor(pos, ext);
            bool value;
            auto hit = memo_.find(candidate);
            if (hit != memo_.end()) {
                cacheHits_.add();
                value = hit->second;
            } else {
                tests_.add();
                value = interesting_(candidate);
                memo_.emplace(std::move(candidate), value);
            }
            ++testsRun_;
            if (!value)
                break;
            commit(pos, ext);
            ext *= 2;
        }
    }

    void
    commit(size_t pos, size_t s)
    {
        size_t hi = snappedEnd(pos, s);
        kept_.erase(kept_.begin() + static_cast<ptrdiff_t>(pos),
                    kept_.begin() + static_cast<ptrdiff_t>(hi));
    }

    const std::vector<std::string> &lines_;
    const Predicate &interesting_;
    const ReduceOptions &options_;
    support::ThreadPool pool_;
    std::vector<size_t> kept_;
    /** Per original line: '{' count minus '}' count, for snapping
     * removals to brace balance. */
    std::vector<long> braceDelta_;
    /** Candidate text -> interesting? The predicate is deterministic,
     * so serving a memoized answer can never change a decision. Only
     * touched from the canonical (calling) thread. */
    std::unordered_map<std::string, bool> memo_;
    /** Adaptive speculation width; see sweep(). */
    size_t specWidth_ = 1;
    unsigned testsRun_ = 0;
    support::Counter &tests_;
    support::Counter &cacheHits_;
};

} // namespace

ParallelReducer::ParallelReducer(ReduceOptions options)
    : options_(options)
{
}

ReduceResult
ParallelReducer::reduce(const std::string &source,
                        const Predicate &interesting) const
{
    support::TraceSpan span("reduce", "reduce");
    auto wall_start = std::chrono::steady_clock::now();
    support::MetricsRegistry &registry =
        options_.metrics ? *options_.metrics
                         : support::MetricsRegistry::global();

    ReduceResult result;
    result.source = source;

    std::vector<std::string> lines = splitLines(source);
    result.linesBefore = static_cast<unsigned>(lines.size());
    result.linesAfter = result.linesBefore;

    Ddmin state(lines, interesting, options_, registry);
    bool original_interesting = interesting(source);
    registry.counter("reduce.tests").add();
    state.primeOriginal(source, original_interesting);
    if (original_interesting) {
        // Iterate the core to a fixpoint: a run that removes nothing
        // proves reducing the result again would change nothing
        // (idempotence). The memo makes that last run almost free.
        while (state.budgetLeft()) {
            ++result.passes;
            if (!state.runCore())
                break;
        }
        result.source = state.keptSource();
        result.linesAfter = static_cast<unsigned>(state.keptCount());
    }
    result.testsRun = state.testsRun();

    registry.histogram("reduce.wall_us")
        .observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count()));
    return result;
}

ReduceResult
reduceSource(const std::string &source, const Predicate &interesting,
             unsigned max_tests)
{
    ReduceOptions options;
    options.maxTests = max_tests;
    options.workers = 1;
    return ParallelReducer(options).reduce(source, interesting);
}

} // namespace dce::reduce
