/**
 * @file
 * The fleet worker loop (DESIGN.md §15): claim a lease, run exactly
 * its chunk range against this worker's private store via
 * CheckpointRunOptions::chunkFilter, record the lease's campaign.*
 * counter deltas + findings as the done payload, publish a metrics
 * dump, repeat until every lease is done.
 *
 * Runs in-process after a fork (the test path — ThreadPool(1) runs
 * inline, so a forked worker never touches inherited threads) or as
 * the body of a dedicated exec'd process (longrun's hidden
 * `fleet-worker` mode).
 */
#pragma once

#include <cstdint>
#include <string>

namespace dce::fleet {

struct FleetWorkerOptions {
    /** Idle poll cadence while other workers still hold leases. */
    uint64_t pollMs = 20;
    /**
     * Crash drill hook: after this many chunk commits in the first
     * lease run, die by SIGKILL *without* completing the lease —
     * byte-for-byte what a mid-lease machine crash leaves behind
     * (claimed lease, half-checkpointed store). 0 = run normally.
     */
    uint64_t crashAfterChunks = 0;
};

/**
 * Run the worker loop for the fleet at @p fleet_dir, using
 * worker.<store_name>/ for its store and metrics dump. Returns a
 * process exit code: 0 once every lease is done, 1 on any classified
 * failure (printed to stderr).
 */
int runFleetWorker(const std::string &fleet_dir,
                   const std::string &store_name,
                   const FleetWorkerOptions &options = {});

} // namespace dce::fleet
