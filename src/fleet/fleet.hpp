/**
 * @file
 * Shared state of a multi-process campaign fleet (DESIGN.md §15): the
 * sealed PLAN.json every fleet process reads, and the directory layout
 * that ties a coordinator, its worker processes, and the merge step to
 * one on-disk fleet.
 *
 * Layout under the fleet directory:
 *
 *     PLAN.json            sealed FleetConfig (plan + shard geometry)
 *     leases/LOCK          flock serializing every lease transition
 *     leases/lease.<k>.json  one sealed lease per chunk shard
 *     worker.<seq>/store/  that worker process's private CorpusStore
 *     worker.<seq>/metrics.json  its latest sealed registry dump
 *     merged/              the merged store (written by mergeFleet)
 *
 * PLAN.json is written once by the coordinator and is immutable for
 * the fleet's lifetime; a coordinator restarted on an existing fleet
 * directory must present the same plan (PlanMismatch otherwise), the
 * same contract runCheckpointed enforces per store.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"

namespace dce::fleet {

/**
 * Everything that determines a fleet's sharding — persisted so worker
 * processes and late merges reconstruct the exact shard geometry from
 * the fleet directory alone. The campaign plan rides along verbatim;
 * the remaining fields are fleet-level knobs that must agree across
 * every process touching the fleet.
 */
struct FleetConfig {
    corpus::CampaignPlan plan;
    /** Chunks per lease (the shard granule). */
    uint64_t leaseChunks = 1;
    /** A claimed lease older than this is reclaimable even if its
     * owner still looks alive — the crash backstop for owners the
     * coordinator cannot reap (e.g. after a coordinator restart). */
    uint64_t leaseTtlMs = 120000;
    /** Work stealing: claim a claimed-by-a-live-owner lease once it
     * is this old (0 = never steal from the living). */
    uint64_t stealAfterMs = 0;
    /** CheckpointRunOptions::threads for each worker's runs. */
    unsigned workerThreads = 1;
    /** CheckpointRunOptions::checkpointEveryChunks for workers. */
    unsigned workerCheckpointEveryChunks = 4;
    /** Fleet-wide tracing (DESIGN.md §17): every worker enables its
     * global Tracer tagged with its real pid + worker name and writes
     * traces/<store>.trace.json at exit; the coordinator writes its
     * own span file and folds them with mergeTraces(). Persisted so
     * fork+exec workers pick it up from PLAN.json alone. */
    bool trace = false;
    /** Per-worker SnapshotWriter cadence (worker.<seq>/metrics.jsonl);
     * 0 disables the sampler. */
    uint64_t snapshotIntervalMs = 0;

    uint64_t numChunks() const;
    uint64_t numLeases() const;
};

std::string planPath(const std::string &fleet_dir);
std::string leasesDir(const std::string &fleet_dir);
std::string leasePath(const std::string &fleet_dir, uint64_t index);
std::string leaseLockPath(const std::string &fleet_dir);
std::string workerDir(const std::string &fleet_dir,
                      const std::string &store_name);
std::string workerStoreDir(const std::string &fleet_dir,
                           const std::string &store_name);
std::string workerMetricsPath(const std::string &fleet_dir,
                              const std::string &store_name);
std::string workerSnapshotPath(const std::string &fleet_dir,
                               const std::string &store_name);
std::string mergedStoreDir(const std::string &fleet_dir);
/** <fleet-dir>/traces — per-process Chrome trace files. */
std::string tracesDir(const std::string &fleet_dir);
std::string workerTracePath(const std::string &fleet_dir,
                            const std::string &store_name);
std::string coordinatorTracePath(const std::string &fleet_dir);
/** The mergeTraces() output: one Perfetto-loadable timeline. */
std::string mergedTracePath(const std::string &fleet_dir);

/** CLOCK_MONOTONIC milliseconds — lease ages are compared across
 * processes on one host, where the monotonic clock is shared. */
uint64_t monotonicMs();

/** Write PLAN.json (sealed, temp-file-plus-rename). */
bool writeFleetConfig(const std::string &fleet_dir,
                      const FleetConfig &config,
                      corpus::StoreError *error = nullptr);

/** Read + verify PLAN.json. Classified NotFound when absent, Corrupt
 * on seal/shape damage. */
std::optional<FleetConfig>
readFleetConfig(const std::string &fleet_dir,
                corpus::StoreError *error = nullptr);

/** Atomic (temp + rename) small-file write, fleet-file idiom. */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents,
                     corpus::StoreError *error = nullptr);

/** Whole-file read; nullopt + classified @p error on failure. */
std::optional<std::string>
readFile(const std::string &path, corpus::StoreError *error = nullptr);

} // namespace dce::fleet
