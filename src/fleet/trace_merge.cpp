#include "fleet/trace_merge.hpp"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "corpus/json.hpp"
#include "fleet/fleet.hpp"

namespace fs = std::filesystem;

namespace dce::fleet {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

/** Re-serialize a parsed JsonValue. Object members emit in the
 * parser's (sorted) key order — deterministic for identical inputs,
 * which is all the merge contract needs. */
void
appendJsonValue(std::string &out, const corpus::JsonValue &value)
{
    using Kind = corpus::JsonValue::Kind;
    switch (value.kind) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += value.boolean ? "true" : "false";
        break;
    case Kind::Int:
        if (value.negative)
            out += '-';
        out += std::to_string(value.magnitude);
        break;
    case Kind::String:
        out += '"';
        out += corpus::jsonEscape(value.text);
        out += '"';
        break;
    case Kind::Array:
        out += '[';
        for (size_t i = 0; i < value.items.size(); ++i) {
            if (i)
                out += ',';
            appendJsonValue(out, value.items[i]);
        }
        out += ']';
        break;
    case Kind::Object:
        out += '{';
        {
            bool first = true;
            for (const auto &[key, member] : value.members) {
                if (!first)
                    out += ',';
                first = false;
                out += '"';
                out += corpus::jsonEscape(key);
                out += "\":";
                appendJsonValue(out, member);
            }
        }
        out += '}';
        break;
    }
    return;
}

corpus::JsonValue
makeInt(uint64_t number)
{
    corpus::JsonValue value;
    value.kind = corpus::JsonValue::Kind::Int;
    value.magnitude = number;
    return value;
}

} // namespace

std::optional<TraceMergeResult>
mergeTraces(const std::string &fleet_dir, const std::string &out_path,
            corpus::StoreError *error)
{
    std::string dir = tracesDir(fleet_dir);
    std::error_code ec;
    std::vector<std::string> files;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        constexpr std::string_view suffix = ".trace.json";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            files.push_back(entry.path().string());
    }
    if (ec) {
        setError(error, corpus::StoreStatus::NotFound,
                 "traces dir " + dir + ": " + ec.message());
        return std::nullopt;
    }
    // Lexical filename order fixes the pid→track mapping: the same
    // file set always merges to the same bytes, no matter who runs
    // the merge or when.
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        setError(error, corpus::StoreStatus::NotFound,
                 "no *.trace.json files under " + dir);
        return std::nullopt;
    }

    TraceMergeResult result;
    std::string out = "{\"traceEvents\":[";
    bool first_event = true;
    uint64_t merged_pid = 0;
    for (const std::string &path : files) {
        std::optional<std::string> text = readFile(path, error);
        if (!text)
            return std::nullopt;
        std::optional<corpus::JsonValue> doc =
            corpus::JsonValue::parse(*text);
        if (!doc || !doc->isObject()) {
            // A SIGKILLed worker can leave a truncated file; skip it
            // rather than losing the rest of the fleet's timeline.
            continue;
        }
        const corpus::JsonValue *events = doc->get("traceEvents");
        if (!events || !events->isArray())
            continue;
        ++merged_pid;
        ++result.files;
        for (const corpus::JsonValue &event : events->items) {
            if (!event.isObject())
                continue;
            corpus::JsonValue patched = event;
            uint64_t original_pid = patched.getU64("pid", 1);
            patched.members["pid"] = makeInt(merged_pid);
            // Keep the real pid visible on the track label.
            if (patched.getString("name") == "process_name") {
                corpus::JsonValue *args =
                    patched.members.count("args")
                        ? &patched.members["args"]
                        : nullptr;
                if (args && args->isObject()) {
                    corpus::JsonValue &name = args->members["name"];
                    if (name.kind ==
                        corpus::JsonValue::Kind::String)
                        name.text += " [pid " +
                                     std::to_string(original_pid) +
                                     "]";
                }
            } else {
                ++result.events;
            }
            if (!first_event)
                out += ',';
            first_event = false;
            appendJsonValue(out, patched);
        }
    }
    out += "]}";
    if (result.files == 0) {
        setError(error, corpus::StoreStatus::Corrupt,
                 "no trace file under " + dir + " parsed cleanly");
        return std::nullopt;
    }
    if (!writeFileAtomic(out_path, out, error))
        return std::nullopt;
    setError(error, corpus::StoreStatus::Ok, "");
    return result;
}

} // namespace dce::fleet
