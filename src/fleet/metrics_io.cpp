#include "fleet/metrics_io.hpp"

#include <algorithm>

#include "corpus/json.hpp"

namespace dce::fleet {

std::string
encodeRegistryDump(const CounterList &counters,
                   const HistogramList &histograms)
{
    corpus::JsonWriter writer;
    writer.beginObject();
    writer.key("counters");
    writer.beginArray();
    for (const auto &[key, value] : counters) {
        writer.beginObject();
        writer.field("k", key);
        writer.field("v", value);
        writer.endObject();
    }
    writer.endArray();
    writer.key("histograms");
    writer.beginArray();
    for (const auto &[key, snapshot] : histograms) {
        writer.beginObject();
        writer.field("k", key);
        writer.field("count", snapshot.count);
        writer.field("sum", snapshot.sum);
        writer.key("buckets");
        writer.beginArray();
        // Trailing zero buckets elided; absorb re-expands them.
        size_t last = 0;
        for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
            if (snapshot.buckets[i])
                last = i + 1;
        }
        for (size_t i = 0; i < last; ++i)
            writer.value(snapshot.buckets[i]);
        writer.endArray();
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return corpus::sealJsonLine(writer.take()) + "\n";
}

bool
absorbRegistryDump(std::string_view text,
                   support::MetricsRegistry &into)
{
    while (!text.empty() && text.back() == '\n')
        text.remove_suffix(1);
    std::optional<corpus::JsonValue> value =
        corpus::unsealJsonLine(text);
    if (!value || !value->isObject())
        return false;
    if (const corpus::JsonValue *counters = value->get("counters")) {
        for (const corpus::JsonValue &entry : counters->items) {
            uint64_t delta = entry.getU64("v");
            if (delta)
                into.counter(entry.getString("k")).add(delta);
        }
    }
    if (const corpus::JsonValue *histograms =
            value->get("histograms")) {
        for (const corpus::JsonValue &entry : histograms->items) {
            std::array<uint64_t, support::Histogram::kBuckets>
                buckets{};
            if (const corpus::JsonValue *raw = entry.get("buckets")) {
                size_t n = std::min(raw->items.size(),
                                    buckets.size());
                for (size_t i = 0; i < n; ++i)
                    buckets[i] = raw->items[i].asU64();
            }
            into.histogram(entry.getString("k"))
                .absorb(entry.getU64("count"), entry.getU64("sum"),
                        buckets);
        }
    }
    return true;
}

} // namespace dce::fleet
