/**
 * @file
 * The fleet coordinator (DESIGN.md §15): shards a CampaignPlan into
 * the persisted lease table, spawns N worker *processes*, supervises
 * them (SIGCHLD-aware reaping via a self-pipe; a crashed worker's
 * leases return to the pool and a replacement is spawned with a fresh
 * store), and — once every lease is done — runs the deterministic
 * merge. Implements serve::FleetOpsSource so PR 7's ops server fronts
 * the whole fleet: /progress aggregates lease-committed progress,
 * /metrics folds the workers' registry dumps, /fleet lists workers
 * and leases.
 *
 * Respawned workers always get a *fresh* store (worker.<seq> with a
 * monotonically increasing seq): a dead worker's store may hold a
 * checkpoint that already covers part of a reclaimed lease, and
 * re-running against it would make that lease's counter deltas
 * reflect only the missing chunks. A fresh store makes every lease
 * delta complete; the dead store's durable chunks are simply re-run
 * (the price of a crash, same as the single-process resume contract).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "corpus/checkpoint.hpp"
#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"
#include "fleet/merge.hpp"
#include "serve/ops_server.hpp"

namespace dce::fleet {

struct FleetOptions {
    unsigned workers = 2;
    /** Chunks per lease; 0 = auto (aim for ~4 leases per worker so
     * stragglers leave stealable work). */
    uint64_t leaseChunks = 0;
    uint64_t leaseTtlMs = 120000;
    /** Steal claimed-by-a-live-owner leases older than this
     * (0 = only dead owners / TTL expiry free a lease). */
    uint64_t stealAfterMs = 0;
    unsigned workerThreads = 1;
    unsigned workerCheckpointEveryChunks = 4;
    /** Crash-respawn budget across the fleet's lifetime. */
    unsigned maxRespawns = 8;
    /** Supervision loop poll cadence (SIGCHLD wakes it early). */
    uint64_t pollMs = 50;
    /**
     * Spawn workers by fork+exec of this argv (the fleet dir and
     * store name are appended); empty = fork and run the worker loop
     * in-process, which is safe because ThreadPool(1) runs inline —
     * a forked worker never touches inherited threads.
     */
    std::vector<std::string> workerExecArgv;
    /** Crash drill: the first spawned worker dies by SIGKILL after
     * this many chunk commits mid-lease (fork mode only). */
    uint64_t crashFirstWorkerAfterChunks = 0;
    /** Registry for the fleet.* counters; null = none recorded. */
    support::MetricsRegistry *metrics = nullptr;
    /** Fleet-wide tracing (DESIGN.md §17): persisted into PLAN.json so
     * every worker traces itself; after the run the coordinator folds
     * traces/ into mergedTracePath() with mergeTraces(). */
    bool trace = false;
    /** Per-worker SnapshotWriter cadence, persisted into PLAN.json;
     * 0 disables the samplers. */
    uint64_t snapshotIntervalMs = 0;
    /** Sink for supervision log lines (worker died, lease reclaimed);
     * null = silent. */
    std::function<void(const std::string &)> logLine;
};

struct FleetResult {
    corpus::CheckpointedCampaign merged;
    std::string mergedStoreDir;
    uint64_t leases = 0;
    uint64_t workersSpawned = 0;
    uint64_t workersCrashed = 0;
    uint64_t leasesReclaimed = 0;
    /** When tracing: mergedTracePath() and how many per-process trace
     * files landed in it. Empty path / 0 when tracing was off or the
     * merge found nothing usable (the run itself still succeeds). */
    std::string mergedTracePath;
    uint64_t traceFiles = 0;
};

class FleetCoordinator final : public serve::FleetOpsSource {
  public:
    FleetCoordinator(std::string fleet_dir, corpus::CampaignPlan plan,
                     FleetOptions options = {});
    ~FleetCoordinator() override;

    FleetCoordinator(const FleetCoordinator &) = delete;
    FleetCoordinator &operator=(const FleetCoordinator &) = delete;

    /**
     * Run the fleet to completion: init PLAN.json + leases (resuming
     * an existing fleet directory iff its plan matches — PlanMismatch
     * otherwise), spawn + supervise workers, merge. nullopt +
     * classified @p error on failure (including a stalled fleet whose
     * respawn budget ran out).
     */
    std::optional<FleetResult>
    run(corpus::StoreError *error = nullptr);

    const FleetConfig &config() const { return config_; }

    //===-- serve::FleetOpsSource --------------------------------------===//

    corpus::CampaignStatusBoard::Snapshot progress() const override;
    void
    mergeWorkerMetrics(support::MetricsRegistry &into) const override;
    std::string fleetJson() const override;

  private:
    struct WorkerProc {
        pid_t pid = -1;
        std::string store;
        bool alive = false;
        bool crashed = false;
    };

    bool initFleetDir(corpus::StoreError *error);
    bool spawnWorker(uint64_t crash_after_chunks,
                     corpus::StoreError *error);
    void refreshBoard(const std::vector<Lease> &leases, bool active);
    void log(const std::string &line) const;

    std::string fleetDir_;
    corpus::CampaignPlan plan_;
    FleetOptions options_;
    FleetConfig config_;
    std::string planJson_;

    // Shared with ops-server handler threads.
    mutable std::mutex mutex_;
    corpus::CampaignStatusBoard board_;
    std::vector<Lease> lastLeases_;
    std::vector<WorkerProc> workers_;
    uint64_t nextWorkerSeq_ = 0;
    uint64_t startUs_ = 0;
    uint64_t spawned_ = 0;
    uint64_t crashed_ = 0;
    uint64_t reclaimed_ = 0;
};

} // namespace dce::fleet
