#include "fleet/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "corpus/json.hpp"
#include "fleet/metrics_io.hpp"
#include "fleet/trace_merge.hpp"
#include "fleet/worker.hpp"
#include "support/hash.hpp"
#include "support/trace.hpp"

namespace dce::fleet {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

uint64_t
steadyUs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// SIGCHLD self-pipe: the handler only writes one byte, the
// supervision loop polls the read end, so child exits cut the poll
// timeout short without any async-signal-unsafe work in the handler.
// Deliberately installed without SA_RESTART — a process-directed
// SIGCHLD may land on an ops-server handler thread mid-recv, which is
// exactly the EINTR surface serve::readRequestHead retries.
int g_sigchld_pipe = -1;

void
sigchldHandler(int)
{
    int saved = errno;
    if (g_sigchld_pipe >= 0) {
        char byte = 'c';
        [[maybe_unused]] ssize_t rc =
            ::write(g_sigchld_pipe, &byte, 1);
    }
    errno = saved;
}

} // namespace

FleetCoordinator::FleetCoordinator(std::string fleet_dir,
                                   corpus::CampaignPlan plan,
                                   FleetOptions options)
    : fleetDir_(std::move(fleet_dir)), plan_(std::move(plan)),
      options_(std::move(options))
{
    planJson_ = corpus::serializePlan(plan_);
}

FleetCoordinator::~FleetCoordinator() = default;

void
FleetCoordinator::log(const std::string &line) const
{
    if (options_.logLine)
        options_.logLine(line);
}

bool
FleetCoordinator::initFleetDir(corpus::StoreError *error)
{
    std::error_code ec;
    std::filesystem::create_directories(fleetDir_, ec);
    if (ec) {
        setError(error, corpus::StoreStatus::IoError,
                 "mkdir " + fleetDir_ + ": " + ec.message());
        return false;
    }

    FleetConfig config;
    config.plan = plan_;
    config.leaseTtlMs = options_.leaseTtlMs;
    config.stealAfterMs = options_.stealAfterMs;
    config.workerThreads = options_.workerThreads;
    config.workerCheckpointEveryChunks =
        options_.workerCheckpointEveryChunks;
    config.trace = options_.trace;
    config.snapshotIntervalMs = options_.snapshotIntervalMs;
    if (options_.leaseChunks) {
        config.leaseChunks = options_.leaseChunks;
    } else {
        // ~4 leases per worker: coarse enough to amortize claim I/O,
        // fine enough that a straggler leaves stealable work.
        uint64_t workers = options_.workers ? options_.workers : 1;
        config.leaseChunks =
            std::max<uint64_t>(1, config.numChunks() / (workers * 4));
    }

    corpus::StoreError read_error;
    std::optional<FleetConfig> existing =
        readFleetConfig(fleetDir_, &read_error);
    if (existing) {
        if (corpus::serializePlan(existing->plan) != planJson_) {
            setError(error, corpus::StoreStatus::PlanMismatch,
                     "fleet directory pins a different plan");
            return false;
        }
        // Shard geometry is immutable per fleet: a resume must see
        // the exact lease boundaries the leases were recorded under.
        config_ = *existing;
    } else if (read_error.status == corpus::StoreStatus::NotFound) {
        if (!writeFleetConfig(fleetDir_, config, error))
            return false;
        config_ = config;
    } else {
        setError(error, read_error.status, read_error.message);
        return false;
    }
    // A resumed fleet's PLAN.json wins over the in-memory options, so
    // every process (including exec-mode workers reading only the
    // file) agrees on whether this fleet traces.
    if (config_.trace) {
        std::filesystem::create_directories(tracesDir(fleetDir_), ec);
        support::Tracer &tracer = support::Tracer::global();
        tracer.setEnabled(true);
        tracer.setProcess(uint64_t(::getpid()), "fleet-coordinator");
    }
    return LeaseTable::init(fleetDir_, config_.numChunks(),
                            config_.leaseChunks, error);
}

bool
FleetCoordinator::spawnWorker(uint64_t crash_after_chunks,
                              corpus::StoreError *error)
{
    std::string store_name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        store_name = "worker." + std::to_string(nextWorkerSeq_++);
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        setError(error, corpus::StoreStatus::IoError,
                 std::string("fork: ") + std::strerror(errno));
        return false;
    }
    if (pid == 0) {
        // Child: drop the coordinator's SIGCHLD state, then either
        // exec the worker binary or run the loop right here (safe:
        // ThreadPool(1) is inline, no inherited threads are used).
        ::signal(SIGCHLD, SIG_DFL);
        if (!options_.workerExecArgv.empty()) {
            std::vector<std::string> args = options_.workerExecArgv;
            args.push_back(fleetDir_);
            args.push_back(store_name);
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "fleet: execv %s: %s\n",
                         argv[0], std::strerror(errno));
            ::_exit(127);
        }
        FleetWorkerOptions worker_options;
        worker_options.crashAfterChunks = crash_after_chunks;
        ::_exit(runFleetWorker(fleetDir_, store_name,
                               worker_options));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        WorkerProc worker;
        worker.pid = pid;
        worker.store = store_name;
        worker.alive = true;
        workers_.push_back(std::move(worker));
        ++spawned_;
    }
    if (options_.metrics)
        options_.metrics->counter("fleet.workers_spawned").add(1);
    log("fleet: spawned " + store_name + " pid " +
        std::to_string(pid));
    return true;
}

std::optional<FleetResult>
FleetCoordinator::run(corpus::StoreError *error)
{
    if (!initFleetDir(error))
        return std::nullopt;
    startUs_ = steadyUs();

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
        setError(error, corpus::StoreStatus::IoError,
                 std::string("pipe: ") + std::strerror(errno));
        return std::nullopt;
    }
    ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);
    ::fcntl(pipe_fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(pipe_fds[1], F_SETFD, FD_CLOEXEC);
    g_sigchld_pipe = pipe_fds[1];
    struct sigaction action = {};
    action.sa_handler = sigchldHandler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_NOCLDSTOP; // no SA_RESTART, see above
    struct sigaction previous = {};
    ::sigaction(SIGCHLD, &action, &previous);
    // Whatever the exit path, put the signal state back.
    auto cleanup = [&] {
        ::sigaction(SIGCHLD, &previous, nullptr);
        g_sigchld_pipe = -1;
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
    };

    LeaseTable table(fleetDir_);
    unsigned respawns_left = options_.maxRespawns;
    unsigned to_spawn = options_.workers ? options_.workers : 1;
    for (unsigned i = 0; i < to_spawn; ++i) {
        uint64_t crash_after =
            i == 0 ? options_.crashFirstWorkerAfterChunks : 0;
        if (!spawnWorker(crash_after, error)) {
            cleanup();
            return std::nullopt;
        }
    }

    bool all_done = false;
    {
    support::TraceSpan supervise_span("supervise", "fleet");
    for (;;) {
        struct pollfd pfd = {};
        pfd.fd = pipe_fds[0];
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, int(options_.pollMs));
        if (rc > 0 && (pfd.revents & POLLIN)) {
            char drain[64];
            while (::read(pipe_fds[0], drain, sizeof drain) > 0)
                ;
        }

        // Reap exactly the pids we own — never a blanket wait(-1),
        // which would race any other child the host process has.
        struct Death {
            pid_t pid;
            std::string store;
            bool crashed;
        };
        std::vector<Death> deaths;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (WorkerProc &worker : workers_) {
                if (!worker.alive)
                    continue;
                int status = 0;
                pid_t got =
                    ::waitpid(worker.pid, &status, WNOHANG);
                if (got != worker.pid)
                    continue;
                worker.alive = false;
                bool clean = WIFEXITED(status) &&
                             WEXITSTATUS(status) == 0;
                worker.crashed = !clean;
                if (!clean)
                    ++crashed_;
                deaths.push_back(
                    {worker.pid, worker.store, !clean});
            }
        }
        for (const Death &death : deaths) {
            if (!death.crashed)
                continue;
            if (options_.metrics)
                options_.metrics->counter("fleet.workers_crashed")
                    .add(1);
            std::optional<size_t> returned =
                table.reclaimOwnedBy(death.pid, error);
            if (!returned) {
                cleanup();
                return std::nullopt;
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                reclaimed_ += *returned;
            }
            if (options_.metrics && *returned)
                options_.metrics->counter("fleet.leases_reclaimed")
                    .add(*returned);
            log("fleet: " + death.store + " pid " +
                std::to_string(death.pid) + " died; reclaimed " +
                std::to_string(*returned) + " lease(s)");
        }

        std::optional<std::vector<Lease>> leases =
            table.list(error);
        if (!leases) {
            cleanup();
            return std::nullopt;
        }
        all_done = true;
        for (const Lease &lease : *leases)
            all_done &= lease.state == LeaseState::Done;
        refreshBoard(*leases, !all_done);

        // Respawn after the lease scan so a crash with everything
        // already done doesn't spawn a worker with nothing to do.
        for (const Death &death : deaths) {
            if (!death.crashed || all_done)
                continue;
            if (respawns_left == 0)
                continue;
            --respawns_left;
            if (!spawnWorker(0, error)) {
                cleanup();
                return std::nullopt;
            }
        }

        bool any_alive = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const WorkerProc &worker : workers_)
                any_alive |= worker.alive;
        }
        if (all_done && !any_alive)
            break;
        if (!any_alive && !all_done) {
            uint64_t open = 0;
            for (const Lease &lease : *leases)
                open += lease.state != LeaseState::Done;
            cleanup();
            setError(error, corpus::StoreStatus::IoError,
                     "fleet stalled: no workers left (respawn "
                     "budget spent) with " +
                         std::to_string(open) +
                         " lease(s) incomplete");
            return std::nullopt;
        }
    }
    } // supervise span
    cleanup();

    std::optional<corpus::CheckpointedCampaign> merged;
    {
        support::TraceSpan merge_span("merge", "fleet");
        merged = mergeFleet(fleetDir_, error);
    }
    if (!merged)
        return std::nullopt;

    FleetResult result;
    result.merged = std::move(*merged);
    result.mergedStoreDir = mergedStoreDir(fleetDir_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        result.leases = lastLeases_.size();
        result.workersSpawned = spawned_;
        result.workersCrashed = crashed_;
        result.leasesReclaimed = reclaimed_;
    }
    if (config_.trace) {
        // Spans above are closed by now; the coordinator's own file
        // joins the workers' under traces/ before the fold.
        support::Tracer::global().writeJson(
            coordinatorTracePath(fleetDir_));
        corpus::StoreError trace_error;
        std::optional<TraceMergeResult> traces = mergeTraces(
            fleetDir_, mergedTracePath(fleetDir_), &trace_error);
        if (traces) {
            result.mergedTracePath = mergedTracePath(fleetDir_);
            result.traceFiles = traces->files;
            log("fleet: merged " + std::to_string(traces->files) +
                " trace file(s) -> " + result.mergedTracePath);
        } else {
            // Lost timeline, not a lost campaign.
            log("fleet: trace merge failed: " + trace_error.message);
        }
    }
    return result;
}

void
FleetCoordinator::refreshBoard(const std::vector<Lease> &leases,
                               bool active)
{
    const uint64_t chunk_size =
        plan_.chunkSize ? plan_.chunkSize : 1;
    const uint64_t num_chunks = config_.numChunks();
    corpus::CampaignStatusBoard::Snapshot snap;
    snap.active = active;
    snap.planHash = support::fnv1a64Hex(planJson_);
    snap.seedsTotal = plan_.count;
    snap.chunksTotal = num_chunks;
    std::vector<char> done(num_chunks, 0);
    for (const Lease &lease : leases) {
        if (lease.state != LeaseState::Done)
            continue;
        ++snap.checkpoints; // done leases ≙ durable commits
        snap.findings += lease.findings.size();
        snap.stageUs += lease.stageUs;
        for (const auto &[key, value] : lease.counters) {
            if (key == "campaign.cache_hits")
                snap.cacheHits += value;
            else if (key == "campaign.cache_misses")
                snap.cacheMisses += value;
        }
        for (uint64_t chunk = lease.beginChunk;
             chunk < lease.endChunk && chunk < num_chunks; ++chunk) {
            done[chunk] = 1;
            ++snap.completedChunks;
            uint64_t begin = chunk * chunk_size;
            uint64_t end =
                std::min<uint64_t>(begin + chunk_size, plan_.count);
            snap.seedsCommitted += end - begin;
        }
    }
    while (snap.watermark < num_chunks && done[snap.watermark])
        ++snap.watermark;
    snap.complete = snap.completedChunks == num_chunks;
    snap.startUs = startUs_;
    snap.updateUs = steadyUs();
    board_.publish(snap);
    std::lock_guard<std::mutex> lock(mutex_);
    lastLeases_ = leases;
}

corpus::CampaignStatusBoard::Snapshot
FleetCoordinator::progress() const
{
    return board_.read();
}

void
FleetCoordinator::mergeWorkerMetrics(
    support::MetricsRegistry &into) const
{
    std::vector<std::string> stores;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stores.reserve(workers_.size());
        for (const WorkerProc &worker : workers_)
            stores.push_back(worker.store);
    }
    for (const std::string &store : stores) {
        // A dead worker's last dump still counts: it names exactly
        // the leases that worker completed.
        std::optional<std::string> text =
            readFile(workerMetricsPath(fleetDir_, store));
        if (text)
            absorbRegistryDump(*text, into);
    }
}

std::string
FleetCoordinator::fleetJson() const
{
    corpus::JsonWriter writer;
    std::lock_guard<std::mutex> lock(mutex_);
    writer.beginObject();
    writer.field("workers_spawned", spawned_);
    writer.field("workers_crashed", crashed_);
    writer.field("leases_reclaimed", reclaimed_);
    writer.key("workers");
    writer.beginArray();
    for (const WorkerProc &worker : workers_) {
        writer.beginObject();
        writer.field("store", worker.store);
        writer.field("pid", int64_t(worker.pid));
        writer.field("alive", worker.alive);
        writer.field("crashed", worker.crashed);
        writer.endObject();
    }
    writer.endArray();
    uint64_t done = 0;
    for (const Lease &lease : lastLeases_)
        done += lease.state == LeaseState::Done;
    writer.field("leases_total", uint64_t(lastLeases_.size()));
    writer.field("leases_done", done);
    writer.key("leases");
    writer.beginArray();
    for (const Lease &lease : lastLeases_) {
        writer.beginObject();
        writer.field("lease", lease.index);
        writer.field("begin", lease.beginChunk);
        writer.field("end", lease.endChunk);
        writer.field("state", leaseStateName(lease.state));
        writer.field("epoch", lease.epoch);
        writer.field("pid", lease.ownerPid);
        writer.field("store", lease.store);
        writer.field("findings", uint64_t(lease.findings.size()));
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return writer.take();
}

} // namespace dce::fleet
