/**
 * @file
 * The fleet's persisted lease table (DESIGN.md §15): one sealed JSON
 * file per chunk shard, every transition serialized by a flock on
 * leases/LOCK and made durable by temp-file-plus-rename — the same
 * crash discipline as the corpus store, so a lease file is never
 * observable half-written.
 *
 * Lifecycle: available → claimed (epoch++) → done. A claimed lease
 * returns to the pool three ways: its owner pid is dead (coordinator
 * reap, or observed dead at claim time), its age exceeded the fleet
 * TTL (backstop for unreapable owners), or a work-stealing claim
 * found it older than stealAfterMs. Every claim increments the epoch,
 * and complete() refuses a payload whose epoch is stale — the fencing
 * that makes a stolen straggler's late completion harmless. (Results
 * are deterministic, so whichever completion wins carries the same
 * bytes; fencing just keeps the authority unambiguous.)
 *
 * The done payload carries everything the merge needs from the lease:
 * the campaign.* counter *deltas* its run contributed, the summed
 * stage microseconds, and the findings in its chunk range — so the
 * merged campaign is a pure fold over done leases, independent of
 * which worker (or how many) ran them.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "corpus/store.hpp"

namespace dce::fleet {

enum class LeaseState { Available, Claimed, Done };

const char *leaseStateName(LeaseState state);

/** A finding located by plan position (chunk, slot) — enough to
 * rebuild the StoredFinding deterministically at merge time. */
struct LeaseFinding {
    uint64_t chunk = 0;
    uint64_t slot = 0;
    uint64_t seed = 0;
    unsigned marker = 0;
};

struct Lease {
    uint64_t index = 0;
    uint64_t beginChunk = 0; ///< inclusive
    uint64_t endChunk = 0;   ///< exclusive
    uint64_t epoch = 0;      ///< bumped by every claim
    LeaseState state = LeaseState::Available;
    int64_t ownerPid = 0;
    std::string store;   ///< claiming worker's store name
    uint64_t claimMs = 0; ///< monotonicMs() at claim

    //===-- done payload -----------------------------------------------===//

    /** campaign.* counter deltas this lease's run contributed (sorted
     * by key; zero deltas kept so key sets match across leases). */
    std::vector<std::pair<std::string, uint64_t>> counters;
    /** Σ campaign.stage_us{*} sums for this lease's chunks. */
    uint64_t stageUs = 0;
    std::vector<LeaseFinding> findings;
};

/**
 * The on-disk lease table. Stateless handle — every operation reads
 * the lease files fresh under the table flock, so any number of
 * processes can hold a LeaseTable on the same fleet directory.
 */
class LeaseTable {
  public:
    /** Create leases/ and any missing lease files covering
     * [0, num_chunks) in granules of @p lease_chunks. Existing lease
     * files are left untouched (resume keeps done work). */
    static bool init(const std::string &fleet_dir, uint64_t num_chunks,
                     uint64_t lease_chunks,
                     corpus::StoreError *error = nullptr);

    explicit LeaseTable(std::string fleet_dir)
        : fleetDir_(std::move(fleet_dir))
    {
    }

    /** Snapshot every lease, sorted by index. */
    std::optional<std::vector<Lease>>
    list(corpus::StoreError *error = nullptr) const;

    /**
     * Claim the lowest-index runnable lease for (@p pid, @p store):
     * available, claimed by a dead pid, past the fleet TTL, or —
     * when @p steal_after_ms > 0 — claimed longer ago than that.
     * nullopt with error Ok when nothing is runnable right now.
     */
    std::optional<Lease> claim(int64_t pid, const std::string &store,
                               uint64_t ttl_ms,
                               uint64_t steal_after_ms,
                               corpus::StoreError *error = nullptr);

    /**
     * Mark @p lease done with its payload — unless the table's copy
     * has moved past @p lease's epoch (stolen), in which case the
     * payload is discarded and *stolen is set. Returns false only on
     * table I/O failure.
     */
    bool complete(const Lease &lease, bool *stolen = nullptr,
                  corpus::StoreError *error = nullptr);

    /** Return every lease claimed by @p pid to the pool (coordinator
     * reap path). Returns the number reclaimed. */
    std::optional<size_t>
    reclaimOwnedBy(int64_t pid, corpus::StoreError *error = nullptr);

  private:
    std::string fleetDir_;
};

} // namespace dce::fleet
