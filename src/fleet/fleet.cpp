#include "fleet/fleet.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <unistd.h>

#include "corpus/json.hpp"

namespace dce::fleet {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

} // namespace

uint64_t
FleetConfig::numChunks() const
{
    uint64_t chunk_size = plan.chunkSize ? plan.chunkSize : 1;
    return (plan.count + chunk_size - 1) / chunk_size;
}

uint64_t
FleetConfig::numLeases() const
{
    uint64_t granule = leaseChunks ? leaseChunks : 1;
    return (numChunks() + granule - 1) / granule;
}

std::string
planPath(const std::string &fleet_dir)
{
    return fleet_dir + "/PLAN.json";
}

std::string
leasesDir(const std::string &fleet_dir)
{
    return fleet_dir + "/leases";
}

std::string
leasePath(const std::string &fleet_dir, uint64_t index)
{
    return leasesDir(fleet_dir) + "/lease." + std::to_string(index) +
           ".json";
}

std::string
leaseLockPath(const std::string &fleet_dir)
{
    return leasesDir(fleet_dir) + "/LOCK";
}

std::string
workerDir(const std::string &fleet_dir, const std::string &store_name)
{
    return fleet_dir + "/" + store_name;
}

std::string
workerStoreDir(const std::string &fleet_dir,
               const std::string &store_name)
{
    return workerDir(fleet_dir, store_name) + "/store";
}

std::string
workerMetricsPath(const std::string &fleet_dir,
                  const std::string &store_name)
{
    return workerDir(fleet_dir, store_name) + "/metrics.json";
}

std::string
workerSnapshotPath(const std::string &fleet_dir,
                   const std::string &store_name)
{
    return workerDir(fleet_dir, store_name) + "/metrics.jsonl";
}

std::string
mergedStoreDir(const std::string &fleet_dir)
{
    return fleet_dir + "/merged";
}

std::string
tracesDir(const std::string &fleet_dir)
{
    return fleet_dir + "/traces";
}

std::string
workerTracePath(const std::string &fleet_dir,
                const std::string &store_name)
{
    return tracesDir(fleet_dir) + "/" + store_name + ".trace.json";
}

std::string
coordinatorTracePath(const std::string &fleet_dir)
{
    return tracesDir(fleet_dir) + "/coordinator.trace.json";
}

std::string
mergedTracePath(const std::string &fleet_dir)
{
    return fleet_dir + "/trace.merged.json";
}

uint64_t
monotonicMs()
{
    struct timespec ts = {};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return uint64_t(ts.tv_sec) * 1000 +
           uint64_t(ts.tv_nsec) / 1000000;
}

bool
writeFileAtomic(const std::string &path, const std::string &contents,
                corpus::StoreError *error)
{
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file) {
        setError(error, corpus::StoreStatus::IoError,
                 "open " + tmp + ": " + std::strerror(errno));
        return false;
    }
    bool ok = std::fwrite(contents.data(), 1, contents.size(), file) ==
              contents.size();
    ok = std::fflush(file) == 0 && ok;
    ok = ::fsync(::fileno(file)) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, corpus::StoreStatus::IoError,
                 "write " + path + ": " + std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<std::string>
readFile(const std::string &path, corpus::StoreError *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        setError(error,
                 errno == ENOENT ? corpus::StoreStatus::NotFound
                                 : corpus::StoreStatus::IoError,
                 "open " + path + ": " + std::strerror(errno));
        return std::nullopt;
    }
    std::string out;
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        out.append(buffer, got);
    bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) {
        setError(error, corpus::StoreStatus::IoError,
                 "read " + path + ": " + std::strerror(errno));
        return std::nullopt;
    }
    return out;
}

bool
writeFleetConfig(const std::string &fleet_dir,
                 const FleetConfig &config, corpus::StoreError *error)
{
    corpus::JsonWriter writer;
    writer.beginObject();
    writer.field("version", uint64_t(1));
    writer.key("plan");
    writer.raw(corpus::serializePlan(config.plan));
    writer.field("lease_chunks", config.leaseChunks);
    writer.field("lease_ttl_ms", config.leaseTtlMs);
    writer.field("steal_after_ms", config.stealAfterMs);
    writer.field("worker_threads", uint64_t(config.workerThreads));
    writer.field("worker_checkpoint_every_chunks",
                 uint64_t(config.workerCheckpointEveryChunks));
    writer.field("trace", config.trace);
    writer.field("snapshot_interval_ms", config.snapshotIntervalMs);
    writer.endObject();
    return writeFileAtomic(planPath(fleet_dir),
                           corpus::sealJsonLine(writer.take()) + "\n",
                           error);
}

std::optional<FleetConfig>
readFleetConfig(const std::string &fleet_dir,
                corpus::StoreError *error)
{
    std::optional<std::string> text =
        readFile(planPath(fleet_dir), error);
    if (!text)
        return std::nullopt;
    while (!text->empty() && text->back() == '\n')
        text->pop_back();
    std::optional<corpus::JsonValue> value =
        corpus::unsealJsonLine(*text);
    if (!value) {
        setError(error, corpus::StoreStatus::Corrupt,
                 "PLAN.json failed its checksum");
        return std::nullopt;
    }
    const corpus::JsonValue *plan_value = value->get("plan");
    std::optional<corpus::CampaignPlan> plan =
        plan_value ? corpus::readPlan(*plan_value) : std::nullopt;
    if (!plan) {
        setError(error, corpus::StoreStatus::Corrupt,
                 "PLAN.json has no valid plan");
        return std::nullopt;
    }
    FleetConfig config;
    config.plan = *plan;
    config.leaseChunks = value->getU64("lease_chunks", 1);
    config.leaseTtlMs = value->getU64("lease_ttl_ms");
    config.stealAfterMs = value->getU64("steal_after_ms");
    config.workerThreads =
        unsigned(value->getU64("worker_threads", 1));
    config.workerCheckpointEveryChunks = unsigned(
        value->getU64("worker_checkpoint_every_chunks", 4));
    // Observability knobs arrived after v1 fleets existed; defaults
    // keep old PLAN.json files readable.
    config.trace = value->getBool("trace", false);
    config.snapshotIntervalMs =
        value->getU64("snapshot_interval_ms", 0);
    return config;
}

} // namespace dce::fleet
