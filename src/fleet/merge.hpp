/**
 * @file
 * Deterministic fleet merge (DESIGN.md §15): fold a fully-done lease
 * table plus the per-worker stores into one merged CorpusStore +
 * CheckpointedCampaign whose summaryText and campaign report are
 * byte-identical to an uninterrupted single-process run of the same
 * plan — regardless of worker count, lease partition, crashes, or
 * steals.
 *
 * Why it holds: each lease payload carries its campaign.* counter
 * *deltas*, which sum associatively over any partition; findings are
 * (chunk, slot)-keyed and globally re-sorted; the campaign.progress
 * gauges are positional and set to their final values directly; and
 * the merged checkpoint is built by the same encodeCheckpointJson that
 * a live run uses, so the merged store is indistinguishable from one
 * a single process ran to completion.
 */
#pragma once

#include <optional>
#include <string>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"

namespace dce::fleet {

/**
 * Merge the fleet at @p fleet_dir into <fleet_dir>/merged (replacing
 * any previous merge — re-merging is idempotent). Requires every
 * lease Done; classified IoError naming the offending lease
 * otherwise. The returned campaign's metrics registry is owned by the
 * result (ownedMetrics).
 */
std::optional<corpus::CheckpointedCampaign>
mergeFleet(const std::string &fleet_dir,
           corpus::StoreError *error = nullptr);

} // namespace dce::fleet
