/**
 * @file
 * Cross-process trace merge (DESIGN.md §17): fold the per-process
 * Chrome trace files a traced fleet leaves under <fleet-dir>/traces/
 * into one Perfetto-loadable timeline.
 *
 * Track mapping is stable by construction: input files are taken in
 * lexical filename order and assigned merged pids 1..N, so the same
 * set of trace files always merges to the same bytes — the
 * coordinator's post-run merge and a later `longrun trace-merge` over
 * the same fleet directory are diffably identical (CI checks this).
 * Each process's original pid is preserved in its process_name label
 * (`... [pid 12345]`), so the real identity is still one click away
 * in the viewer.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "corpus/store.hpp"

namespace dce::fleet {

struct TraceMergeResult {
    uint64_t files = 0;  ///< trace files merged
    uint64_t events = 0; ///< span events in the merged timeline
};

/**
 * Merge every "*.trace.json" under tracesDir(@p fleet_dir) into
 * @p out_path. Nullopt + classified @p error when the traces
 * directory is missing/empty or a file fails to parse (a truncated
 * trace from a SIGKILLed worker is skipped, not fatal — the merge
 * reports what it could read).
 */
std::optional<TraceMergeResult>
mergeTraces(const std::string &fleet_dir, const std::string &out_path,
            corpus::StoreError *error = nullptr);

} // namespace dce::fleet
