/**
 * @file
 * Cross-process metrics transport for the fleet (DESIGN.md §15): a
 * worker serializes its registry state into one sealed JSON line
 * (atomically replacing worker.<seq>/metrics.json after each lease),
 * and the coordinator absorbs every worker's latest dump into a
 * scratch registry behind /metrics. Counters carry plain values,
 * histograms their full bucket vectors, so the aggregated exposition
 * is exact — not a lossy mean-of-means.
 */
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/metrics.hpp"

namespace dce::fleet {

using CounterList = std::vector<std::pair<std::string, uint64_t>>;
using HistogramList = std::vector<
    std::pair<std::string, support::MetricsRegistry::HistogramSnapshot>>;

/** One sealed line: {"counters":[{k,v}...],"histograms":[...]}. */
std::string encodeRegistryDump(const CounterList &counters,
                               const HistogramList &histograms);

/** Verify + fold a dump into @p into (counters add, histograms
 * absorb). False on seal or shape damage; @p into is then unchanged
 * only if the damage was the seal — callers treat false as "skip this
 * worker this scrape". */
bool absorbRegistryDump(std::string_view text,
                        support::MetricsRegistry &into);

} // namespace dce::fleet
