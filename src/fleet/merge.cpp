#include "fleet/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"
#include "support/rng.hpp"

namespace dce::fleet {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

} // namespace

std::optional<corpus::CheckpointedCampaign>
mergeFleet(const std::string &fleet_dir, corpus::StoreError *error)
{
    std::optional<FleetConfig> config =
        readFleetConfig(fleet_dir, error);
    if (!config)
        return std::nullopt;
    const corpus::CampaignPlan &plan = config->plan;
    const std::string plan_json = corpus::serializePlan(plan);
    const uint64_t chunk_size = plan.chunkSize ? plan.chunkSize : 1;
    const uint64_t num_chunks = config->numChunks();

    LeaseTable table(fleet_dir);
    std::optional<std::vector<Lease>> leases = table.list(error);
    if (!leases)
        return std::nullopt;
    for (const Lease &lease : *leases) {
        if (lease.state != LeaseState::Done) {
            setError(error, corpus::StoreStatus::IoError,
                     "fleet incomplete: lease " +
                         std::to_string(lease.index) + " is " +
                         leaseStateName(lease.state));
            return std::nullopt;
        }
    }

    // Pull each slot's record (and program text) from the store whose
    // done lease covers its chunk — the authoritative copy even when
    // a crashed worker's store holds a stale duplicate.
    std::vector<core::ProgramRecord> records(plan.count);
    std::vector<std::string> hashes(plan.count);
    std::vector<char> have(plan.count, 0);
    std::unordered_map<std::string, std::string> programs;
    std::map<std::string, std::set<uint64_t>> chunks_by_store;
    for (const Lease &lease : *leases) {
        for (uint64_t chunk = lease.beginChunk;
             chunk < lease.endChunk; ++chunk)
            chunks_by_store[lease.store].insert(chunk);
    }
    for (const auto &[store_name, chunks] : chunks_by_store) {
        support::MetricsRegistry scratch;
        corpus::OpenOptions open_options;
        open_options.createIfMissing = false;
        open_options.metrics = &scratch;
        std::unique_ptr<corpus::CorpusStore> store =
            corpus::CorpusStore::open(
                workerStoreDir(fleet_dir, store_name), error,
                open_options);
        if (!store)
            return std::nullopt;
        std::vector<corpus::StoredRecord> stored =
            store->loadRecords(error);
        if (error && !error->ok())
            return std::nullopt;
        for (corpus::StoredRecord &entry : stored) {
            if (!chunks.count(entry.chunk) ||
                entry.slot >= plan.count)
                continue;
            if (!programs.count(entry.programHash)) {
                std::optional<std::string> text =
                    store->getProgram(entry.programHash, error);
                if (!text)
                    return std::nullopt;
                programs.emplace(entry.programHash,
                                 std::move(*text));
            }
            records[entry.slot] = std::move(entry.record);
            hashes[entry.slot] = entry.programHash;
            have[entry.slot] = 1;
        }
    }
    for (uint64_t slot = 0; slot < plan.count; ++slot) {
        if (!have[slot]) {
            setError(error, corpus::StoreStatus::Corrupt,
                     "merge found no record for slot " +
                         std::to_string(slot));
            return std::nullopt;
        }
    }

    // Counter deltas sum associatively, so the totals are independent
    // of how chunks were partitioned into leases.
    auto owned = std::make_shared<support::MetricsRegistry>();
    for (const Lease &lease : *leases) {
        for (const auto &[key, delta] : lease.counters) {
            if (delta)
                owned->counter(key).add(delta);
        }
    }

    std::vector<LeaseFinding> findings;
    for (const Lease &lease : *leases)
        findings.insert(findings.end(), lease.findings.begin(),
                        lease.findings.end());
    std::sort(findings.begin(), findings.end(),
              [](const LeaseFinding &a, const LeaseFinding &b) {
                  return a.chunk != b.chunk ? a.chunk < b.chunk
                                            : a.slot < b.slot;
              });
    std::map<uint64_t, std::vector<corpus::StoredFinding>>
        findings_by_chunk;
    bool extract = plan.missedByBuild < plan.builds.size() &&
                   plan.referenceBuild < plan.builds.size();
    for (const LeaseFinding &entry : findings) {
        corpus::StoredFinding stored;
        stored.chunk = entry.chunk;
        stored.slot = entry.slot;
        stored.finding.seed = entry.seed;
        stored.finding.marker = entry.marker;
        if (extract) {
            stored.finding.missedBy = plan.builds[plan.missedByBuild];
            stored.finding.reference =
                plan.builds[plan.referenceBuild];
        }
        findings_by_chunk[entry.chunk].push_back(std::move(stored));
    }

    // The final-checkpoint progress gauges a single run would have
    // set just before writing its last checkpoint.
    owned->counter("campaign.progress", "completed_chunks")
        .add(num_chunks);
    owned->counter("campaign.progress", "watermark").add(num_chunks);
    owned->counter("campaign.progress", "seeds_committed")
        .add(plan.count);
    owned->counter("campaign.progress", "findings")
        .add(findings.size());

    // RNG stream state at the watermark: replay the full stream —
    // cheap (count draws) and exactly what a complete run records.
    uint64_t rng_state = 0;
    if (plan.randomSeeds) {
        Rng rng(plan.streamSeed);
        for (uint64_t draw = 0; draw < plan.count; ++draw)
            rng.next();
        rng_state = rng.state();
    }

    // Build the merged store: programs + records in slot order, then
    // the complete-campaign checkpoint, byte-for-byte what a live run
    // writes.
    std::string merged_dir = mergedStoreDir(fleet_dir);
    std::error_code ec;
    std::filesystem::remove_all(merged_dir, ec);
    support::MetricsRegistry merged_scratch;
    corpus::OpenOptions merged_options;
    merged_options.metrics = &merged_scratch;
    std::unique_ptr<corpus::CorpusStore> merged =
        corpus::CorpusStore::open(merged_dir, error, merged_options);
    if (!merged)
        return std::nullopt;
    for (uint64_t slot = 0; slot < plan.count; ++slot) {
        merged->putProgram(hashes[slot], programs.at(hashes[slot]));
        merged->putRecord(records[slot], slot, slot / chunk_size,
                          hashes[slot]);
    }
    std::set<uint64_t> completed;
    for (uint64_t chunk = 0; chunk < num_chunks; ++chunk)
        completed.insert(chunk);
    std::string checkpoint_json = corpus::encodeCheckpointJson(
        plan_json, completed, num_chunks, rng_state, *owned,
        findings_by_chunk);
    if (!merged->writeCheckpoint(checkpoint_json, error))
        return std::nullopt;
    merged.reset(); // release the writer lock for readers

    corpus::CheckpointedCampaign result;
    result.campaign.builds = plan.builds;
    result.campaign.programs = std::move(records);
    result.campaign.metrics.seedsDone = plan.count;
    result.resumed = false;
    result.completed = true;
    result.chunksLoaded = num_chunks;
    result.chunksRun = 0;
    for (const auto &[chunk, list] : findings_by_chunk) {
        for (const corpus::StoredFinding &stored : list) {
            if (result.findings.size() >= plan.maxFindings)
                break;
            result.findings.push_back(stored.finding);
        }
    }
    result.ownedMetrics = owned;
    result.metrics = owned.get();
    return result;
}

} // namespace dce::fleet
