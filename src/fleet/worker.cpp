#include "fleet/worker.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include "corpus/checkpoint.hpp"
#include "corpus/store.hpp"
#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"
#include "fleet/metrics_io.hpp"
#include "report/snapshot.hpp"
#include "support/trace.hpp"

namespace dce::fleet {

namespace {

int
fail(const corpus::StoreError &error, const char *what)
{
    std::fprintf(stderr, "fleet-worker: %s: %s\n", what,
                 error.message.c_str());
    return 1;
}

/** Publish the worker's cumulative registry state atomically. */
void
publishMetrics(const std::string &fleet_dir,
               const std::string &store_name,
               const std::map<std::string, uint64_t> &counters,
               const std::map<
                   std::string,
                   support::MetricsRegistry::HistogramSnapshot> &hists)
{
    CounterList counter_list(counters.begin(), counters.end());
    HistogramList hist_list(hists.begin(), hists.end());
    // Best-effort: a failed dump costs one scrape, never the run.
    writeFileAtomic(workerMetricsPath(fleet_dir, store_name),
                    encodeRegistryDump(counter_list, hist_list));
}

} // namespace

int
runFleetWorker(const std::string &fleet_dir,
               const std::string &store_name,
               const FleetWorkerOptions &options)
{
    corpus::StoreError error;
    std::optional<FleetConfig> config =
        readFleetConfig(fleet_dir, &error);
    if (!config)
        return fail(error, "read PLAN.json");
    const corpus::CampaignPlan &plan = config->plan;

    if (::mkdir(workerDir(fleet_dir, store_name).c_str(), 0755) != 0 &&
        errno != EEXIST) {
        std::fprintf(stderr, "fleet-worker: mkdir %s failed\n",
                     workerDir(fleet_dir, store_name).c_str());
        return 1;
    }
    if (config->trace) {
        support::Tracer &tracer = support::Tracer::global();
        tracer.setEnabled(true);
        // Fork-mode workers inherit whatever spans the coordinator had
        // buffered; drop them so this file holds only this process.
        tracer.clear();
        tracer.setProcess(uint64_t(::getpid()),
                          "fleet-worker " + store_name);
        ::mkdir(tracesDir(fleet_dir).c_str(), 0755);
    }
    // The store's corpus.* instruments live here; campaign.* metrics
    // go to per-lease registries so lease deltas are exact.
    support::MetricsRegistry store_registry;
    corpus::OpenOptions open_options;
    open_options.metrics = &store_registry;
    std::unique_ptr<corpus::CorpusStore> store =
        corpus::CorpusStore::open(
            workerStoreDir(fleet_dir, store_name), &error,
            open_options);
    if (!store)
        return fail(error, "open worker store");

    // Optional per-worker time series (worker.<seq>/metrics.jsonl):
    // operational data, never merged into checkpointed state.
    std::unique_ptr<report::SnapshotWriter> snapshots;
    if (config->snapshotIntervalMs) {
        report::SnapshotOptions snap;
        snap.path = workerSnapshotPath(fleet_dir, store_name);
        snap.intervalMs = config->snapshotIntervalMs;
        snap.registry = &store_registry;
        snapshots = std::make_unique<report::SnapshotWriter>(snap);
        snapshots->start();
    }

    LeaseTable table(fleet_dir);
    // Cumulative published state: campaign.* counter deltas from
    // leases this worker *owns* (stolen completions are excluded so
    // the cross-worker sum equals the single-process totals), plus
    // every histogram observation it actually made.
    std::map<std::string, uint64_t> cum_counters;
    std::map<std::string, support::MetricsRegistry::HistogramSnapshot>
        cum_hists;
    uint64_t crash_after = options.crashAfterChunks;

    for (;;) {
        std::optional<Lease> lease =
            table.claim(::getpid(), store_name, config->leaseTtlMs,
                        config->stealAfterMs, &error);
        if (!lease && !error.ok())
            return fail(error, "claim lease");
        if (!lease) {
            std::optional<std::vector<Lease>> leases =
                table.list(&error);
            if (!leases)
                return fail(error, "list leases");
            bool all_done = true;
            for (const Lease &entry : *leases)
                all_done &= entry.state == LeaseState::Done;
            if (all_done)
                break;
            ::usleep(useconds_t(options.pollMs * 1000));
            continue;
        }

        // C0: the campaign.* totals already committed to this store's
        // checkpoint before the lease runs. The lease's contribution
        // is C1 - C0 per key, immune to whatever this store ran
        // earlier.
        std::map<std::string, uint64_t> before;
        if (store->hasCheckpoint()) {
            std::optional<corpus::CheckpointState> state =
                corpus::readCheckpointState(*store, &error);
            if (!state)
                return fail(error, "read worker checkpoint");
            for (const auto &[key, value] : state->counters)
                before[key] = value;
        }

        support::MetricsRegistry lease_registry;
        corpus::CheckpointRunOptions run;
        run.threads = config->workerThreads;
        run.checkpointEveryChunks =
            config->workerCheckpointEveryChunks;
        run.metrics = &lease_registry;
        uint64_t begin = lease->beginChunk, end = lease->endChunk;
        run.chunkFilter = [begin, end](uint64_t chunk) {
            return chunk >= begin && chunk < end;
        };
        if (crash_after)
            run.haltAfterChunks = crash_after;
        std::optional<corpus::CheckpointedCampaign> result;
        {
            support::TraceSpan span("lease", "fleet");
            span.setArg("lease", lease->index);
            result = corpus::runCheckpointed(*store, plan, run, &error);
        }
        if (!result)
            return fail(error, "run lease");
        if (crash_after) {
            // Crash drill: some chunks committed, lease never
            // completed — exactly what SIGKILL mid-lease leaves.
            ::raise(SIGKILL);
        }

        Lease done = *lease;
        done.counters.clear();
        done.findings.clear();
        done.stageUs = 0;
        for (const auto &[key, value] : lease_registry.counters()) {
            if (key.rfind("campaign.", 0) != 0)
                continue;
            // campaign.progress gauges are positional, not additive;
            // the merge sets their finals directly.
            if (key.rfind("campaign.progress", 0) == 0)
                continue;
            auto it = before.find(key);
            uint64_t base = it == before.end() ? 0 : it->second;
            // Keep zero deltas: every lease then carries the same key
            // set, and the merged registry's keys match a
            // single-process run's.
            done.counters.emplace_back(key, value - base);
        }
        for (const auto &[key, snapshot] :
             lease_registry.histograms()) {
            if (key.rfind("campaign.stage_us", 0) == 0)
                done.stageUs += snapshot.sum;
        }
        std::optional<corpus::CheckpointState> after =
            corpus::readCheckpointState(*store, &error);
        if (!after)
            return fail(error, "read post-lease checkpoint");
        for (const corpus::StoredFinding &stored : after->findings) {
            if (stored.chunk < begin || stored.chunk >= end)
                continue;
            done.findings.push_back({stored.chunk, stored.slot,
                                     stored.finding.seed,
                                     stored.finding.marker});
        }

        bool stolen = false;
        if (!table.complete(done, &stolen, &error))
            return fail(error, "complete lease");
        if (!stolen) {
            for (const auto &[key, value] : done.counters)
                cum_counters[key] += value;
        }
        for (const auto &[key, snapshot] :
             lease_registry.histograms()) {
            support::MetricsRegistry::HistogramSnapshot &slot =
                cum_hists[key];
            slot.count += snapshot.count;
            slot.sum += snapshot.sum;
            for (size_t i = 0; i < slot.buckets.size(); ++i)
                slot.buckets[i] += snapshot.buckets[i];
        }
        // Fold the store's corpus.* instruments in fresh each dump
        // (they are cumulative already).
        std::map<std::string, uint64_t> dump_counters = cum_counters;
        for (const auto &[key, value] : store_registry.counters())
            dump_counters[key] = value;
        std::map<std::string,
                 support::MetricsRegistry::HistogramSnapshot>
            dump_hists = cum_hists;
        for (const auto &[key, snapshot] :
             store_registry.histograms())
            dump_hists[key] = snapshot;
        publishMetrics(fleet_dir, store_name, dump_counters,
                       dump_hists);
    }
    if (snapshots)
        snapshots->stop();
    if (config->trace) {
        // Best-effort like the metrics dump: a lost trace costs the
        // timeline, never the run's exit status.
        support::Tracer::global().writeJson(
            workerTracePath(fleet_dir, store_name));
    }
    return 0;
}

} // namespace dce::fleet
