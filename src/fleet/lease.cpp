#include "fleet/lease.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "corpus/json.hpp"
#include "fleet/fleet.hpp"

namespace dce::fleet {

namespace {

void
setError(corpus::StoreError *error, corpus::StoreStatus status,
         std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

void
clearError(corpus::StoreError *error)
{
    setError(error, corpus::StoreStatus::Ok, "");
}

/**
 * Liveness by kill(pid, 0). A zombie still "exists" here — which is
 * why the coordinator's reap (waitpid + reclaimOwnedBy) is the
 * primary crash-recovery path and the TTL only the backstop.
 */
bool
pidAlive(int64_t pid)
{
    if (pid <= 0)
        return false;
    return ::kill(pid_t(pid), 0) == 0 || errno == EPERM;
}

/** RAII flock on leases/LOCK — the table-wide critical section. */
class TableLock {
  public:
    TableLock(const std::string &fleet_dir, corpus::StoreError *error)
    {
        std::string path = leaseLockPath(fleet_dir);
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (fd_ < 0) {
            setError(error, corpus::StoreStatus::IoError,
                     "open " + path + ": " + std::strerror(errno));
            return;
        }
        int rc;
        do {
            rc = ::flock(fd_, LOCK_EX);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
            setError(error, corpus::StoreStatus::IoError,
                     "flock " + path + ": " + std::strerror(errno));
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~TableLock()
    {
        if (fd_ >= 0)
            ::close(fd_); // releases the flock
    }

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

std::string
encodeLease(const Lease &lease)
{
    corpus::JsonWriter writer;
    writer.beginObject();
    writer.field("lease", lease.index);
    writer.field("begin", lease.beginChunk);
    writer.field("end", lease.endChunk);
    writer.field("epoch", lease.epoch);
    writer.field("state", leaseStateName(lease.state));
    writer.field("pid", lease.ownerPid);
    writer.field("store", lease.store);
    writer.field("claim_ms", lease.claimMs);
    writer.field("stage_us", lease.stageUs);
    writer.key("counters");
    writer.beginArray();
    for (const auto &[key, value] : lease.counters) {
        writer.beginObject();
        writer.field("k", key);
        writer.field("v", value);
        writer.endObject();
    }
    writer.endArray();
    writer.key("findings");
    writer.beginArray();
    for (const LeaseFinding &finding : lease.findings) {
        writer.beginObject();
        writer.field("chunk", finding.chunk);
        writer.field("slot", finding.slot);
        writer.field("seed", finding.seed);
        writer.field("marker", uint64_t(finding.marker));
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return corpus::sealJsonLine(writer.take()) + "\n";
}

std::optional<Lease>
decodeLease(std::string_view text, corpus::StoreError *error,
            const std::string &path)
{
    while (!text.empty() && text.back() == '\n')
        text.remove_suffix(1);
    std::optional<corpus::JsonValue> value =
        corpus::unsealJsonLine(text);
    if (!value) {
        setError(error, corpus::StoreStatus::Corrupt,
                 path + " failed its checksum");
        return std::nullopt;
    }
    Lease lease;
    lease.index = value->getU64("lease");
    lease.beginChunk = value->getU64("begin");
    lease.endChunk = value->getU64("end");
    lease.epoch = value->getU64("epoch");
    std::string state = value->getString("state");
    if (state == "available")
        lease.state = LeaseState::Available;
    else if (state == "claimed")
        lease.state = LeaseState::Claimed;
    else if (state == "done")
        lease.state = LeaseState::Done;
    else {
        setError(error, corpus::StoreStatus::Corrupt,
                 path + " has unknown state '" + state + "'");
        return std::nullopt;
    }
    if (const corpus::JsonValue *pid = value->get("pid"))
        lease.ownerPid = pid->asI64();
    lease.store = value->getString("store");
    lease.claimMs = value->getU64("claim_ms");
    lease.stageUs = value->getU64("stage_us");
    if (const corpus::JsonValue *counters = value->get("counters")) {
        for (const corpus::JsonValue &entry : counters->items)
            lease.counters.emplace_back(entry.getString("k"),
                                        entry.getU64("v"));
    }
    if (const corpus::JsonValue *findings = value->get("findings")) {
        for (const corpus::JsonValue &entry : findings->items) {
            LeaseFinding finding;
            finding.chunk = entry.getU64("chunk");
            finding.slot = entry.getU64("slot");
            finding.seed = entry.getU64("seed");
            finding.marker = unsigned(entry.getU64("marker"));
            lease.findings.push_back(finding);
        }
    }
    return lease;
}

std::optional<Lease>
readLease(const std::string &fleet_dir, uint64_t index,
          corpus::StoreError *error)
{
    std::string path = leasePath(fleet_dir, index);
    std::optional<std::string> text = readFile(path, error);
    if (!text)
        return std::nullopt;
    return decodeLease(*text, error, path);
}

bool
writeLease(const std::string &fleet_dir, const Lease &lease,
           corpus::StoreError *error)
{
    return writeFileAtomic(leasePath(fleet_dir, lease.index),
                           encodeLease(lease), error);
}

std::optional<uint64_t>
countLeases(const std::string &fleet_dir, corpus::StoreError *error)
{
    // Lease indices are dense from 0, so the count is the first gap.
    for (uint64_t index = 0;; ++index) {
        if (::access(leasePath(fleet_dir, index).c_str(), F_OK) != 0) {
            if (errno == ENOENT)
                return index;
            setError(error, corpus::StoreStatus::IoError,
                     "access " + leasePath(fleet_dir, index) + ": " +
                         std::strerror(errno));
            return std::nullopt;
        }
    }
}

} // namespace

const char *
leaseStateName(LeaseState state)
{
    switch (state) {
    case LeaseState::Available:
        return "available";
    case LeaseState::Claimed:
        return "claimed";
    case LeaseState::Done:
        return "done";
    }
    return "?";
}

bool
LeaseTable::init(const std::string &fleet_dir, uint64_t num_chunks,
                 uint64_t lease_chunks, corpus::StoreError *error)
{
    if (::mkdir(leasesDir(fleet_dir).c_str(), 0755) != 0 &&
        errno != EEXIST) {
        setError(error, corpus::StoreStatus::IoError,
                 "mkdir " + leasesDir(fleet_dir) + ": " +
                     std::strerror(errno));
        return false;
    }
    TableLock lock(fleet_dir, error);
    if (!lock.held())
        return false;
    uint64_t granule = lease_chunks ? lease_chunks : 1;
    for (uint64_t index = 0, begin = 0; begin < num_chunks;
         ++index, begin += granule) {
        if (::access(leasePath(fleet_dir, index).c_str(), F_OK) == 0)
            continue; // resume: keep recorded state
        Lease lease;
        lease.index = index;
        lease.beginChunk = begin;
        lease.endChunk = std::min(begin + granule, num_chunks);
        if (!writeLease(fleet_dir, lease, error))
            return false;
    }
    return true;
}

std::optional<std::vector<Lease>>
LeaseTable::list(corpus::StoreError *error) const
{
    TableLock lock(fleetDir_, error);
    if (!lock.held())
        return std::nullopt;
    std::optional<uint64_t> count = countLeases(fleetDir_, error);
    if (!count)
        return std::nullopt;
    std::vector<Lease> out;
    out.reserve(*count);
    for (uint64_t index = 0; index < *count; ++index) {
        std::optional<Lease> lease =
            readLease(fleetDir_, index, error);
        if (!lease)
            return std::nullopt;
        out.push_back(std::move(*lease));
    }
    return out;
}

std::optional<Lease>
LeaseTable::claim(int64_t pid, const std::string &store,
                  uint64_t ttl_ms, uint64_t steal_after_ms,
                  corpus::StoreError *error)
{
    TableLock lock(fleetDir_, error);
    if (!lock.held())
        return std::nullopt;
    std::optional<uint64_t> count = countLeases(fleetDir_, error);
    if (!count)
        return std::nullopt;
    uint64_t now = monotonicMs();
    for (uint64_t index = 0; index < *count; ++index) {
        std::optional<Lease> lease =
            readLease(fleetDir_, index, error);
        if (!lease)
            return std::nullopt;
        bool runnable = false;
        if (lease->state == LeaseState::Available) {
            runnable = true;
        } else if (lease->state == LeaseState::Claimed) {
            uint64_t age =
                now > lease->claimMs ? now - lease->claimMs : 0;
            runnable = !pidAlive(lease->ownerPid) ||
                       (ttl_ms && age >= ttl_ms) ||
                       (steal_after_ms && age >= steal_after_ms);
        }
        if (!runnable)
            continue;
        lease->state = LeaseState::Claimed;
        lease->epoch += 1; // fences any in-flight prior owner
        lease->ownerPid = pid;
        lease->store = store;
        lease->claimMs = now;
        lease->counters.clear();
        lease->findings.clear();
        lease->stageUs = 0;
        if (!writeLease(fleetDir_, *lease, error))
            return std::nullopt;
        clearError(error);
        return lease;
    }
    clearError(error); // nothing runnable is not a failure
    return std::nullopt;
}

bool
LeaseTable::complete(const Lease &lease, bool *stolen,
                     corpus::StoreError *error)
{
    if (stolen)
        *stolen = false;
    TableLock lock(fleetDir_, error);
    if (!lock.held())
        return false;
    std::optional<Lease> current =
        readLease(fleetDir_, lease.index, error);
    if (!current)
        return false;
    if (current->epoch != lease.epoch ||
        current->state != LeaseState::Claimed) {
        // Claimed past us (stolen) or already done by the thief —
        // our payload would be byte-identical anyway; discard it.
        if (stolen)
            *stolen = true;
        clearError(error);
        return true;
    }
    Lease done = lease;
    done.state = LeaseState::Done;
    return writeLease(fleetDir_, done, error);
}

std::optional<size_t>
LeaseTable::reclaimOwnedBy(int64_t pid, corpus::StoreError *error)
{
    TableLock lock(fleetDir_, error);
    if (!lock.held())
        return std::nullopt;
    std::optional<uint64_t> count = countLeases(fleetDir_, error);
    if (!count)
        return std::nullopt;
    size_t reclaimed = 0;
    for (uint64_t index = 0; index < *count; ++index) {
        std::optional<Lease> lease =
            readLease(fleetDir_, index, error);
        if (!lease)
            return std::nullopt;
        if (lease->state != LeaseState::Claimed ||
            lease->ownerPid != pid)
            continue;
        lease->state = LeaseState::Available;
        lease->ownerPid = 0;
        lease->store.clear();
        lease->claimMs = 0;
        if (!writeLease(fleetDir_, *lease, error))
            return std::nullopt;
        ++reclaimed;
    }
    return reclaimed;
}

} // namespace dce::fleet
