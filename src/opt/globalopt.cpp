/**
 * @file
 * GlobalOpt: interprocedural value analysis of internal globals. This
 * pass is where the paper's flagship GCC-vs-LLVM divergence lives
 * (Listings 4a/6a; DESIGN.md D1/D4/R7):
 *
 *  - D1  foldNeverStoredGlobals: a non-escaping internal global with no
 *        stores anywhere keeps its initializer forever; loads fold.
 *        (Both compilers have this.)
 *  - D4  foldStoredEqualsInitGlobals: loads also fold when every store
 *        writes a value equal to the initializer (LLVM globalopt's
 *        "stored once same value"). GCC's flow-insensitive analysis
 *        lacks this — `if (a) dead(); a = 0;` stays unoptimized there.
 *  - R7  flowSensitiveGlobalLoads: loads in main that provably execute
 *        before any store fold regardless of the stored value (LLVM
 *        <= 3.7). Its removal is the regression behind Listing 6a.
 *  - D6  foldUniformZeroArrays: loads with a variable index from a
 *        never-stored all-zero array fold to 0 (Listing 9f). Constant
 *        in-bounds indices always fold under D1. (Folding a non-zero
 *        uniform array at a variable index would be unsound under
 *        MiniC's defined out-of-bounds-reads-zero semantics, so only
 *        the zero case exists.)
 */
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "ir/loop_info.hpp"
#include "opt/alias.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Constant;
using ir::Function;
using ir::GlobalInit;
using ir::GlobalVar;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class GlobalOpt : public Pass {
  public:
    std::string name() const override { return "globalopt"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        if (!config.foldNeverStoredGlobals)
            return false;
        module_ = &module;
        config_ = &config;
        EscapeInfo escape(module);
        MemorySummary summary(module, escape);

        bool changed = false;
        for (const auto &global : module.globals()) {
            if (!global->isInternal() || escape.escapes(global.get()))
                continue;
            changed |= analyzeGlobal(*global, summary);
        }
        if (config.localizeGlobals) {
            // Loop-restricted register promotion (the LICM scalar
            // promotion family): only globals with an access inside a
            // loop of main are worth (and, empirically in GCC/LLVM,
            // eligible for) promotion. Promoting straight-line-only
            // globals would erase the flow-(in)sensitivity differences
            // the paper documents (Listings 4a/6a).
            std::unordered_set<const BasicBlock *> loop_blocks;
            Function *main_fn = module.getFunction("main");
            if (main_fn && !main_fn->isDeclaration()) {
                ir::DominatorTree domtree(*main_fn);
                ir::LoopInfo loops(*main_fn, domtree);
                for (const auto &loop : loops.loops()) {
                    loop_blocks.insert(loop->blocks.begin(),
                                       loop->blocks.end());
                }
            }
            for (const auto &global : module.globals()) {
                if (global->isInternal() &&
                    !escape.escapes(global.get())) {
                    changed |= localize(*global, loop_blocks);
                }
            }
        }
        return changed;
    }

    /** Turn a scalar internal global accessed by exactly one function
     * into an alloca of that function (initialized explicitly), so
     * mem2reg can promote it to SSA. */
    bool
    localize(GlobalVar &g,
             const std::unordered_set<const BasicBlock *> &loop_blocks)
    {
        if (g.isArray() || g.count() != 1)
            return false;
        if (g.elementType().isPtr() && !g.init.empty() &&
            g.init[0].isAddress()) {
            return false; // address initializer: keep it in memory
        }
        Function *only_user = nullptr;
        for (const Instr *user : g.users()) {
            Function *fn = user->parent()->parent();
            if (only_user && fn != only_user)
                return false;
            only_user = fn;
            // Only direct load/store addresses qualify (non-escaping
            // already rules the rest out, but stay defensive).
            bool direct =
                (user->opcode() == Opcode::Load &&
                 user->operand(0) == &g) ||
                (user->opcode() == Opcode::Store &&
                 user->operand(1) == &g && user->operand(0) != &g);
            if (!direct)
                return false;
        }
        if (!only_user || only_user->name() != "main")
            return false; // conservatively only main (executes once)
        bool accessed_in_loop = false;
        for (const Instr *user : g.users())
            accessed_in_loop |= loop_blocks.count(user->parent()) != 0;
        if (!accessed_in_loop)
            return false;
        // Materialize: alloca + initializing store at entry top.
        BasicBlock *entry = only_user->entry();
        auto alloca_instr = module_->newInstr(Opcode::Alloca,
                                                    IrType::ptrTy());
        alloca_instr->allocatedType = g.elementType();
        alloca_instr->setId(module_->nextValueId());
        Instr *slot = entry->insertBefore(0, std::move(alloca_instr));

        int64_t init_value = g.init.empty() ? 0 : g.init[0].value;
        Value *init_const =
            g.elementType().isPtr()
                ? module_->constant(IrType::ptrTy(), 0)
                : module_->constant(g.elementType(), init_value);
        auto store = module_->newInstr(Opcode::Store,
                                             IrType::voidTy());
        store->addOperand(init_const);
        store->addOperand(slot);
        entry->insertBefore(1, std::move(store));

        g.replaceAllUsesWith(slot);
        return true;
    }

  private:
    /** The initializer value of slot @p index (missing slots are 0). */
    GlobalInit
    initOf(const GlobalVar &g, uint64_t index) const
    {
        if (index < g.init.size())
            return g.init[index];
        return GlobalInit::intValue(0);
    }

    /** All loads/stores in the module whose pointer resolves to @p g. */
    struct Accesses {
        std::vector<Instr *> loads;
        std::vector<Instr *> stores;
        bool sawUnresolvedStoreOffset = false;
    };

    Accesses
    collectAccesses(const GlobalVar &g) const
    {
        Accesses result;
        for (const auto &fn : module_->functions()) {
            for (const auto &block : fn->blocks()) {
                for (const auto &instr : block->instrs()) {
                    bool is_load = instr->opcode() == Opcode::Load;
                    bool is_store = instr->opcode() == Opcode::Store;
                    if (!is_load && !is_store)
                        continue;
                    const Value *ptr =
                        instr->operand(is_load ? 0 : 1);
                    PtrBase base = resolvePtrBase(ptr);
                    if (base.kind != PtrBase::Kind::Global ||
                        base.object != &g) {
                        continue;
                    }
                    if (is_load) {
                        result.loads.push_back(instr.get());
                    } else {
                        result.stores.push_back(instr.get());
                        if (!base.offset)
                            result.sawUnresolvedStoreOffset = true;
                    }
                }
            }
        }
        return result;
    }

    /** True if every store writes the slot's initializer value. */
    bool
    storesMatchInit(const GlobalVar &g,
                    const std::vector<Instr *> &stores) const
    {
        for (const Instr *store : stores) {
            PtrBase base = resolvePtrBase(store->operand(1));
            if (!base.offset)
                return false;
            GlobalInit init = initOf(g, static_cast<uint64_t>(
                                            *base.offset));
            const Value *value = store->operand(0);
            if (g.elementType().isPtr()) {
                if (value->isConstant()) {
                    // Storing null: matches a null initializer.
                    if (init.isAddress())
                        return false;
                    continue;
                }
                PtrBase stored = resolvePtrBase(value);
                if (stored.kind != PtrBase::Kind::Global ||
                    !stored.offset || !init.isAddress() ||
                    stored.object != init.base ||
                    *stored.offset != init.value) {
                    return false;
                }
            } else {
                if (!value->isConstant())
                    return false;
                if (static_cast<const Constant *>(value)->value() !=
                    init.value) {
                    return false;
                }
            }
        }
        return true;
    }

    /** Replace @p load with the constant content of slot @p init.
     * Pointer slots materialize (gep @base, offset). */
    bool
    replaceLoadWithInit(Instr *load, const GlobalInit &init)
    {
        IrType type = load->type();
        Value *replacement = nullptr;
        if (init.isAddress()) {
            if (!type.isPtr())
                return false;
            GlobalVar *base = module_->getGlobal(init.base->name());
            if (init.value == 0) {
                replacement = base;
            } else {
                auto gep = module_->newInstr(Opcode::Gep,
                                                   IrType::ptrTy());
                gep->addOperand(base);
                gep->addOperand(module_->constant(
                    IrType::i64(), init.value));
                gep->gepElemSize = base->elementType().sizeInBytes();
                gep->setId(module_->nextValueId());
                BasicBlock *block = load->parent();
                replacement = block->insertBefore(block->indexOf(load),
                                                  std::move(gep));
            }
        } else {
            if (type.isPtr())
                replacement = module_->constant(IrType::ptrTy(), 0);
            else
                replacement = module_->constant(type, init.value);
        }
        load->replaceAllUsesWith(replacement);
        load->parent()->erase(load);
        return true;
    }

    bool
    foldLoadsFromConstantGlobal(const GlobalVar &g,
                                const std::vector<Instr *> &loads)
    {
        bool changed = false;
        for (Instr *load : loads) {
            PtrBase base = resolvePtrBase(load->operand(0));
            if (base.offset) {
                int64_t index = *base.offset;
                GlobalInit init =
                    (index >= 0 &&
                     static_cast<uint64_t>(index) < g.count())
                        ? initOf(g, static_cast<uint64_t>(index))
                        : GlobalInit::intValue(0); // OOB reads as zero
                changed |= replaceLoadWithInit(load, init);
                continue;
            }
            // Variable index: only the all-zero case folds (D6), since
            // an out-of-bounds read is defined to yield 0.
            if (!config_->foldUniformZeroArrays)
                continue;
            if (g.elementType().isPtr())
                continue;
            bool all_zero = true;
            for (uint64_t i = 0; i < g.count() && all_zero; ++i)
                all_zero = initOf(g, i).value == 0;
            if (all_zero) {
                load->replaceAllUsesWith(
                    module_->constant(load->type(), 0));
                load->parent()->erase(load);
                changed = true;
            }
        }
        return changed;
    }

    /** R7: fold loads in the entry function that execute before any
     * possible store to @p g. */
    bool
    foldFlowSensitiveLoads(const GlobalVar &g, const Accesses &accesses,
                           const MemorySummary &summary)
    {
        Function *main_fn = module_->getFunction("main");
        if (!main_fn || main_fn->isDeclaration())
            return false;

        auto writesG = [&](const Instr &instr) {
            if (instr.opcode() == Opcode::Store) {
                PtrBase base = resolvePtrBase(instr.operand(1));
                // Non-escaping global: only resolved pointers reach it.
                return base.kind == PtrBase::Kind::Global &&
                       base.object == &g;
            }
            if (instr.opcode() == Opcode::Call)
                return summary.mayWrite(instr.callee, &g);
            return false;
        };

        // Forward dataflow: is the *start* of each block reachable only
        // through store-free paths?
        std::unordered_map<const BasicBlock *, bool> clean_in;
        auto preds = ir::predecessorMap(*main_fn);
        for (const auto &block : main_fn->blocks())
            clean_in[block.get()] = true;
        bool iterate = true;
        while (iterate) {
            iterate = false;
            for (const auto &block : main_fn->blocks()) {
                bool clean = block.get() == main_fn->entry();
                if (!clean) {
                    clean = !preds.at(block.get()).empty();
                    for (const BasicBlock *pred : preds.at(block.get())) {
                        bool pred_out = clean_in.at(pred);
                        if (pred_out) {
                            for (const auto &instr : pred->instrs()) {
                                if (writesG(*instr)) {
                                    pred_out = false;
                                    break;
                                }
                            }
                        }
                        clean = clean && pred_out;
                    }
                }
                if (clean != clean_in.at(block.get())) {
                    clean_in[block.get()] = clean;
                    iterate = true;
                }
            }
        }

        bool changed = false;
        for (Instr *load : accesses.loads) {
            if (load->parent()->parent() != main_fn)
                continue;
            if (!clean_in.at(load->parent()))
                continue;
            // Check the block prefix before the load.
            bool clean = true;
            for (const auto &instr : load->parent()->instrs()) {
                if (instr.get() == load)
                    break;
                if (writesG(*instr)) {
                    clean = false;
                    break;
                }
            }
            if (!clean)
                continue;
            PtrBase base = resolvePtrBase(load->operand(0));
            if (!base.offset)
                continue;
            int64_t index = *base.offset;
            GlobalInit init =
                (index >= 0 && static_cast<uint64_t>(index) < g.count())
                    ? initOf(g, static_cast<uint64_t>(index))
                    : GlobalInit::intValue(0);
            changed |= replaceLoadWithInit(load, init);
        }
        return changed;
    }

    bool
    analyzeGlobal(const GlobalVar &g, const MemorySummary &summary)
    {
        Accesses accesses = collectAccesses(g);
        bool constant_content =
            accesses.stores.empty() ||
            (config_->foldStoredEqualsInitGlobals &&
             !accesses.sawUnresolvedStoreOffset &&
             storesMatchInit(g, accesses.stores));

        if (constant_content)
            return foldLoadsFromConstantGlobal(g, accesses.loads);

        if (config_->flowSensitiveGlobalLoads)
            return foldFlowSensitiveLoads(g, accesses, summary);
        return false;
    }

    Module *module_ = nullptr;
    const PassConfig *config_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createGlobalOptPass()
{
    return std::make_unique<GlobalOpt>();
}

} // namespace dce::opt
