/**
 * @file
 * EarlyCSE / GVN: dominator-scoped common-subexpression elimination,
 * store-to-load forwarding, redundant-load elimination, and no-op
 * store removal. The memory side is alias-aware: a store only
 * invalidates available loads that may alias it, and a call only
 * invalidates objects its transitive memory summary says it may write.
 *
 * R5 `preciseAliasForwarding`: with the flag off, *any* intervening
 * store or call invalidates everything — the regressed GCC behaviour
 * of Listing 9c (PR100051), where lost alias precision at -O3 blocked
 * a fold that -O1 performed.
 *
 * Join-block conservatism: when the dominator-tree walk descends into
 * a block with more than one CFG predecessor, paths not passing
 * through the parent may have stored, so all memory availability is
 * invalidated (LLVM EarlyCSE does the same without MemorySSA).
 */
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "opt/alias.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

/** Key identifying a pure expression for value numbering. */
using ExprKey = std::tuple<int,      // opcode
                           int,      // sub-operation
                           const Value *, const Value *, const Value *,
                           int,      // type bits
                           int>;     // type signedness/kind

/** Hash for ExprKey / pointer keys (FNV-style mix of the tuple). */
struct KeyHash {
    static size_t
    mix(size_t seed, uint64_t v)
    {
        seed ^= static_cast<size_t>(v * 0x9E3779B97F4A7C15ULL) +
                (seed << 6) + (seed >> 2);
        return seed;
    }
    size_t
    operator()(const std::tuple<int, int, const Value *, const Value *,
                                const Value *, int, int> &key) const
    {
        size_t h = mix(0, static_cast<uint64_t>(std::get<0>(key)));
        h = mix(h, static_cast<uint64_t>(std::get<1>(key)));
        h = mix(h, reinterpret_cast<uintptr_t>(std::get<2>(key)));
        h = mix(h, reinterpret_cast<uintptr_t>(std::get<3>(key)));
        h = mix(h, reinterpret_cast<uintptr_t>(std::get<4>(key)));
        h = mix(h, static_cast<uint64_t>(std::get<5>(key)));
        h = mix(h, static_cast<uint64_t>(std::get<6>(key)));
        return h;
    }
    size_t
    operator()(const Value *key) const
    {
        return mix(0, reinterpret_cast<uintptr_t>(key));
    }
};

/**
 * Scoped hash table with tombstones (nullptr value shadows an outer
 * entry): one hash map from key to a stack of per-scope bindings plus
 * an undo log per scope, so lookup is a single probe and popScope
 * unwinds exactly the bindings its scope made — the standard
 * LLVM-ScopedHashTable shape. The outcome of every operation is
 * identical to a stack of per-scope maps; only the cost differs.
 */
template <typename Key>
class ScopedTable {
  public:
    void pushScope() { undo_.emplace_back(); }

    void
    popScope()
    {
        for (const Key &key : undo_.back()) {
            auto it = table_.find(key);
            it->second.pop_back();
            if (it->second.empty())
                table_.erase(it);
        }
        undo_.pop_back();
    }

    void
    insert(const Key &key, Value *value)
    {
        unsigned scope = static_cast<unsigned>(undo_.size() - 1);
        auto &stack = table_[key];
        if (!stack.empty() && stack.back().scope == scope) {
            stack.back().value = value;
            return;
        }
        stack.push_back({value, scope});
        undo_.back().push_back(key);
    }

    /** Innermost entry, or nullptr when absent or tombstoned. */
    Value *
    lookup(const Key &key) const
    {
        auto it = table_.find(key);
        if (it == table_.end())
            return nullptr;
        return it->second.back().value;
    }

    /** Invoke @p fn on every live (non-tombstoned) key, innermost
     * binding shadowing outer. Enumeration order is unspecified; every
     * caller applies an order-independent filter. The callback may
     * insert() for keys already present (tombstoning) — that never
     * rehashes, so iteration stays valid — but must not introduce new
     * keys. */
    template <typename Fn>
    void
    forEachLive(Fn fn)
    {
        for (auto &[key, stack] : table_) {
            if (stack.back().value)
                fn(key);
        }
    }

  private:
    struct Binding {
        Value *value;
        unsigned scope;
    };
    std::unordered_map<Key, support::SmallVector<Binding, 2>, KeyHash>
        table_;
    std::vector<std::vector<Key>> undo_;
};

class EarlyCse : public Pass {
  public:
    std::string name() const override { return "earlycse"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        if (!config.earlyCse)
            return false;
        config_ = &config;
        escape_ = std::make_unique<EscapeInfo>(module);
        summary_ = std::make_unique<MemorySummary>(module, *escape_);
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (!fn->isDeclaration())
                changed |= runOnFunction(*fn);
        }
        escape_.reset();
        summary_.reset();
        return changed;
    }

  private:
    static bool
    isCseable(const Instr &instr)
    {
        switch (instr.opcode()) {
          case Opcode::Bin:
          case Opcode::Cmp:
          case Opcode::Cast:
          case Opcode::Gep:
          case Opcode::Select:
          case Opcode::Freeze:
            return true;
          default:
            return false;
        }
    }

    static ExprKey
    keyOf(const Instr &instr)
    {
        int sub = 0;
        switch (instr.opcode()) {
          case Opcode::Bin:
            sub = static_cast<int>(instr.binOp);
            break;
          case Opcode::Cmp:
            sub = static_cast<int>(instr.cmpPred);
            break;
          case Opcode::Cast:
            sub = static_cast<int>(instr.castOp);
            break;
          case Opcode::Gep:
            sub = static_cast<int>(instr.gepElemSize);
            break;
          default:
            break;
        }
        const Value *op0 =
            instr.numOperands() > 0 ? instr.operand(0) : nullptr;
        const Value *op1 =
            instr.numOperands() > 1 ? instr.operand(1) : nullptr;
        const Value *op2 =
            instr.numOperands() > 2 ? instr.operand(2) : nullptr;
        return {static_cast<int>(instr.opcode()), sub, op0, op1, op2,
                instr.type().bits,
                static_cast<int>(instr.type().kind) * 2 +
                    (instr.type().isSigned ? 1 : 0)};
    }

    /** Drop every available load that may alias a store to @p ptr. */
    void
    invalidateMayAlias(const Value *ptr)
    {
        memory_.forEachLive([&](const Value *key) {
            if (alias(key, ptr) != AliasResult::NoAlias)
                memory_.insert(key, nullptr);
        });
    }

    void
    invalidateAll()
    {
        memory_.forEachLive(
            [&](const Value *key) { memory_.insert(key, nullptr); });
    }

    void
    invalidateForCall(const Instr &call)
    {
        const Function *callee = call.callee;
        const bool writes_unknown = summary_->writesUnknown(callee);
        memory_.forEachLive([&](const Value *key) {
            PtrBase base = resolvePtrBase(key);
            bool clobbered;
            if (base.kind == PtrBase::Kind::Global) {
                const auto *g =
                    static_cast<const ir::GlobalVar *>(base.object);
                clobbered = summary_->mayWrite(callee, g) ||
                            (escape_->escapes(g) && writes_unknown);
            } else if (base.kind == PtrBase::Kind::Alloca) {
                clobbered =
                    escape_->escapes(base.object) && writes_unknown;
            } else {
                clobbered = true;
            }
            if (clobbered)
                memory_.insert(key, nullptr);
        });
    }

    bool
    runOnFunction(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        auto preds = ir::predecessorMap(fn);

        std::vector<std::vector<BasicBlock *>> dom_children(
            fn.numBlocks());
        for (BasicBlock *block : domtree.rpo()) {
            if (const BasicBlock *parent = domtree.idom(block))
                dom_children[parent->indexInFn()].push_back(block);
        }

        bool changed = false;

        // Explicit-stack DFS so each scope pops exactly once.
        struct Action {
            BasicBlock *block;
            bool entering;
        };
        std::vector<Action> stack{{fn.entry(), true}};
        while (!stack.empty()) {
            Action action = stack.back();
            stack.pop_back();
            if (!action.entering) {
                expressions_.popScope();
                memory_.popScope();
                continue;
            }
            expressions_.pushScope();
            memory_.pushScope();
            stack.push_back({action.block, false});

            // Memory availability does not survive into join blocks:
            // off-tree paths may have stored.
            if (action.block != fn.entry() &&
                preds.at(action.block).size() != 1) {
                invalidateAll();
            }

            changed |= processBlock(*action.block);

            for (BasicBlock *child :
                 dom_children[action.block->indexInFn()])
                stack.push_back({child, true});
        }
        return changed;
    }

    bool
    processBlock(BasicBlock &block)
    {
        bool changed = false;
        for (size_t i = 0; i < block.size();) {
            Instr *instr = block.instrs()[i].get();
            if (isCseable(*instr)) {
                ExprKey key = keyOf(*instr);
                if (Value *known = expressions_.lookup(key)) {
                    instr->replaceAllUsesWith(known);
                    block.erase(instr);
                    changed = true;
                    continue;
                }
                expressions_.insert(key, instr);
            } else if (instr->opcode() == Opcode::Load) {
                Value *ptr = instr->operand(0);
                if (Value *known = memory_.lookup(ptr)) {
                    if (known->type() == instr->type()) {
                        instr->replaceAllUsesWith(known);
                        block.erase(instr);
                        changed = true;
                        continue;
                    }
                }
                memory_.insert(ptr, instr);
            } else if (instr->opcode() == Opcode::Store) {
                Value *value = instr->operand(0);
                Value *ptr = instr->operand(1);
                Value *known = memory_.lookup(ptr);
                if (known == value) {
                    // Memory already holds this value: no-op store.
                    block.erase(instr);
                    changed = true;
                    continue;
                }
                if (config_->preciseAliasForwarding)
                    invalidateMayAlias(ptr);
                else
                    invalidateAll(); // R5 regressed behaviour
                if (value->type() == memorySlotType(ptr))
                    memory_.insert(ptr, value);
            } else if (instr->opcode() == Opcode::Call) {
                if (config_->preciseAliasForwarding)
                    invalidateForCall(*instr);
                else
                    invalidateAll();
            }
            ++i;
        }
        return changed;
    }

    /** The element type behind @p ptr when derivable (guards the
     * forwarded value's type; stores always match in well-typed IR but
     * unknown-base pointers are checked defensively). */
    static ir::IrType
    memorySlotType(const Value *ptr)
    {
        PtrBase base = resolvePtrBase(ptr);
        if (base.kind == PtrBase::Kind::Global) {
            return static_cast<const ir::GlobalVar *>(base.object)
                ->elementType();
        }
        if (base.kind == PtrBase::Kind::Alloca) {
            return static_cast<const Instr *>(base.object)
                ->allocatedType;
        }
        return ir::IrType::voidTy(); // unknown: never matches
    }

    const PassConfig *config_ = nullptr;
    std::unique_ptr<EscapeInfo> escape_;
    std::unique_ptr<MemorySummary> summary_;
    ScopedTable<ExprKey> expressions_;
    ScopedTable<const Value *> memory_;
};

} // namespace

std::unique_ptr<Pass>
createEarlyCsePass()
{
    return std::make_unique<EarlyCse>();
}

} // namespace dce::opt
