/**
 * @file
 * Sparse conditional constant propagation (Wegman-Zadeck). Tracks a
 * three-level lattice per SSA value and edge executability, so
 * constants propagate *through* branches that they themselves prove
 * dead. Rewrites proven values to constants; SimplifyCFG then folds
 * the resulting constant branches and deletes the dead arms.
 *
 * Freeze participates only when `foldFreezeOfConstant` is set — with it
 * off, a freeze is an opaque fence exactly like LLVM's, which is what
 * makes the unswitch-inserted freezes of R1 block elimination.
 */
#include <vector>

#include "opt/pass.hpp"
#include "support/ints.hpp"
#include "support/markers.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::BinOp;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ir::ValueKind;

namespace {

/** Lattice element. */
struct LatticeValue {
    enum class State { Top, Const, Bottom } state = State::Top;
    int64_t value = 0;

    bool isConst() const { return state == State::Const; }
    bool isBottom() const { return state == State::Bottom; }
    bool isTop() const { return state == State::Top; }

    static LatticeValue
    constant(int64_t value)
    {
        return {State::Const, value};
    }
    static LatticeValue
    bottom()
    {
        return {State::Bottom, 0};
    }
};

class Sccp : public Pass {
  public:
    std::string name() const override { return "sccp"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.sccp)
            return false;
        config_ = &config;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (!fn->isDeclaration())
                changed |= runOnFunction(*fn, module);
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    LatticeValue
    operandLattice(const Value *value) const
    {
        switch (value->valueKind()) {
          case ValueKind::Constant: {
            const auto *c = static_cast<const Constant *>(value);
            if (c->type().isPtr())
                return LatticeValue::bottom(); // pointers not tracked
            return LatticeValue::constant(c->value());
          }
          case ValueKind::Global:
          case ValueKind::Param:
            // Globals are memory; parameters are unknown inputs
            // (intraprocedural analysis).
            return LatticeValue::bottom();
          case ValueKind::Instruction:
            return lattice_[value->id()];
        }
        return LatticeValue::bottom();
    }

    bool
    edgeExecutable(const BasicBlock *from, const BasicBlock *to) const
    {
        for (const BasicBlock *succ : executableSuccs_[from->indexInFn()]) {
            if (succ == to)
                return true;
        }
        return false;
    }

    /** Raise @p value to at least @p incoming; queue users on change. */
    void
    raise(const Value *value, LatticeValue incoming)
    {
        LatticeValue &current = lattice_[value->id()];
        if (current.isBottom())
            return;
        bool changed = false;
        if (incoming.isBottom()) {
            current = LatticeValue::bottom();
            changed = true;
        } else if (incoming.isConst()) {
            if (current.isTop()) {
                current = incoming;
                changed = true;
            } else if (current.isConst() &&
                       current.value != incoming.value) {
                current = LatticeValue::bottom();
                changed = true;
            }
        }
        if (changed)
            ssaWorklist_.push_back(value);
    }

    void
    markEdge(const BasicBlock *from, const BasicBlock *to)
    {
        if (edgeExecutable(from, to))
            return;
        executableSuccs_[from->indexInFn()].push_back(to);
        unsigned char &live = executableBlocks_[to->indexInFn()];
        if (!live) {
            live = 1;
            blockWorklist_.push_back(to);
        } else {
            // New edge into an already-live block: phis must re-merge.
            for (const auto &instr : to->instrs()) {
                if (instr->opcode() != Opcode::Phi)
                    break;
                visit(*instr);
            }
        }
    }

    LatticeValue
    evalBin(const Instr &instr, LatticeValue a, LatticeValue b) const
    {
        IrType type = instr.type();
        if (a.isBottom() || b.isBottom()) {
            // A few operations have absorbing constants.
            if (instr.binOp == BinOp::Mul &&
                ((a.isConst() && a.value == 0) ||
                 (b.isConst() && b.value == 0))) {
                return LatticeValue::constant(0);
            }
            if (instr.binOp == BinOp::And &&
                ((a.isConst() && a.value == 0) ||
                 (b.isConst() && b.value == 0))) {
                return LatticeValue::constant(0);
            }
            return LatticeValue::bottom();
        }
        if (a.isTop() || b.isTop())
            return {};
        int64_t result;
        unsigned bits = type.bits;
        bool is_signed = type.isSigned;
        switch (instr.binOp) {
          case BinOp::Add: result = addInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Sub: result = subInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Mul: result = mulInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Div: result = divInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Rem: result = remInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Shl: result = shlInt(a.value, b.value, bits, is_signed); break;
          case BinOp::Shr: result = shrInt(a.value, b.value, bits, is_signed); break;
          case BinOp::And: result = wrapInt(a.value & b.value, bits, is_signed); break;
          case BinOp::Or: result = wrapInt(a.value | b.value, bits, is_signed); break;
          case BinOp::Xor: result = wrapInt(a.value ^ b.value, bits, is_signed); break;
          default: return LatticeValue::bottom();
        }
        return LatticeValue::constant(result);
    }

    LatticeValue
    evalCmp(const Instr &instr, LatticeValue a, LatticeValue b) const
    {
        if (instr.operand(0)->type().isPtr())
            return LatticeValue::bottom();
        if (a.isBottom() || b.isBottom())
            return LatticeValue::bottom();
        if (a.isTop() || b.isTop())
            return {};
        bool result;
        switch (instr.cmpPred) {
          case CmpPred::Eq: result = a.value == b.value; break;
          case CmpPred::Ne: result = a.value != b.value; break;
          case CmpPred::Slt: result = a.value < b.value; break;
          case CmpPred::Sle: result = a.value <= b.value; break;
          case CmpPred::Sgt: result = a.value > b.value; break;
          case CmpPred::Sge: result = a.value >= b.value; break;
          case CmpPred::Ult:
            result = static_cast<uint64_t>(a.value) <
                     static_cast<uint64_t>(b.value);
            break;
          case CmpPred::Ule:
            result = static_cast<uint64_t>(a.value) <=
                     static_cast<uint64_t>(b.value);
            break;
          case CmpPred::Ugt:
            result = static_cast<uint64_t>(a.value) >
                     static_cast<uint64_t>(b.value);
            break;
          default:
            result = static_cast<uint64_t>(a.value) >=
                     static_cast<uint64_t>(b.value);
            break;
        }
        return LatticeValue::constant(result ? 1 : 0);
    }

    void
    visit(const Instr &instr)
    {
        switch (instr.opcode()) {
          case Opcode::Phi: {
            LatticeValue merged; // Top
            for (size_t i = 0; i < instr.numOperands(); ++i) {
                const BasicBlock *pred = instr.blockOperands()[i];
                if (!edgeExecutable(pred, instr.parent()))
                    continue;
                LatticeValue incoming =
                    operandLattice(instr.operand(i));
                if (incoming.isBottom()) {
                    merged = LatticeValue::bottom();
                    break;
                }
                if (incoming.isTop())
                    continue;
                if (merged.isTop()) {
                    merged = incoming;
                } else if (merged.isConst() &&
                           merged.value != incoming.value) {
                    merged = LatticeValue::bottom();
                    break;
                }
            }
            if (instr.type().isPtr())
                merged = LatticeValue::bottom();
            raise(&instr, merged);
            break;
          }
          case Opcode::Bin:
            raise(&instr, evalBin(instr, operandLattice(instr.operand(0)),
                                  operandLattice(instr.operand(1))));
            break;
          case Opcode::Cmp:
            raise(&instr, evalCmp(instr, operandLattice(instr.operand(0)),
                                  operandLattice(instr.operand(1))));
            break;
          case Opcode::Cast: {
            LatticeValue sub = operandLattice(instr.operand(0));
            if (sub.isConst()) {
                IrType to = instr.type();
                raise(&instr, LatticeValue::constant(
                                  wrapInt(sub.value, to.bits,
                                          to.isSigned)));
            } else if (sub.isBottom()) {
                raise(&instr, LatticeValue::bottom());
            }
            break;
          }
          case Opcode::Freeze: {
            LatticeValue sub = operandLattice(instr.operand(0));
            if (config_->foldFreezeOfConstant) {
                raise(&instr, sub);
            } else {
                // Opaque: never a known constant.
                raise(&instr, LatticeValue::bottom());
            }
            break;
          }
          case Opcode::Select: {
            LatticeValue cond = operandLattice(instr.operand(0));
            if (instr.type().isPtr()) {
                raise(&instr, LatticeValue::bottom());
                break;
            }
            if (cond.isConst()) {
                raise(&instr, operandLattice(instr.operand(
                                  cond.value != 0 ? 1 : 2)));
            } else if (cond.isBottom()) {
                LatticeValue a = operandLattice(instr.operand(1));
                LatticeValue b = operandLattice(instr.operand(2));
                if (a.isConst() && b.isConst() && a.value == b.value)
                    raise(&instr, a);
                else if (a.isBottom() || b.isBottom() ||
                         (a.isConst() && b.isConst()))
                    raise(&instr, LatticeValue::bottom());
            }
            break;
          }
          case Opcode::Load:
          case Opcode::Call:
          case Opcode::Alloca:
          case Opcode::Gep:
            if (!instr.type().isVoid())
                raise(&instr, LatticeValue::bottom());
            break;
          case Opcode::Br:
            markEdge(instr.parent(), instr.blockOperands()[0]);
            break;
          case Opcode::CondBr: {
            LatticeValue cond = operandLattice(instr.operand(0));
            if (cond.isConst()) {
                markEdge(instr.parent(),
                         instr.blockOperands()[cond.value != 0 ? 0 : 1]);
            } else if (cond.isBottom()) {
                markEdge(instr.parent(), instr.blockOperands()[0]);
                markEdge(instr.parent(), instr.blockOperands()[1]);
            }
            break;
          }
          case Opcode::Switch: {
            LatticeValue selector = operandLattice(instr.operand(0));
            if (selector.isConst()) {
                const BasicBlock *target = instr.blockOperands()[0];
                for (size_t i = 0; i < instr.caseValues.size(); ++i) {
                    if (instr.caseValues[i] == selector.value) {
                        target = instr.blockOperands()[i + 1];
                        break;
                    }
                }
                markEdge(instr.parent(), target);
            } else if (selector.isBottom()) {
                for (BasicBlock *succ : instr.blockOperands())
                    markEdge(instr.parent(), succ);
            }
            break;
          }
          case Opcode::Store:
          case Opcode::Ret:
          case Opcode::Unreachable:
            break;
        }
    }

    bool
    runOnFunction(Function &fn, Module &module)
    {
        // Flat side tables: the lattice is indexed by value id (only
        // instructions are ever stored — constants, globals, and
        // params resolve directly in operandLattice), executability by
        // block index. SCCP is a monotone framework, so the fixpoint
        // is unique regardless of worklist order.
        lattice_.assign(module.valueIdBound(), LatticeValue{});
        executableSuccs_.assign(fn.numBlocks(), {});
        executableBlocks_.assign(fn.numBlocks(), 0);
        ssaWorklist_.clear();
        blockWorklist_.clear();

        executableBlocks_[fn.entry()->indexInFn()] = 1;
        blockWorklist_.push_back(fn.entry());

        while (!blockWorklist_.empty() || !ssaWorklist_.empty()) {
            while (!blockWorklist_.empty()) {
                const BasicBlock *block = blockWorklist_.back();
                blockWorklist_.pop_back();
                for (const auto &instr : block->instrs())
                    visit(*instr);
            }
            while (!ssaWorklist_.empty()) {
                const Value *value = ssaWorklist_.back();
                ssaWorklist_.pop_back();
                for (const Instr *user : value->users()) {
                    if (executableBlocks_[user->parent()->indexInFn()])
                        visit(*user);
                }
            }
        }

        // Detail remarks: a marker call in a block the solver proved
        // non-executable is dead — SimplifyCFG will do the mechanical
        // deletion later, but SCCP supplied the proof.
        if (ctx_ && ctx_->wantRemarks()) {
            for (const auto &block : fn.blocks()) {
                if (executableBlocks_[block->indexInFn()])
                    continue;
                for (const auto &instr : block->instrs()) {
                    if (instr->opcode() != Opcode::Call)
                        continue;
                    if (auto index = support::markerIndex(
                            instr->callee->name())) {
                        ctx_->remark(
                            support::RemarkKind::MarkerProvedDead,
                            name(), *index,
                            "block '" + block->name() + "' of '" +
                                fn.name() +
                                "' proved non-executable");
                    }
                }
            }
        }

        // Rewrite proven constants.
        bool changed = false;
        for (const auto &block : fn.blocks()) {
            for (size_t i = 0; i < block->size();) {
                Instr *instr = block->instrs()[i].get();
                LatticeValue proved = lattice_[instr->id()];
                if (proved.isConst() && instr->type().isInt() &&
                    !instr->hasSideEffects()) {
                    instr->replaceAllUsesWith(
                        module.constant(instr->type(), proved.value));
                    if (!instr->hasUsers()) {
                        block->erase(instr);
                        changed = true;
                        continue;
                    }
                }
                ++i;
            }
        }
        return changed;
    }

    const PassConfig *config_ = nullptr;
    PassContext *ctx_ = nullptr;
    std::vector<LatticeValue> lattice_;
    std::vector<support::SmallVector<const BasicBlock *, 2>>
        executableSuccs_;
    std::vector<unsigned char> executableBlocks_;
    std::vector<const Value *> ssaWorklist_;
    std::vector<const BasicBlock *> blockWorklist_;
};

} // namespace

std::unique_ptr<Pass>
createSccpPass()
{
    return std::make_unique<Sccp>();
}

} // namespace dce::opt
