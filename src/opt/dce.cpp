/**
 * @file
 * Instruction-level dead code elimination: delete instructions whose
 * results are unused and whose execution has no side effects (loads
 * cannot trap in MiniC, so unused loads die too). Works back-to-front
 * with a worklist so whole dead expression trees disappear in one run.
 */
#include <vector>

#include "opt/pass.hpp"
#include "support/markers.hpp"

namespace dce::opt {

using ir::Instr;
using ir::Module;
using ir::Opcode;

namespace {

bool
isTriviallyDead(const Instr &instr)
{
    if (instr.hasUsers())
        return false;
    switch (instr.opcode()) {
      case Opcode::Store:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Switch:
      case Opcode::Unreachable:
        return false;
      default:
        return true;
    }
}

class Dce : public Pass {
  public:
    std::string name() const override { return "dce"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.instructionDce)
            return false;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            for (const auto &block : fn->blocks()) {
                // Deleting an instruction can make its operands dead;
                // sweep until a pass over the block changes nothing.
                bool block_changed = true;
                while (block_changed) {
                    block_changed = false;
                    for (size_t i = block->size(); i-- > 0;) {
                        Instr *instr = block->instrs()[i].get();
                        if (isTriviallyDead(*instr)) {
                            // Defensive: isTriviallyDead never admits
                            // calls today, but if that ever changes a
                            // silently vanishing marker would corrupt
                            // the attribution study.
                            if (ctx.wantRemarks() &&
                                instr->opcode() == Opcode::Call) {
                                if (auto index = support::markerIndex(
                                        instr->callee->name())) {
                                    ctx.remark(
                                        support::RemarkKind::
                                            MarkerCallRemoved,
                                        name(), *index,
                                        "trivially dead marker call "
                                        "erased");
                                }
                            }
                            block->erase(instr);
                            block_changed = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createDcePass()
{
    return std::make_unique<Dce>();
}

} // namespace dce::opt
