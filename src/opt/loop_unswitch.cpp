/**
 * @file
 * Loop unswitching, preceded by a mini-LICM that hoists clobber-free
 * loads of loop-invariant addresses to the preheader (real compilers
 * run LICM first too; without it no load-based condition is ever
 * loop-invariant as an SSA value).
 *
 * Unswitching duplicates the loop: the preheader branches on the
 * invariant condition and each copy runs with the branch decided.
 *
 * R1 `unswitchInsertsFreeze`: the hoisted condition is wrapped in a
 * freeze, exactly like LLVM >= 12's SimpleLoopUnswitch. Combined with
 * constant folding that refuses to look through freeze, this is the
 * paper's Listing 7 / 8a regression: -O3 (with unswitch) leaves dead
 * calls that -O2 (without) eliminates.
 */
#include <vector>

#include "ir/cfg.hpp"
#include "ir/clone.hpp"
#include "ir/dominators.hpp"
#include "ir/loop_info.hpp"
#include "opt/alias.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CloneMap;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Loop;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class LoopUnswitch : public Pass {
  public:
    std::string name() const override { return "loopunswitch"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.loopUnswitch)
            return false;
        config_ = &config;
        module_ = &module;
        ctx_ = &ctx;
        escape_ = std::make_unique<EscapeInfo>(module);
        summary_ = std::make_unique<MemorySummary>(module, *escape_);
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            // One unswitch per function per run keeps growth bounded;
            // pipeline iteration picks up the rest.
            changed |= licmLoads(*fn);
            changed |= unswitchOne(*fn);
        }
        escape_.reset();
        summary_.reset();
        ctx_ = nullptr;
        return changed;
    }

  private:
    bool
    definedInLoop(const Value *value, const Loop &loop) const
    {
        if (!value->isInstruction())
            return false;
        return loop.contains(
            static_cast<const Instr *>(value)->parent());
    }

    /** Hoist loads of invariant, un-clobbered addresses into loop
     * preheaders. */
    bool
    licmLoads(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        ir::LoopInfo loop_info(fn, domtree);
        auto preds = ir::predecessorMap(fn);
        bool changed = false;
        for (const auto &loop : loop_info.loops()) {
            BasicBlock *preheader = loop->preheader(preds);
            if (!preheader)
                continue;
            // Collect loop memory effects once.
            std::vector<const Instr *> stores;
            std::vector<const Instr *> calls;
            for (BasicBlock *block : loop->blocks) {
                for (const auto &instr : block->instrs()) {
                    if (instr->opcode() == Opcode::Store)
                        stores.push_back(instr.get());
                    else if (instr->opcode() == Opcode::Call)
                        calls.push_back(instr.get());
                }
            }
            for (BasicBlock *block : loop->blocks) {
                for (size_t i = 0; i < block->size();) {
                    Instr *load = block->instrs()[i].get();
                    if (load->opcode() != Opcode::Load ||
                        definedInLoop(load->operand(0), *loop) ||
                        clobbered(load->operand(0), stores, calls)) {
                        ++i;
                        continue;
                    }
                    // Hoist: move before the preheader terminator.
                    ir::InstrPtr owned = block->detach(load);
                    preheader->insertBefore(preheader->size() - 1,
                                            std::move(owned));
                    changed = true;
                    // Do not advance i: the next instr shifted down.
                }
            }
        }
        return changed;
    }

    bool
    clobbered(const Value *ptr, const std::vector<const Instr *> &stores,
              const std::vector<const Instr *> &calls) const
    {
        for (const Instr *store : stores) {
            if (alias(store->operand(1), ptr) != AliasResult::NoAlias)
                return true;
        }
        PtrBase base = resolvePtrBase(ptr);
        for (const Instr *call : calls) {
            if (base.kind == PtrBase::Kind::Global) {
                const auto *g =
                    static_cast<const ir::GlobalVar *>(base.object);
                if (summary_->mayWrite(call->callee, g) ||
                    (escape_->escapes(g) &&
                     summary_->writesUnknown(call->callee))) {
                    return true;
                }
            } else if (base.kind == PtrBase::Kind::Alloca) {
                if (escape_->escapes(base.object) &&
                    summary_->writesUnknown(call->callee)) {
                    return true;
                }
            } else {
                return true;
            }
        }
        return false;
    }

    /** Any value defined inside @p loop used outside it? */
    bool
    valuesEscapeLoop(const Loop &loop) const
    {
        for (BasicBlock *block : loop.blocks) {
            for (const auto &instr : block->instrs()) {
                for (const Instr *user : instr->users()) {
                    if (!loop.contains(user->parent()))
                        return true;
                }
            }
        }
        return false;
    }

    bool
    unswitchOne(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        ir::LoopInfo loop_info(fn, domtree);
        auto preds = ir::predecessorMap(fn);

        for (const auto &loop : loop_info.loops()) {
            if (loop->blocks.size() > 40)
                continue; // growth guard
            BasicBlock *preheader = loop->preheader(preds);
            if (!preheader || valuesEscapeLoop(*loop))
                continue;

            // Find a conditional branch on a loop-invariant,
            // non-constant condition.
            for (BasicBlock *block : loop->blocks) {
                Instr *term = block->terminator();
                if (!term || term->opcode() != Opcode::CondBr)
                    continue;
                Value *cond = term->operand(0);
                if (cond->isConstant() || definedInLoop(cond, *loop))
                    continue;
                if (term->blockOperands()[0] ==
                    term->blockOperands()[1]) {
                    continue;
                }
                applyUnswitch(fn, *loop, preheader, block, term, cond);
                return true;
            }
        }
        return false;
    }

    void
    applyUnswitch(Function &fn, const Loop &loop, BasicBlock *preheader,
                  BasicBlock *branch_block, Instr *term, Value *cond)
    {
        std::vector<BasicBlock *> region(loop.blocks.begin(),
                                         loop.blocks.end());
        CloneMap map =
            ir::cloneRegion(region, fn, *module_, CloneMap{}, ".us");

        // Exit blocks gain one edge per cloned exiting block; register
        // their phi incomings *before* the terminators are rewritten
        // (rewriting drops entries for the decided-away edges). The
        // incoming values are outside-defined (valuesEscapeLoop
        // checked), so the clone contributes the same value.
        for (BasicBlock *exiting : region) {
            BasicBlock *clone_exiting = map.blocks.at(exiting);
            for (BasicBlock *succ : exiting->successors()) {
                if (loop.contains(succ))
                    continue;
                for (Instr *phi : succ->phis()) {
                    Value *via = phi->incomingValueFor(exiting);
                    if (via)
                        phi->addIncoming(via, clone_exiting);
                }
            }
        }

        BasicBlock *true_succ = term->blockOperands()[0];
        BasicBlock *false_succ = term->blockOperands()[1];

        // Original copy: condition decided true.
        rewriteToUnconditional(branch_block, term, true_succ,
                               false_succ);
        // Clone: condition decided false.
        BasicBlock *clone_branch = map.blocks.at(branch_block);
        Instr *clone_term = clone_branch->terminator();
        BasicBlock *clone_true = clone_term->blockOperands()[0];
        BasicBlock *clone_false = clone_term->blockOperands()[1];
        rewriteToUnconditional(clone_branch, clone_term, clone_false,
                               clone_true);

        // Preheader now dispatches on the (possibly frozen) condition.
        Instr *pre_term = preheader->terminator();
        BasicBlock *header = pre_term->blockOperands()[0];
        BasicBlock *clone_header = map.blocks.at(header);
        preheader->erase(pre_term);
        Value *dispatch = cond;
        if (config_->unswitchInsertsFreeze) {
            auto freeze = module_->newInstr(Opcode::Freeze,
                                                  cond->type());
            freeze->addOperand(cond);
            freeze->setId(module_->nextValueId());
            dispatch = preheader->append(std::move(freeze));
        }
        Value *int_dispatch = dispatch;
        if (dispatch->type().isPtr()) {
            auto cmp = module_->newInstr(Opcode::Cmp,
                                               IrType::i32());
            cmp->cmpPred = ir::CmpPred::Ne;
            cmp->addOperand(dispatch);
            cmp->addOperand(module_->constant(IrType::ptrTy(), 0));
            cmp->setId(module_->nextValueId());
            int_dispatch = preheader->append(std::move(cmp));
        }
        auto condbr = module_->newInstr(Opcode::CondBr,
                                              IrType::voidTy());
        condbr->addOperand(int_dispatch);
        condbr->addBlockOperand(header);
        condbr->addBlockOperand(clone_header);
        preheader->append(std::move(condbr));

        if (ctx_ && ctx_->wantRemarks()) {
            ctx_->remark(support::RemarkKind::Note, name(),
                         support::Remark::kNoMarker,
                         std::string("unswitched loop at '") +
                             header->name() + "' in '" + fn.name() +
                             (config_->unswitchInsertsFreeze
                                  ? "' (condition frozen)"
                                  : "'"));
            reportUnreachableMarkerCalls(fn, name(), *ctx_,
                                         "loop unswitch cleanup");
        }
        ir::removeUnreachableBlocks(fn);
    }

    /** Replace @p term (CondBr) with an unconditional branch to
     * @p kept; @p dropped loses the phi entries for this block. */
    void
    rewriteToUnconditional(BasicBlock *block, Instr *term,
                           BasicBlock *kept, BasicBlock *dropped)
    {
        block->erase(term);
        auto br =
            module_->newInstr(Opcode::Br, IrType::voidTy());
        br->addBlockOperand(kept);
        block->append(std::move(br));
        if (dropped != kept)
            dropped->removePhiIncomingFor(block);
    }

    const PassConfig *config_ = nullptr;
    Module *module_ = nullptr;
    PassContext *ctx_ = nullptr;
    std::unique_ptr<EscapeInfo> escape_;
    std::unique_ptr<MemorySummary> summary_;
};

} // namespace

std::unique_ptr<Pass>
createLoopUnswitchPass()
{
    return std::make_unique<LoopUnswitch>();
}

} // namespace dce::opt
