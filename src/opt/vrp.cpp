/**
 * @file
 * Value-range / correlated value propagation. A dominator-tree walk
 * collects predicate facts from branch edges ("on this path, v == 3",
 * "v != 0", "v < 10") and uses them to (a) substitute known-equal
 * constants into dominated instructions and (b) decide dominated
 * comparisons outright.
 *
 * Engineered knobs (DESIGN.md §6):
 *  - R8 `shiftNonzeroRelation`: from a dominating (x << y) != 0 fact,
 *    also record x != 0 (GCC PR102546 / Listing 9a — GCC was missing
 *    this relation; fixed with 5f9ccf17de7).
 *  - D5/R2 `vrpFoldsRem`: when off, equality facts are not substituted
 *    into Rem instructions — LLVM's constant-range modulo omission
 *    (PR49731 / Listing 8b; fixed with 611a02cce509).
 */
#include <optional>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

/** A predicate fact about an SSA value vs a constant. */
struct Fact {
    const Value *subject = nullptr;
    CmpPred pred = CmpPred::Eq;
    int64_t bound = 0;
};

class Vrp : public Pass {
  public:
    std::string name() const override { return "vrp"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        config_ = &config;
        module_ = &module;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (!fn->isDeclaration())
                changed |= runOnFunction(*fn);
        }
        return changed;
    }

  private:
    /** Facts derived from taking @p term's @p taken_true edge. */
    std::vector<Fact>
    edgeFacts(const Instr &term, bool taken_true) const
    {
        std::vector<Fact> facts;
        if (term.opcode() != Opcode::CondBr)
            return facts;
        const Value *cond = term.operand(0);
        if (!cond->isInstruction())
            return facts;
        const auto *cmp = static_cast<const Instr *>(cond);
        if (cmp->opcode() != Opcode::Cmp ||
            cmp->operand(0)->type().isPtr()) {
            // Branch on a raw integer: v != 0 on the true edge,
            // v == 0 on the false edge.
            if (!cond->type().isPtr()) {
                facts.push_back({cond, taken_true ? CmpPred::Ne
                                                  : CmpPred::Eq,
                                 0});
            }
        } else {
            const Value *lhs = cmp->operand(0);
            const Value *rhs = cmp->operand(1);
            CmpPred pred = cmp->cmpPred;
            if (!taken_true)
                pred = ir::cmpPredInverse(pred);
            if (rhs->isConstant()) {
                facts.push_back(
                    {lhs, pred,
                     static_cast<const Constant *>(rhs)->value()});
            } else if (lhs->isConstant()) {
                facts.push_back(
                    {rhs, ir::cmpPredSwapped(pred),
                     static_cast<const Constant *>(lhs)->value()});
            }
        }

        // R8: (x << y) != 0 implies x != 0 (if x were 0, the shift
        // would be 0 at any amount). Applies to facts from both raw
        // integer branches and comparisons.
        if (config_->shiftNonzeroRelation) {
            for (size_t i = facts.size(); i-- > 0;) {
                const Fact &fact = facts[i];
                if (fact.pred != CmpPred::Ne || fact.bound != 0)
                    continue;
                if (!fact.subject->isInstruction())
                    continue;
                const auto *shift =
                    static_cast<const Instr *>(fact.subject);
                if (shift->opcode() == Opcode::Bin &&
                    shift->binOp == ir::BinOp::Shl) {
                    facts.push_back(
                        {shift->operand(0), CmpPred::Ne, 0});
                }
            }
        }
        return facts;
    }

    /** Try to decide cmp(subject pred bound) from active facts. */
    std::optional<bool>
    decideCmp(const Instr &cmp, const std::vector<Fact> &facts) const
    {
        if (cmp.operand(0)->type().isPtr())
            return std::nullopt;
        const Value *subject;
        CmpPred pred = cmp.cmpPred;
        int64_t bound;
        if (cmp.operand(1)->isConstant()) {
            subject = cmp.operand(0);
            bound =
                static_cast<const Constant *>(cmp.operand(1))->value();
        } else if (cmp.operand(0)->isConstant()) {
            subject = cmp.operand(1);
            pred = ir::cmpPredSwapped(pred);
            bound =
                static_cast<const Constant *>(cmp.operand(0))->value();
        } else {
            return std::nullopt;
        }

        for (const Fact &fact : facts) {
            if (fact.subject != subject)
                continue;
            // Equality facts decide everything.
            if (fact.pred == CmpPred::Eq) {
                int64_t v = fact.bound;
                switch (pred) {
                  case CmpPred::Eq: return v == bound;
                  case CmpPred::Ne: return v != bound;
                  case CmpPred::Slt: return v < bound;
                  case CmpPred::Sle: return v <= bound;
                  case CmpPred::Sgt: return v > bound;
                  case CmpPred::Sge: return v >= bound;
                  case CmpPred::Ult:
                    return static_cast<uint64_t>(v) <
                           static_cast<uint64_t>(bound);
                  case CmpPred::Ule:
                    return static_cast<uint64_t>(v) <=
                           static_cast<uint64_t>(bound);
                  case CmpPred::Ugt:
                    return static_cast<uint64_t>(v) >
                           static_cast<uint64_t>(bound);
                  case CmpPred::Uge:
                    return static_cast<uint64_t>(v) >=
                           static_cast<uint64_t>(bound);
                }
            }
            // Nonzero facts decide zero comparisons.
            if (fact.pred == CmpPred::Ne && fact.bound == 0 &&
                bound == 0) {
                if (pred == CmpPred::Eq)
                    return false;
                if (pred == CmpPred::Ne)
                    return true;
            }
            // Matching inequality facts decide identical predicates.
            if (fact.pred == pred && fact.bound == bound)
                return true;
            if (fact.pred == ir::cmpPredInverse(pred) &&
                fact.bound == bound) {
                return false;
            }
        }
        return std::nullopt;
    }

    bool
    runOnFunction(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        auto preds = ir::predecessorMap(fn);
        std::unordered_map<const BasicBlock *,
                           std::vector<BasicBlock *>>
            dom_children;
        for (BasicBlock *block : domtree.rpo()) {
            if (const BasicBlock *parent = domtree.idom(block))
                dom_children[parent].push_back(block);
        }

        bool changed = false;
        struct Frame {
            BasicBlock *block;
            size_t fact_count; ///< facts_ size to restore on exit
            bool entering;
        };
        std::vector<Frame> stack{{fn.entry(), 0, true}};
        while (!stack.empty()) {
            Frame frame = stack.back();
            stack.pop_back();
            if (!frame.entering) {
                facts_.resize(frame.fact_count);
                continue;
            }
            size_t saved = facts_.size();
            stack.push_back({frame.block, saved, false});

            // Facts from the dominating edge: the block's single CFG
            // predecessor branching here conditionally.
            BasicBlock *block = frame.block;
            const auto &block_preds = preds.at(block);
            if (block_preds.size() == 1) {
                BasicBlock *pred = block_preds[0];
                Instr *term = pred->terminator();
                if (term && term->opcode() == Opcode::CondBr &&
                    term->blockOperands()[0] !=
                        term->blockOperands()[1]) {
                    bool taken_true = term->blockOperands()[0] == block;
                    for (Fact fact : edgeFacts(*term, taken_true))
                        facts_.push_back(fact);
                }
            }

            changed |= applyFacts(*block);

            auto children = dom_children.find(block);
            if (children != dom_children.end()) {
                for (BasicBlock *child : children->second)
                    stack.push_back({child, 0, true});
            }
        }
        facts_.clear();
        return changed;
    }

    bool
    applyFacts(BasicBlock &block)
    {
        bool changed = false;
        for (size_t i = 0; i < block.size();) {
            Instr *instr = block.instrs()[i].get();
            // Decide comparisons.
            if (instr->opcode() == Opcode::Cmp) {
                if (std::optional<bool> decided =
                        decideCmp(*instr, facts_)) {
                    instr->replaceAllUsesWith(module_->constant(
                        IrType::i32(), *decided ? 1 : 0));
                    block.erase(instr);
                    changed = true;
                    continue;
                }
            }
            // Substitute known-equal constants into operands.
            if (instr->opcode() != Opcode::Phi) {
                bool is_rem = instr->opcode() == Opcode::Bin &&
                              instr->binOp == ir::BinOp::Rem;
                if (!is_rem || config_->vrpFoldsRem) {
                    for (size_t op = 0; op < instr->numOperands();
                         ++op) {
                        Value *operand = instr->operand(op);
                        if (operand->isConstant() ||
                            operand->type().isPtr()) {
                            continue;
                        }
                        for (const Fact &fact : facts_) {
                            if (fact.subject == operand &&
                                fact.pred == CmpPred::Eq) {
                                instr->setOperand(
                                    op, module_->constant(
                                            operand->type(),
                                            fact.bound));
                                changed = true;
                                break;
                            }
                        }
                    }
                }
            }
            ++i;
        }
        return changed;
    }

    const PassConfig *config_ = nullptr;
    Module *module_ = nullptr;
    std::vector<Fact> facts_;
};

} // namespace

std::unique_ptr<Pass>
createVrpPass()
{
    return std::make_unique<Vrp>();
}

} // namespace dce::opt
