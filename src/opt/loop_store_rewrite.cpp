/**
 * @file
 * "Vectorizer"-style loop store rewrite: a counted loop whose body
 * only stores loop-invariant values at induction-indexed addresses is
 * replaced by straight-line stores in the preheader (the loop-idiom /
 * vectorization family of transforms).
 *
 * R3 `loopRewriteInsertsFreeze`: the regressed variant launders each
 * stored value through a freeze — modelling GCC's vectorizer rewriting
 * pointer data through `unsigned long`, which blocked the constant
 * folding that -O1 performed (Listing 9e / PR99776, fixed with
 * 7d6bb80931b). With the flag off the rewrite is clean and the
 * downstream folds work.
 */
#include <optional>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "ir/loop_info.hpp"
#include "opt/pass.hpp"
#include "support/ints.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Loop;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class LoopStoreRewrite : public Pass {
  public:
    std::string name() const override { return "loopstorerewrite"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.loopStoreRewrite)
            return false;
        config_ = &config;
        module_ = &module;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            unsigned budget = 8;
            while (budget-- > 0 && rewriteOne(*fn))
                changed = true;
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    bool
    rewriteOne(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        ir::LoopInfo loop_info(fn, domtree);
        auto preds = ir::predecessorMap(fn);
        for (const auto &loop : loop_info.loops()) {
            if (tryRewrite(fn, *loop, preds))
                return true;
        }
        return false;
    }

    bool
    definedInLoop(const Value *value, const Loop &loop) const
    {
        return value->isInstruction() &&
               loop.contains(
                   static_cast<const Instr *>(value)->parent());
    }

    bool
    tryRewrite(Function &fn, const Loop &loop,
               const ir::PredecessorMap &preds)
    {
        // Shape: two blocks (header + body/latch), counted by a phi.
        if (loop.blocks.size() != 2 || loop.latches.size() != 1 ||
            !loop.subloops.empty()) {
            return false;
        }
        BasicBlock *header = loop.header;
        BasicBlock *body = loop.latches[0];
        BasicBlock *preheader = loop.preheader(preds);
        if (!preheader || body == header)
            return false;

        Instr *term = header->terminator();
        if (!term || term->opcode() != Opcode::CondBr)
            return false;
        BasicBlock *exit;
        bool exit_on_true;
        if (term->blockOperands()[0] == body &&
            !loop.contains(term->blockOperands()[1])) {
            exit = term->blockOperands()[1];
            exit_on_true = false;
        } else if (term->blockOperands()[1] == body &&
                   !loop.contains(term->blockOperands()[0])) {
            exit = term->blockOperands()[0];
            exit_on_true = true;
        } else {
            return false;
        }

        // Header: phis + cmp + condbr only.
        Instr *cmp = nullptr;
        for (const auto &instr : header->instrs()) {
            if (instr->opcode() == Opcode::Phi || instr.get() == term)
                continue;
            if (instr->opcode() == Opcode::Cmp && !cmp &&
                term->operand(0) == instr.get()) {
                cmp = instr.get();
                continue;
            }
            return false;
        }
        if (!cmp || !cmp->operand(1)->isConstant())
            return false;
        Instr *phi = cmp->operand(0)->isInstruction()
                         ? static_cast<Instr *>(cmp->operand(0))
                         : nullptr;
        if (!phi || phi->opcode() != Opcode::Phi ||
            phi->parent() != header || header->phis().size() != 1) {
            return false;
        }

        // Body: geps on invariant bases indexed by the phi or
        // constants, stores of invariant values, one induction update,
        // and the back edge.
        Instr *step_instr = nullptr;
        std::vector<Instr *> stores;
        for (const auto &instr : body->instrs()) {
            switch (instr->opcode()) {
              case Opcode::Gep: {
                Value *base = instr->operand(0);
                Value *index = instr->operand(1);
                if (definedInLoop(base, loop))
                    return false;
                if (index != phi && !index->isConstant()) {
                    // Allow casts of the phi as the index.
                    if (!(index->isInstruction() &&
                          static_cast<Instr *>(index)->opcode() ==
                              Opcode::Cast &&
                          static_cast<Instr *>(index)->operand(0) ==
                              phi)) {
                        return false;
                    }
                }
                break;
              }
              case Opcode::Cast:
                if (instr->operand(0) != phi)
                    return false;
                break;
              case Opcode::Store: {
                Value *value = instr->operand(0);
                Value *ptr = instr->operand(1);
                if (definedInLoop(value, loop))
                    return false;
                // Pointer must be a gep in this body or invariant.
                if (definedInLoop(ptr, loop) &&
                    (!ptr->isInstruction() ||
                     static_cast<Instr *>(ptr)->opcode() !=
                         Opcode::Gep)) {
                    return false;
                }
                stores.push_back(instr.get());
                break;
              }
              case Opcode::Bin:
                if (step_instr || instr->operand(0) != phi ||
                    !instr->operand(1)->isConstant() ||
                    (instr->binOp != ir::BinOp::Add &&
                     instr->binOp != ir::BinOp::Sub)) {
                    return false;
                }
                step_instr = instr.get();
                break;
              case Opcode::Br:
                break;
              case Opcode::Call:
                // Opaque argument-less calls (optimization markers!)
                // are preserved per iteration by the rewrite; anything
                // with arguments or a body is out of scope.
                if (!instr->callee->isDeclaration() ||
                    instr->numOperands() != 0 ||
                    !instr->type().isVoid()) {
                    return false;
                }
                break;
              default:
                return false;
            }
        }
        if (!step_instr || stores.empty())
            return false;
        if (phi->incomingValueFor(body) != step_instr)
            return false;
        Value *init = phi->incomingValueFor(preheader);
        if (!init || !init->isConstant())
            return false;

        // No loop value may be used outside.
        for (BasicBlock *block : loop.blocks) {
            for (const auto &instr : block->instrs()) {
                for (const Instr *user : instr->users()) {
                    if (!loop.contains(user->parent()))
                        return false;
                }
            }
        }
        if (!exit->phis().empty())
            return false;

        // Simulate the trip count.
        IrType type = phi->type();
        int64_t value = static_cast<Constant *>(init)->value();
        int64_t bound =
            static_cast<Constant *>(cmp->operand(1))->value();
        int64_t step =
            static_cast<Constant *>(step_instr->operand(1))->value();
        std::vector<int64_t> iteration_values;
        for (;;) {
            bool cond = evalPred(cmp->cmpPred, value, bound);
            if (exit_on_true ? cond : !cond)
                break;
            iteration_values.push_back(value);
            if (iteration_values.size() > 16)
                return false;
            value = step_instr->binOp == ir::BinOp::Add
                        ? addInt(value, step, type.bits, type.isSigned)
                        : subInt(value, step, type.bits, type.isSigned);
        }

        emitStraightLine(*preheader, *body, iteration_values, stores,
                         phi, exit, header, fn);
        return true;
    }

    static bool
    evalPred(CmpPred pred, int64_t a, int64_t b)
    {
        switch (pred) {
          case CmpPred::Eq: return a == b;
          case CmpPred::Ne: return a != b;
          case CmpPred::Slt: return a < b;
          case CmpPred::Sle: return a <= b;
          case CmpPred::Sgt: return a > b;
          case CmpPred::Sge: return a >= b;
          case CmpPred::Ult:
            return static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
          case CmpPred::Ule:
            return static_cast<uint64_t>(a) <= static_cast<uint64_t>(b);
          case CmpPred::Ugt:
            return static_cast<uint64_t>(a) > static_cast<uint64_t>(b);
          case CmpPred::Uge:
            return static_cast<uint64_t>(a) >= static_cast<uint64_t>(b);
        }
        return false;
    }

    void
    emitStraightLine(BasicBlock &preheader, BasicBlock &body,
                     const std::vector<int64_t> &iteration_values,
                     const std::vector<Instr *> &stores, Instr *phi,
                     BasicBlock *exit, BasicBlock *header, Function &fn)
    {
        size_t insert_at = preheader.size() - 1; // before terminator
        auto emit = [&](ir::InstrPtr instr) -> Instr * {
            Instr *placed =
                preheader.insertBefore(insert_at++, std::move(instr));
            return placed;
        };

        for (int64_t iteration : iteration_values) {
            // Replay the body's stores and opaque calls in order, so
            // the observable call trace is preserved exactly.
            for (const auto &owned : body.instrs()) {
                Instr *instr = owned.get();
                if (instr->opcode() == Opcode::Call) {
                    auto call = module_->newInstr(
                        Opcode::Call, IrType::voidTy());
                    call->callee = instr->callee;
                    emit(std::move(call));
                    continue;
                }
                if (instr->opcode() != Opcode::Store)
                    continue;
                Instr *store = instr;
                Value *ptr = store->operand(1);
                Value *concrete_ptr = ptr;
                if (ptr->isInstruction() &&
                    static_cast<Instr *>(ptr)->parent() == &body) {
                    // Clone the gep with a concrete index.
                    Instr *gep = static_cast<Instr *>(ptr);
                    Value *index = gep->operand(1);
                    Value *concrete_index;
                    if (index == phi) {
                        concrete_index = module_->constant(
                            phi->type(), iteration);
                    } else if (index->isConstant()) {
                        concrete_index = index;
                    } else {
                        // cast(phi): apply the cast to the concrete
                        // value.
                        Instr *cast = static_cast<Instr *>(index);
                        IrType to = cast->type();
                        concrete_index = module_->constant(
                            to, wrapInt(iteration, to.bits,
                                        to.isSigned));
                    }
                    auto cloned = module_->newInstr(
                        Opcode::Gep, IrType::ptrTy());
                    cloned->addOperand(gep->operand(0));
                    cloned->addOperand(concrete_index);
                    cloned->gepElemSize = gep->gepElemSize;
                    cloned->setId(module_->nextValueId());
                    concrete_ptr = emit(std::move(cloned));
                }
                Value *stored = store->operand(0);
                if (config_->loopRewriteInsertsFreeze) {
                    auto freeze = module_->newInstr(
                        Opcode::Freeze, stored->type());
                    freeze->addOperand(stored);
                    freeze->setId(module_->nextValueId());
                    stored = emit(std::move(freeze));
                }
                auto new_store = module_->newInstr(
                    Opcode::Store, IrType::voidTy());
                new_store->addOperand(stored);
                new_store->addOperand(concrete_ptr);
                emit(std::move(new_store));
            }
        }
        (void)stores;

        // Jump straight to the exit; the loop becomes unreachable.
        preheader.terminator()->replaceSuccessor(header, exit);
        if (ctx_ && ctx_->wantRemarks()) {
            reportUnreachableMarkerCalls(fn, name(), *ctx_,
                                         "loop rewritten to "
                                         "straight-line stores");
        }
        ir::removeUnreachableBlocks(fn);
    }

    const PassConfig *config_ = nullptr;
    Module *module_ = nullptr;
    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createLoopStoreRewritePass()
{
    return std::make_unique<LoopStoreRewrite>();
}

} // namespace dce::opt
