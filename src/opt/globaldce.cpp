/**
 * @file
 * Global DCE: delete internal functions with no remaining call sites
 * and internal globals with no remaining references. An uncalled
 * internal function is still emitted by the backend, so any markers in
 * it would read as "missed" — which is exactly GCC's uncleaned IPA
 * clone bug (Listing 9b / PR100034) that the `globalDce` knob turns
 * back on and off.
 */
#include <unordered_set>

#include "opt/pass.hpp"
#include "support/markers.hpp"

namespace dce::opt {

using ir::Function;
using ir::GlobalVar;
using ir::Instr;
using ir::Module;
using ir::Opcode;

namespace {

class GlobalDce : public Pass {
  public:
    std::string name() const override { return "globaldce"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.globalDce)
            return false;
        bool changed = false;
        // Deleting one function can orphan another; iterate.
        bool progress = true;
        while (progress) {
            progress = false;

            std::unordered_set<const Function *> called;
            for (const auto &fn : module.functions()) {
                for (const auto &block : fn->blocks()) {
                    for (const auto &instr : block->instrs()) {
                        if (instr->opcode() == Opcode::Call)
                            called.insert(instr->callee);
                    }
                }
            }
            for (const auto &fn : module.functions()) {
                if (!fn->isInternal() || fn->isDeclaration())
                    continue;
                if (fn->name() == "main" || called.count(fn.get()) ||
                    fn->noDce()) {
                    continue;
                }
                if (ctx.wantRemarks())
                    reportErasedMarkerCalls(*fn, ctx);
                module.eraseFunction(fn.get());
                progress = true;
                changed = true;
                break; // container mutated; rescan
            }
            if (progress)
                continue;

            std::unordered_set<const GlobalVar *> referenced;
            for (const auto &global : module.globals()) {
                for (const ir::GlobalInit &init : global->init) {
                    if (init.isAddress())
                        referenced.insert(init.base);
                }
            }
            for (const auto &global : module.globals()) {
                if (!global->isInternal() || global->hasUsers() ||
                    referenced.count(global.get())) {
                    continue;
                }
                module.eraseGlobal(global.get());
                progress = true;
                changed = true;
                break;
            }
        }
        return changed;
    }

  private:
    /** Detail remarks for marker calls inside an uncalled internal
     * function about to be erased — these calls vanish with it. */
    void
    reportErasedMarkerCalls(const Function &fn, PassContext &ctx)
    {
        for (const auto &block : fn.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != Opcode::Call)
                    continue;
                auto index =
                    support::markerIndex(instr->callee->name());
                if (!index)
                    continue;
                ctx.remark(support::RemarkKind::MarkerCallRemoved,
                           name(), *index,
                           "call in erased uncalled function '" +
                               fn.name() + "'");
            }
        }
    }
};

} // namespace

std::unique_ptr<Pass>
createGlobalDcePass()
{
    return std::make_unique<GlobalDce>();
}

} // namespace dce::opt
