/**
 * @file
 * Jump threading: when a block's conditional branch depends on a phi
 * with constant incomings, predecessors contributing those constants
 * can jump straight to the decided target. The block stays behind for
 * the remaining (non-constant) predecessors.
 *
 * R4 `threadThroughDeadPhis`: the regressed variant wraps the residual
 * branch condition in a freeze when it threads — modelling the freeze
 * insertion of modern jump threading that subsequently blocks constant
 * folding of the residual branch (the mechanism behind Listing 9d's
 * leftover dead code at -O3).
 */
#include "ir/cfg.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class JumpThreading : public Pass {
  public:
    std::string name() const override { return "jumpthreading"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.jumpThreading)
            return false;
        config_ = &config;
        module_ = &module;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            while (threadOne(*fn))
                changed = true;
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    /** Decide the branch for incoming constant @p value; returns the
     * taken successor of @p term, which must be a CondBr whose
     * condition is @p phi, or cmp(phi, const). */
    BasicBlock *
    decide(const Instr &term, const Instr &phi, int64_t value) const
    {
        Value *cond = term.operand(0);
        bool truth;
        if (cond == &phi) {
            truth = value != 0;
        } else {
            const auto *cmp = static_cast<const Instr *>(cond);
            // The phi may sit on either side of the comparison; the
            // constant is the other operand.
            bool phi_is_lhs = cmp->operand(0) == &phi;
            int64_t other = static_cast<const Constant *>(
                                cmp->operand(phi_is_lhs ? 1 : 0))
                                ->value();
            int64_t lhs = phi_is_lhs ? value : other;
            int64_t rhs = phi_is_lhs ? other : value;
            switch (cmp->cmpPred) {
              case CmpPred::Eq: truth = lhs == rhs; break;
              case CmpPred::Ne: truth = lhs != rhs; break;
              case CmpPred::Slt: truth = lhs < rhs; break;
              case CmpPred::Sle: truth = lhs <= rhs; break;
              case CmpPred::Sgt: truth = lhs > rhs; break;
              case CmpPred::Sge: truth = lhs >= rhs; break;
              case CmpPred::Ult:
                truth = static_cast<uint64_t>(lhs) <
                        static_cast<uint64_t>(rhs);
                break;
              case CmpPred::Ule:
                truth = static_cast<uint64_t>(lhs) <=
                        static_cast<uint64_t>(rhs);
                break;
              case CmpPred::Ugt:
                truth = static_cast<uint64_t>(lhs) >
                        static_cast<uint64_t>(rhs);
                break;
              default:
                truth = static_cast<uint64_t>(lhs) >=
                        static_cast<uint64_t>(rhs);
                break;
            }
        }
        return term.blockOperands()[truth ? 0 : 1];
    }

    bool
    threadOne(Function &fn)
    {
        auto preds = ir::predecessorMap(fn);
        for (const auto &owned : fn.blocks()) {
            BasicBlock *block = owned.get();
            Instr *term = block->terminator();
            if (!term || term->opcode() != Opcode::CondBr)
                continue;

            // The threadable shape: condition is a phi of this block,
            // or a single-use cmp(phi, const) defined in this block.
            Value *cond = term->operand(0);
            Instr *phi = nullptr;
            if (cond->isInstruction()) {
                Instr *cond_instr = static_cast<Instr *>(cond);
                if (cond_instr->opcode() == Opcode::Phi &&
                    cond_instr->parent() == block) {
                    phi = cond_instr;
                } else if (cond_instr->opcode() == Opcode::Cmp &&
                           cond_instr->parent() == block) {
                    Instr *maybe_phi = nullptr;
                    if (cond_instr->operand(0)->isInstruction() &&
                        cond_instr->operand(1)->isConstant()) {
                        maybe_phi =
                            static_cast<Instr *>(cond_instr->operand(0));
                    } else if (cond_instr->operand(1)->isInstruction() &&
                               cond_instr->operand(0)->isConstant()) {
                        maybe_phi =
                            static_cast<Instr *>(cond_instr->operand(1));
                    }
                    if (maybe_phi &&
                        maybe_phi->opcode() == Opcode::Phi &&
                        maybe_phi->parent() == block) {
                        phi = maybe_phi;
                    }
                }
            }
            if (!phi || phi->type().isPtr())
                continue;

            // Only thread when the block does nothing else: all
            // instructions must be phis or the condition cmp — anything
            // with effects must execute on the original path.
            bool threadable = true;
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Phi ||
                    instr.get() == term || instr.get() == cond) {
                    continue;
                }
                threadable = false;
                break;
            }
            if (!threadable || block == fn.entry())
                continue;

            // Find a predecessor contributing a constant.
            BasicBlock *from = nullptr;
            int64_t constant_value = 0;
            for (size_t i = 0; i < phi->numOperands(); ++i) {
                if (!phi->operand(i)->isConstant())
                    continue;
                BasicBlock *pred = phi->blockOperands()[i];
                // Multi-edge preds (condbr with both edges here) are
                // rare and fiddly; skip them.
                size_t edge_count = 0;
                for (BasicBlock *succ : pred->successors())
                    edge_count += succ == block ? 1 : 0;
                if (edge_count != 1)
                    continue;
                from = pred;
                constant_value = static_cast<Constant *>(phi->operand(i))
                                     ->value();
                break;
            }
            if (!from)
                continue;
            // Threading a loop header's back edge to itself is not
            // productive; avoid self-edges.
            BasicBlock *target = decide(*term, *phi, constant_value);
            if (target == block || from == block)
                continue;

            // Other phis in `block` would need their `from` values
            // forwarded into `target`'s phis; support the common case
            // where `block` has exactly the branch phi (plus cmp).
            if (block->phis().size() != 1)
                continue;

            // Threading must not skip definitions that the rest of the
            // CFG still needs: every user of the block's own values
            // must live in the block itself (loop-header phis used by
            // the loop body are the classic counter-example).
            bool values_leak = false;
            for (const auto &instr : block->instrs()) {
                for (const Instr *user : instr->users()) {
                    if (user->parent() != block) {
                        values_leak = true;
                        break;
                    }
                }
                if (values_leak)
                    break;
            }
            if (values_leak)
                continue;

            // Every value target's phis receive via `block` must be
            // available in `from`: the branch phi becomes its constant;
            // anything else defined in `block` (the cmp) blocks the
            // thread.
            bool feasible = true;
            for (Instr *target_phi : target->phis()) {
                Value *via = target_phi->incomingValueFor(block);
                if (via == phi)
                    continue;
                if (via && via->isInstruction() &&
                    static_cast<Instr *>(via)->parent() == block) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                continue;

            // Redirect: from now jumps straight to target.
            if (ctx_ && ctx_->wantRemarks()) {
                ctx_->remark(support::RemarkKind::Note, name(),
                             support::Remark::kNoMarker,
                             "threaded '" + from->name() +
                                 "' around '" + block->name() +
                                 "' to '" + target->name() +
                                 "' in '" + fn.name() + "'");
            }
            from->terminator()->replaceSuccessor(block, target);
            // target's phis gain an incoming from `from`, carrying the
            // value they would have received via `block`.
            for (Instr *target_phi : target->phis()) {
                Value *via = target_phi->incomingValueFor(block);
                if (via == phi) {
                    via = module_->constant(phi->type(),
                                            constant_value);
                }
                target_phi->addIncoming(via, from);
            }
            // block loses the pred.
            block->removePhiIncomingFor(from);

            // R4: the residual branch condition gets frozen.
            if (config_->threadThroughDeadPhis &&
                cond->isInstruction() && !phi->operands().empty()) {
                Instr *term_now = block->terminator();
                auto freeze = module_->newInstr(
                    Opcode::Freeze, term_now->operand(0)->type());
                freeze->addOperand(term_now->operand(0));
                freeze->setId(module_->nextValueId());
                Instr *frozen = block->insertBefore(
                    block->indexOf(term_now), std::move(freeze));
                term_now->setOperand(0, frozen);
            }
            return true;
        }
        return false;
    }

    const PassConfig *config_ = nullptr;
    Module *module_ = nullptr;
    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createJumpThreadingPass()
{
    return std::make_unique<JumpThreading>();
}

} // namespace dce::opt
