/**
 * @file
 * Function inlining. Calls to small defined callees are replaced by a
 * clone of the callee body; the call block is split at the call site
 * and returns become branches to the continuation (with a phi merging
 * return values). Inlined allocas stay at their cloned positions —
 * mem2reg treats an alloca as a def of 0 where it executes, so
 * re-executing an inlined body in a loop keeps the exact fresh-locals
 * semantics of a real call.
 *
 * Inlining is what lets intraprocedural analyses see through the
 * paper's multi-function cases (Listings 8b, 9b, 9c).
 */
#include <vector>

#include "ir/clone.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CloneMap;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class Inliner : public Pass {
  public:
    std::string name() const override { return "inline"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        if (config.inlineThreshold == 0)
            return false;
        bool changed = false;
        // Budget bounds pathological chains (mutual recursion keeps
        // producing new call sites).
        unsigned budget = 100;
        bool progress = true;
        while (progress && budget > 0) {
            progress = false;
            for (const auto &fn : module.functions()) {
                if (fn->isDeclaration())
                    continue;
                Instr *site = findInlinableCall(*fn, config);
                if (site) {
                    if (config.keepInlinedHusks &&
                        site->callee->isInternal() &&
                        callSiteCount(module, site->callee) == 1) {
                        // Single-call-site internal callees are the
                        // ones IPA-SRA specializes; the husk of the
                        // transformed clone stays behind (Listing 9b).
                        site->callee->setNoDce(true);
                    }
                    inlineCall(*fn, site, module);
                    changed = true;
                    progress = true;
                    --budget;
                    break; // iterators invalidated; rescan
                }
            }
        }
        return changed;
    }

  private:
    static size_t
    callSiteCount(const Module &module, const Function *callee)
    {
        size_t count = 0;
        for (const auto &fn : module.functions()) {
            for (const auto &block : fn->blocks()) {
                for (const auto &instr : block->instrs()) {
                    if (instr->opcode() == Opcode::Call &&
                        instr->callee == callee) {
                        ++count;
                    }
                }
            }
        }
        return count;
    }

    static size_t
    instructionCount(const Function &fn)
    {
        size_t count = 0;
        for (const auto &block : fn.blocks())
            count += block->size();
        return count;
    }

    Instr *
    findInlinableCall(Function &caller, const PassConfig &config)
    {
        for (const auto &block : caller.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != Opcode::Call)
                    continue;
                Function *callee = instr->callee;
                if (callee->isDeclaration() || callee == &caller)
                    continue;
                if (instructionCount(*callee) > config.inlineThreshold)
                    continue;
                return instr.get();
            }
        }
        return nullptr;
    }

    void
    inlineCall(Function &caller, Instr *call, Module &module)
    {
        BasicBlock *call_block = call->parent();
        Function *callee = call->callee;

        // 1. Split the call block: everything after the call moves to a
        //    continuation block.
        BasicBlock *continuation =
            caller.addBlock(call_block->name() + ".cont");
        size_t call_index = call_block->indexOf(call);
        while (call_block->size() > call_index + 1) {
            ir::InstrPtr moved = call_block->detach(
                call_block->instrs()[call_index + 1].get());
            continuation->reattach(std::move(moved));
        }
        // CFG successors' phis must now name the continuation.
        for (BasicBlock *succ : continuation->successors())
            succ->replacePhiIncomingBlock(call_block, continuation);

        // 2. Clone the callee body, mapping params to arguments.
        CloneMap seed;
        for (size_t i = 0; i < callee->params().size(); ++i)
            seed.values[callee->params()[i].get()] = call->operand(i);
        std::vector<BasicBlock *> region;
        region.reserve(callee->numBlocks());
        for (const auto &block : callee->blocks())
            region.push_back(block.get());
        CloneMap map = ir::cloneRegion(region, caller, module,
                                       std::move(seed), ".i");

        // 3. Replace cloned returns with branches to the continuation,
        //    collecting returned values.
        std::vector<std::pair<Value *, BasicBlock *>> returns;
        for (BasicBlock *block : region) {
            BasicBlock *clone = map.blocks.at(block);
            Instr *term = clone->terminator();
            if (!term || term->opcode() != Opcode::Ret)
                continue;
            Value *returned =
                term->numOperands() == 1 ? term->operand(0) : nullptr;
            clone->erase(term);
            auto br = module.newInstr(Opcode::Br,
                                              IrType::voidTy());
            br->addBlockOperand(continuation);
            clone->append(std::move(br));
            returns.emplace_back(returned, clone);
        }

        // 4. Merge return values for the call's result.
        if (!call->type().isVoid() && call->hasUsers()) {
            Value *result = nullptr;
            if (returns.size() == 1) {
                result = returns[0].first;
            } else if (!returns.empty()) {
                auto phi = module.newInstr(Opcode::Phi,
                                                   call->type());
                phi->setId(module.nextValueId());
                for (auto &[value, block] : returns)
                    phi->addIncoming(value, block);
                result = continuation->insertBefore(0, std::move(phi));
            }
            if (result) {
                call->replaceAllUsesWith(result);
            } else {
                // No returning path (infinite loop in callee): the
                // continuation is unreachable; feed a dummy constant.
                call->replaceAllUsesWith(
                    module.constant(call->type(), 0));
            }
        }

        // 5. The call block now ends by entering the inlined entry.
        call_block->erase(call);
        auto enter = module.newInstr(Opcode::Br,
                                             IrType::voidTy());
        enter->addBlockOperand(map.blocks.at(callee->entry()));
        call_block->append(std::move(enter));
    }
};

} // namespace

std::unique_ptr<Pass>
createInlinePass()
{
    return std::make_unique<Inliner>();
}

} // namespace dce::opt
