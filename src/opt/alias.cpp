#include "opt/alias.hpp"

#include <vector>

#include "support/trace.hpp"

namespace dce::opt {

using ir::Function;
using ir::GlobalVar;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ir::ValueKind;

PtrBase
resolvePtrBase(const Value *pointer, bool look_through_freeze)
{
    PtrBase base;
    int64_t offset = 0;
    bool offset_known = true;
    const Value *current = pointer;
    for (;;) {
        if (current->valueKind() == ValueKind::Global) {
            base.kind = PtrBase::Kind::Global;
            base.object = current;
            if (offset_known)
                base.offset = offset;
            return base;
        }
        if (!current->isInstruction())
            return base; // param or constant (null): unknown
        const auto *instr = static_cast<const Instr *>(current);
        switch (instr->opcode()) {
          case Opcode::Alloca:
            base.kind = PtrBase::Kind::Alloca;
            base.object = instr;
            if (offset_known)
                base.offset = offset;
            return base;
          case Opcode::Gep: {
            const Value *index = instr->operand(1);
            if (index->isConstant()) {
                offset +=
                    static_cast<const ir::Constant *>(index)->value();
            } else {
                offset_known = false;
            }
            current = instr->operand(0);
            break;
          }
          case Opcode::Freeze:
            if (!look_through_freeze)
                return base;
            current = instr->operand(0);
            break;
          default:
            return base; // load, phi, select, call: unknown
        }
    }
}

AliasResult
alias(const Value *a, const Value *b)
{
    if (a == b)
        return AliasResult::MustAlias;
    PtrBase base_a = resolvePtrBase(a);
    PtrBase base_b = resolvePtrBase(b);
    if (base_a.isIdentified() && base_b.isIdentified()) {
        if (base_a.object != base_b.object) {
            // Distinct objects never overlap: exact under MiniC's
            // object-level memory model.
            return AliasResult::NoAlias;
        }
        if (base_a.offset && base_b.offset) {
            return *base_a.offset == *base_b.offset
                       ? AliasResult::MustAlias
                       : AliasResult::NoAlias;
        }
        return AliasResult::MayAlias; // same object, variable offsets
    }
    return AliasResult::MayAlias;
}

//===------------------------------------------------------------------===//
// EscapeInfo
//===------------------------------------------------------------------===//

EscapeInfo::EscapeInfo(const Module &module)
{
    support::TraceSpan span("escapeinfo", "analysis");
    // A global referenced by another global's initializer is reachable
    // through memory, i.e. escaped.
    for (const auto &global : module.globals()) {
        for (const ir::GlobalInit &init : global->init) {
            if (init.isAddress())
                escaped_.insert(init.base);
        }
    }
    for (const auto &global : module.globals())
        markEscaping(global.get());
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Alloca)
                    markEscaping(instr.get());
            }
        }
    }
}

void
EscapeInfo::markEscaping(const Value *root)
{
    if (escaped_.count(root))
        return;
    // Chase every SSA value derived from the object's address. If any
    // derived pointer is stored to memory, passed to a call, returned,
    // or flows somewhere we cannot track (phi/select merge is tracked;
    // being a store *value* is not), the object escapes.
    std::vector<const Value *> worklist = {root};
    std::unordered_set<const Value *> visited;
    while (!worklist.empty()) {
        const Value *value = worklist.back();
        worklist.pop_back();
        if (!visited.insert(value).second)
            continue;
        for (const Instr *user : value->users()) {
            switch (user->opcode()) {
              case Opcode::Load:
                break; // reading through the pointer: fine
              case Opcode::Store:
                // Fine when the pointer is the *address*; escaping when
                // it is the stored value.
                if (user->operand(0) == value) {
                    escaped_.insert(root);
                    return;
                }
                break;
              case Opcode::Cmp:
                break; // comparisons do not leak write capability
              case Opcode::Gep:
                if (user->operand(0) == value)
                    worklist.push_back(user);
                else
                    break; // pointer as index is impossible (typed)
                break;
              case Opcode::Freeze:
              case Opcode::Select:
              case Opcode::Phi:
                worklist.push_back(user);
                break;
              case Opcode::Call:
              case Opcode::Ret:
                escaped_.insert(root);
                return;
              default:
                // Unexpected use of a pointer (bin/cast impossible in
                // well-typed IR); be conservative.
                escaped_.insert(root);
                return;
            }
        }
    }
}

//===------------------------------------------------------------------===//
// MemorySummary
//===------------------------------------------------------------------===//

namespace {

void
setBit(support::SmallVector<uint64_t, 1> &bits, unsigned index)
{
    bits[index / 64] |= uint64_t{1} << (index % 64);
}

bool
testBit(const support::SmallVector<uint64_t, 1> &bits, unsigned index)
{
    return (bits[index / 64] >> (index % 64)) & 1;
}

} // namespace

MemorySummary::MemorySummary(const Module &module, const EscapeInfo &escape)
{
    support::TraceSpan span("memorysummary", "analysis");
    // Direct effects, then propagate through calls to a fixed point
    // (handles recursion and mutual recursion).
    const auto &globals = module.globals();
    const auto &functions = module.functions();
    const unsigned num_globals = static_cast<unsigned>(globals.size());
    const size_t words = (num_globals + 63) / 64;
    globalIndex_.reserve(num_globals);
    for (unsigned i = 0; i < num_globals; ++i)
        globalIndex_[globals[i].get()] = i;
    fnIndex_.reserve(functions.size());
    effects_.resize(functions.size());
    for (unsigned i = 0; i < functions.size(); ++i) {
        fnIndex_[functions[i].get()] = i;
        effects_[i].reads.resize(words, 0);
        effects_[i].writes.resize(words, 0);
    }

    // An external callee may touch every non-internal global, anything
    // escaped, and may call back into this module's non-internal
    // functions (handled below by unioning their effects in the
    // fixpoint via a pseudo call edge).
    Effects external_effects;
    external_effects.reads.resize(words, 0);
    external_effects.writes.resize(words, 0);
    for (unsigned i = 0; i < num_globals; ++i) {
        if (!globals[i]->isInternal()) {
            setBit(external_effects.reads, i);
            setBit(external_effects.writes, i);
        }
    }
    external_effects.readsUnknown = true;
    external_effects.writesUnknown = true;

    // Direct effects and, in the same walk, each function's unique
    // callees — so the fixpoint below never re-walks instructions.
    std::vector<support::SmallVector<unsigned, 4>> callees(
        functions.size());
    for (unsigned f = 0; f < functions.size(); ++f) {
        const Function *fn = functions[f].get();
        Effects &eff = effects_[f];
        if (fn->isDeclaration()) {
            eff = external_effects;
            continue;
        }
        for (const auto &block : fn->blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Call) {
                    unsigned callee = fnIndex_.at(instr->callee);
                    bool seen = false;
                    for (unsigned c : callees[f])
                        seen |= c == callee;
                    if (!seen)
                        callees[f].push_back(callee);
                    continue;
                }
                if (instr->opcode() == Opcode::Load ||
                    instr->opcode() == Opcode::Store) {
                    bool is_store = instr->opcode() == Opcode::Store;
                    const Value *ptr =
                        instr->operand(is_store ? 1 : 0);
                    PtrBase base = resolvePtrBase(ptr);
                    if (base.kind == PtrBase::Kind::Global) {
                        auto *g = static_cast<const GlobalVar *>(
                            base.object);
                        setBit(is_store ? eff.writes : eff.reads,
                               globalIndex_.at(g));
                    } else if (base.kind == PtrBase::Kind::Unknown) {
                        // Could be any escaped object or a global
                        // whose address escaped.
                        if (is_store)
                            eff.writesUnknown = true;
                        else
                            eff.readsUnknown = true;
                    }
                    // Alloca bases are function-local: invisible to
                    // callers unless escaped, which the Unknown case
                    // plus EscapeInfo covers at query time.
                    (void)escape;
                }
            }
        }
    }

    // Callback edges: externals may call any non-internal defined
    // function. Model by having every declaration's effect set absorb
    // those functions' effects during the fixpoint.
    // Whole-program assumption: external code may call back any
    // non-internal defined function *except main* (the entry point is
    // never re-entered; real compilers infer the same via norecurse).
    for (unsigned f = 0; f < functions.size(); ++f) {
        if (!functions[f]->isDeclaration())
            continue;
        for (unsigned t = 0; t < functions.size(); ++t) {
            if (!functions[t]->isDeclaration() &&
                !functions[t]->isInternal() &&
                functions[t]->name() != "main") {
                callees[f].push_back(t);
            }
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned f = 0; f < functions.size(); ++f) {
            Effects &eff = effects_[f];
            for (unsigned c : callees[f]) {
                const Effects &callee = effects_[c];
                for (size_t w = 0; w < words; ++w) {
                    uint64_t reads = eff.reads[w] | callee.reads[w];
                    uint64_t writes = eff.writes[w] | callee.writes[w];
                    changed |= reads != eff.reads[w] ||
                               writes != eff.writes[w];
                    eff.reads[w] = reads;
                    eff.writes[w] = writes;
                }
                changed |= callee.readsUnknown && !eff.readsUnknown;
                changed |= callee.writesUnknown && !eff.writesUnknown;
                eff.readsUnknown |= callee.readsUnknown;
                eff.writesUnknown |= callee.writesUnknown;
            }
        }
    }
}

bool
MemorySummary::mayRead(const Function *fn, const GlobalVar *g) const
{
    auto it = globalIndex_.find(g);
    return it != globalIndex_.end() &&
           testBit(effectsOf(fn).reads, it->second);
}

bool
MemorySummary::mayWrite(const Function *fn, const GlobalVar *g) const
{
    auto it = globalIndex_.find(g);
    return it != globalIndex_.end() &&
           testBit(effectsOf(fn).writes, it->second);
}

bool
MemorySummary::readsUnknown(const Function *fn) const
{
    return effectsOf(fn).readsUnknown;
}

bool
MemorySummary::writesUnknown(const Function *fn) const
{
    return effectsOf(fn).writesUnknown;
}

} // namespace dce::opt
