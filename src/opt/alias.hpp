/**
 * @file
 * Pointer analyses shared by the optimization passes:
 *
 *  - PtrBase: resolve a pointer SSA value to its base memory object
 *    (global or alloca) plus a constant element offset when derivable.
 *  - alias(): May/Must/NoAlias on two pointers. MiniC's object-level
 *    memory model (out-of-bounds accesses never touch neighbouring
 *    objects) makes distinct-base => NoAlias *exact*, not heuristic.
 *  - EscapeInfo: which globals/allocas have their address taken (stored
 *    somewhere, passed to a call, returned, or referenced by another
 *    global's initializer). Non-escaping objects can only be accessed
 *    through directly-derived pointers, enabling strong global value
 *    reasoning.
 *  - MemorySummary: per-function transitive may-read/may-write sets of
 *    global objects, for interprocedural load forwarding and exit DSE.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ir/ir.hpp"
#include "support/small_vector.hpp"

namespace dce::opt {

/** Resolution of a pointer to its base object. */
struct PtrBase {
    enum class Kind {
        Global,  ///< object is a GlobalVar
        Alloca,  ///< object is an Alloca instruction
        Unknown, ///< loaded / phi-merged / parameter pointer
    };

    Kind kind = Kind::Unknown;
    const ir::Value *object = nullptr;
    /** Element offset from the object start, when constant. */
    std::optional<int64_t> offset;

    bool isIdentified() const { return kind != Kind::Unknown; }
};

/**
 * Walk gep (and, by default, freeze) chains to the base object.
 * Alias queries look through freeze — that is sound, freeze is the
 * identity. Folding transforms that model freeze as opaque (the
 * regression mechanism) pass look_through_freeze = false.
 */
PtrBase resolvePtrBase(const ir::Value *pointer,
                       bool look_through_freeze = true);

enum class AliasResult {
    NoAlias,
    MayAlias,
    MustAlias,
};

/** Alias relation between two pointer values. */
AliasResult alias(const ir::Value *a, const ir::Value *b);

/** Address-taken / escape facts for one module snapshot. */
class EscapeInfo {
  public:
    explicit EscapeInfo(const ir::Module &module);

    /** True if pointers to this object can exist outside directly
     * derived SSA chains (so arbitrary loads/stores may touch it). */
    bool escapes(const ir::Value *object) const
    {
        return escaped_.count(object) != 0;
    }

  private:
    void markEscaping(const ir::Value *root);

    std::unordered_set<const ir::Value *> escaped_;
};

/** Transitive memory effects of each function on global objects. */
class MemorySummary {
  public:
    MemorySummary(const ir::Module &module, const EscapeInfo &escape);

    /** May the call (transitively) read/write this global object? */
    bool mayRead(const ir::Function *fn, const ir::GlobalVar *g) const;
    bool mayWrite(const ir::Function *fn, const ir::GlobalVar *g) const;
    /** May the function read/write through escaped or unknown
     * pointers (clobbering anything escaped)? */
    bool readsUnknown(const ir::Function *fn) const;
    bool writesUnknown(const ir::Function *fn) const;

  private:
    /** Read/write sets as bitmasks over the module's global index —
     * the call-graph fixpoint then unions effects with word ORs
     * instead of hash-set merges. */
    struct Effects {
        support::SmallVector<uint64_t, 1> reads;
        support::SmallVector<uint64_t, 1> writes;
        bool readsUnknown = false;
        bool writesUnknown = false;
    };

    const Effects &effectsOf(const ir::Function *fn) const
    {
        return effects_[fnIndex_.at(fn)];
    }

    std::unordered_map<const ir::Function *, unsigned> fnIndex_;
    std::unordered_map<const ir::GlobalVar *, unsigned> globalIndex_;
    std::vector<Effects> effects_;
};

} // namespace dce::opt
