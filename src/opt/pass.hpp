/**
 * @file
 * Optimization pass framework: PassConfig (the feature flags that make
 * the two simulated compilers differ, per DESIGN.md §6), the Pass
 * interface, the PassContext observability handles threaded through
 * every pass, and the PassManager that runs a pipeline (optionally
 * verifying the IR after every pass).
 *
 * Observability (DESIGN.md §9): a PassManager can carry a
 * RemarkCollector and a MetricsRegistry. When a collector is attached
 * the manager takes a census of live `DCEMarkerN` calls before the
 * pipeline and after every pass; a marker whose call count transitions
 * >0 → 0 during pass P gets exactly one authoritative
 * `MarkerEliminated` remark naming P. Passes additionally emit detail
 * remarks from their mechanical deletion/proof sites through the
 * PassContext. With neither attached the pipeline runs the same hot
 * path as before — no census walks, no span bookkeeping beyond a
 * disabled-tracer check.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/metrics.hpp"
#include "support/remarks.hpp"

namespace dce::opt {

/**
 * Feature flags and thresholds that parameterize the pass library.
 * Every flag models a documented capability difference or regression of
 * GCC/LLVM from the paper (the Dn/Rn ids reference DESIGN.md section 6).
 * Defaults are the "strongest correct" settings; compiler definitions
 * in src/compiler weaken/regress them per compiler and commit.
 */
struct PassConfig {
    // --- Global value analysis (globalopt) ----------------------------
    /** D1: fold loads of internal globals that are never stored to.
     * This is the baseline every compiler has. */
    bool foldNeverStoredGlobals = true;
    /** D4: additionally fold loads when every store to the global
     * stores a value equal to its initializer (LLVM globalopt's
     * "stored once same value"). */
    bool foldStoredEqualsInitGlobals = true;
    /** R7 (when true): full flow-sensitive load-before-store analysis
     * from main for internal globals (LLVM <= 3.7 behaviour). */
    bool flowSensitiveGlobalLoads = false;
    /** D6: fold loads with *variable* index from never-stored all-zero
     * internal arrays (Listing 9f). Constant in-bounds indexes always
     * fold when foldNeverStoredGlobals is on. */
    bool foldUniformZeroArrays = true;
    /** Localize internal scalar globals accessed by exactly one
     * function into allocas (LLVM globalopt), making them eligible for
     * mem2reg/SSA and hence loop analyses (the Listing 9e chain). */
    bool localizeGlobals = true;

    // --- Peephole / instcombine ---------------------------------------
    /** D2: fold &a == &b[k] for any constant k. When false, only k == 0
     * folds (LLVM EarlyCSE's miss, Listing 3 / PR49434). */
    bool foldPtrCmpAnyOffset = true;
    /** Fold freeze(constant) -> constant. Off models LLVM's historical
     * omission that made unswitch-inserted freezes block constant
     * folding (Listings 7/8a). */
    bool foldFreezeOfConstant = false;

    // --- Value range / correlated value propagation -------------------
    /** R8: derive X != 0 from a dominating (X << Y) != 0 fact
     * (Listing 9a / GCC PR102546). */
    bool shiftNonzeroRelation = true;
    /** D5/R2: allow equality facts to fold through rem instructions
     * (Listing 8b / LLVM PR49731). */
    bool vrpFoldsRem = true;

    // --- Redundancy elimination (EarlyCSE/GVN) -------------------------
    /** R5: use precise may-alias reasoning when forwarding loads across
     * stores. When false, any intervening pointer store clobbers
     * (Listing 9c / GCC PR100051). */
    bool preciseAliasForwarding = true;

    // --- Dead store elimination ----------------------------------------
    /** DSE within a basic block (overwritten stores). */
    bool dseIntraBlock = true;
    /** D3: remove stores to internal globals that can never be read
     * again before program exit (Listing 1's trailing `c = 0;`). */
    bool dseAtExit = true;

    // --- Jump threading -------------------------------------------------
    /** Enable jump threading over phis of constants. */
    bool jumpThreading = true;
    /** R4: thread even when the phi has incomings from blocks the
     * thread makes dead, leaving threaded copies of dead code
     * (Listing 9d / GCC PR102703). */
    bool threadThroughDeadPhis = false;

    // --- Loop transformations --------------------------------------------
    /** Unswitch loop-invariant conditions out of loops. */
    bool loopUnswitch = false;
    /** R1: aggressive unswitching inserts freeze on the hoisted
     * condition (LLVM >= 12), which blocks later constant folds when
     * foldFreezeOfConstant is off (Listings 7/8a). */
    bool unswitchInsertsFreeze = false;
    /** Fully unroll loops with constant trip count <= this (0 = off). */
    unsigned unrollMaxTripCount = 0;
    /** "Vectorizer" loop-store rewrite (loop idiom): turn constant-trip
     * loops that store an invariant value into straight-line stores. */
    bool loopStoreRewrite = false;
    /** R3: the rewrite launders the stored value through freeze,
     * modelling GCC's unsigned-long type mismatch that blocked constant
     * folding (Listing 9e / GCC PR99776). */
    bool loopRewriteInsertsFreeze = false;

    // --- Inlining and IPA -------------------------------------------------
    /** Inline internal defined callees at or below this instruction
     * count (0 = no inlining). */
    unsigned inlineThreshold = 0;
    /** Remove unreferenced internal functions and globals. */
    bool globalDce = true;
    /** R6: the inliner marks fully-inlined internal callees as
     * kept-alive (their transformed husk stays in the binary), the
     * mechanism behind GCC's uncleaned IPA-SRA clone (Listing 9b /
     * PR100034). */
    bool keepInlinedHusks = false;

    // --- Generic scalar passes ---------------------------------------------
    bool mem2reg = true;
    bool sccp = true;
    bool earlyCse = true;
    bool instCombine = true;
    bool simplifyCfg = true;
    bool instructionDce = true;

    /** Fixed-point iterations of the main scalar pipeline. */
    unsigned pipelineIterations = 2;
};

/**
 * Observability handles for one pipeline execution, passed to every
 * pass. Both sinks are optional; null means "don't bother" and passes
 * must keep their hot path free of remark bookkeeping in that case
 * (check wantRemarks() before gathering evidence).
 */
struct PassContext {
    support::RemarkCollector *remarks = nullptr;
    support::MetricsRegistry *metrics = nullptr;
    /// Position of the currently running pass in the pipeline.
    unsigned passIndex = 0;

    bool wantRemarks() const { return remarks != nullptr; }

    /** Emit a detail remark attributed to @p pass_name at the current
     * pipeline position. No-op when no collector is attached. */
    void remark(support::RemarkKind kind, std::string pass_name,
                unsigned marker, std::string message) const
    {
        if (remarks) {
            remarks->emit(kind, std::move(pass_name), passIndex,
                          marker, std::move(message));
        }
    }
};

/** A transformation over a whole module. */
class Pass {
  public:
    virtual ~Pass() = default;

    virtual std::string name() const = 0;
    /** @return true if the module was changed. */
    virtual bool run(ir::Module &module, const PassConfig &config,
                     PassContext &ctx) = 0;
};

/**
 * Emit a MarkerCallRemoved detail remark for every marker call inside
 * a block of @p fn that is unreachable from the entry. Passes that
 * clean up with ir::removeUnreachableBlocks call this immediately
 * before doing so — the scan only runs when a collector is attached.
 */
void reportUnreachableMarkerCalls(const ir::Function &fn,
                                  const std::string &pass_name,
                                  const PassContext &ctx,
                                  const char *why);

/** Runs a pass sequence; optionally verifies after every pass. */
class PassManager {
  public:
    explicit PassManager(PassConfig config) : config_(std::move(config)) {}

    void
    add(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    const PassConfig &config() const { return config_; }

    /** Attach an optimization-remark sink (null to detach). Enables
     * the per-pass marker census; see the file comment. */
    void setRemarks(support::RemarkCollector *remarks)
    {
        remarks_ = remarks;
    }

    /** Attach a metrics registry (null to detach). Enables per-pass
     * IR-instruction delta counters `pass.instrs_{removed,added}`. */
    void setMetrics(support::MetricsRegistry *metrics)
    {
        metrics_ = metrics;
    }

    /**
     * Run every pass in order. When @p verify_each is true (tests), IR
     * verification runs after each pass and a failure aborts via
     * assert with the offending pass named in `lastError`.
     * @return true if any pass changed the module.
     */
    bool run(ir::Module &module, bool verify_each = false);

    /** Non-empty when a verification failure was detected. */
    const std::string &lastError() const { return lastError_; }

  private:
    PassConfig config_;
    std::vector<std::unique_ptr<Pass>> passes_;
    std::string lastError_;
    support::RemarkCollector *remarks_ = nullptr;
    support::MetricsRegistry *metrics_ = nullptr;
};

// Factory functions, one per pass (implementations in their own files).
std::unique_ptr<Pass> createMem2RegPass();
std::unique_ptr<Pass> createSimplifyCfgPass();
std::unique_ptr<Pass> createInstCombinePass();
std::unique_ptr<Pass> createSccpPass();
std::unique_ptr<Pass> createGlobalOptPass();
std::unique_ptr<Pass> createEarlyCsePass();
std::unique_ptr<Pass> createDcePass();
/** @param allow_exit_dse permit the exit-DSE flavour (D3). Pipelines
 * pass false for the in-loop scalar rounds and true only for the final
 * cleanup, after the last globalopt — deleting an exit store earlier
 * would turn stored globals into never-stored ones and erase the
 * flow-sensitivity differences under study. */
std::unique_ptr<Pass> createDsePass(bool allow_exit_dse = true);
std::unique_ptr<Pass> createInlinePass();
std::unique_ptr<Pass> createGlobalDcePass();
std::unique_ptr<Pass> createJumpThreadingPass();
std::unique_ptr<Pass> createVrpPass();
std::unique_ptr<Pass> createLoopUnswitchPass();
std::unique_ptr<Pass> createLoopUnrollPass();
std::unique_ptr<Pass> createLoopStoreRewritePass();

} // namespace dce::opt
