/**
 * @file
 * Full loop unrolling for counted loops. The trip count is computed by
 * simulating the induction phi with the same integer semantics the
 * interpreter uses; the loop body is then cloned once per iteration
 * with the header phis concretized, and the constant-folding passes
 * collapse the unrolled chain. Unrolling is what turns Listing 9e's
 * two-iteration pointer-store loop into straight-line stores that
 * EarlyCSE can forward.
 */
#include <optional>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/clone.hpp"
#include "ir/dominators.hpp"
#include "ir/loop_info.hpp"
#include "opt/pass.hpp"
#include "support/ints.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::CloneMap;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Loop;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

/** Static description of an unrollable counted loop. */
struct CountedLoop {
    BasicBlock *preheader = nullptr;
    BasicBlock *header = nullptr;
    BasicBlock *latch = nullptr;
    BasicBlock *exit = nullptr;
    Instr *induction = nullptr;   ///< header phi driving the branch
    unsigned tripCount = 0;
    bool exitOnTrue = false;      ///< header condbr: true edge exits
};

class LoopUnroll : public Pass {
  public:
    std::string name() const override { return "loopunroll"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (config.unrollMaxTripCount == 0)
            return false;
        config_ = &config;
        module_ = &module;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            // Unroll loops one at a time (analyses go stale after each
            // transform) under a growth budget.
            unsigned budget = 8;
            while (budget-- > 0 && unrollOne(*fn))
                changed = true;
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    static bool
    evalPred(CmpPred pred, int64_t a, int64_t b)
    {
        switch (pred) {
          case CmpPred::Eq: return a == b;
          case CmpPred::Ne: return a != b;
          case CmpPred::Slt: return a < b;
          case CmpPred::Sle: return a <= b;
          case CmpPred::Sgt: return a > b;
          case CmpPred::Sge: return a >= b;
          case CmpPred::Ult:
            return static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
          case CmpPred::Ule:
            return static_cast<uint64_t>(a) <= static_cast<uint64_t>(b);
          case CmpPred::Ugt:
            return static_cast<uint64_t>(a) > static_cast<uint64_t>(b);
          case CmpPred::Uge:
            return static_cast<uint64_t>(a) >= static_cast<uint64_t>(b);
        }
        return false;
    }

    /** Match the unrollable shape and compute the trip count. */
    std::optional<CountedLoop>
    match(const Loop &loop, const ir::PredecessorMap &preds) const
    {
        if (!loop.subloops.empty() || loop.latches.size() != 1 ||
            loop.blocks.size() > 12) {
            return std::nullopt;
        }
        CountedLoop info;
        info.header = loop.header;
        info.latch = loop.latches[0];
        info.preheader = loop.preheader(preds);
        if (!info.preheader)
            return std::nullopt;

        // Header terminates in condbr(cmp(phi, const)) with exactly one
        // edge leaving the loop; no other block may exit.
        Instr *term = info.header->terminator();
        if (!term || term->opcode() != Opcode::CondBr)
            return std::nullopt;
        BasicBlock *true_succ = term->blockOperands()[0];
        BasicBlock *false_succ = term->blockOperands()[1];
        bool true_in = loop.contains(true_succ);
        bool false_in = loop.contains(false_succ);
        if (true_in == false_in)
            return std::nullopt;
        info.exitOnTrue = !true_in;
        info.exit = info.exitOnTrue ? true_succ : false_succ;
        for (BasicBlock *block : loop.blocks) {
            if (block == info.header)
                continue;
            for (BasicBlock *succ : block->successors()) {
                if (!loop.contains(succ))
                    return std::nullopt; // second exit
            }
        }
        // Exit block phis would need careful multi-edge handling.
        if (!info.exit->phis().empty())
            return std::nullopt;

        Value *cond = term->operand(0);
        if (!cond->isInstruction())
            return std::nullopt;
        Instr *cmp = static_cast<Instr *>(cond);
        if (cmp->opcode() != Opcode::Cmp)
            return std::nullopt;
        Instr *phi = nullptr;
        Constant *bound = nullptr;
        if (cmp->operand(0)->isInstruction() &&
            cmp->operand(1)->isConstant()) {
            phi = static_cast<Instr *>(cmp->operand(0));
            bound = static_cast<Constant *>(cmp->operand(1));
        } else {
            return std::nullopt;
        }
        if (phi->opcode() != Opcode::Phi || phi->parent() != info.header)
            return std::nullopt;
        info.induction = phi;

        // The phi: [init const from preheader], [phi +/- step const
        // from latch].
        Value *init = phi->incomingValueFor(info.preheader);
        Value *next = phi->incomingValueFor(info.latch);
        if (!init || !next || !init->isConstant() ||
            !next->isInstruction()) {
            return std::nullopt;
        }
        Instr *step_instr = static_cast<Instr *>(next);
        if (step_instr->opcode() != Opcode::Bin ||
            (step_instr->binOp != ir::BinOp::Add &&
             step_instr->binOp != ir::BinOp::Sub) ||
            step_instr->operand(0) != phi ||
            !step_instr->operand(1)->isConstant()) {
            return std::nullopt;
        }

        // No value defined inside may be used outside (the exit block
        // has no phis, so any such use would break dominance anyway —
        // check to be exact).
        for (BasicBlock *block : loop.blocks) {
            for (const auto &instr : block->instrs()) {
                for (const Instr *user : instr->users()) {
                    if (!loop.contains(user->parent()))
                        return std::nullopt;
                }
            }
        }

        // Simulate the induction variable.
        IrType type = phi->type();
        int64_t value = static_cast<Constant *>(init)->value();
        int64_t bound_value = bound->value();
        int64_t step =
            static_cast<Constant *>(step_instr->operand(1))->value();
        CmpPred pred = cmp->cmpPred;
        unsigned trips = 0;
        for (;;) {
            bool cond_true = evalPred(pred, value, bound_value);
            bool continues = info.exitOnTrue ? !cond_true : cond_true;
            if (!continues)
                break;
            ++trips;
            if (trips > config_->unrollMaxTripCount)
                return std::nullopt;
            value = step_instr->binOp == ir::BinOp::Add
                        ? addInt(value, step, type.bits, type.isSigned)
                        : subInt(value, step, type.bits, type.isSigned);
        }
        info.tripCount = trips;
        return info;
    }

    bool
    unrollOne(Function &fn)
    {
        ir::DominatorTree domtree(fn);
        ir::LoopInfo loop_info(fn, domtree);
        auto preds = ir::predecessorMap(fn);
        for (const auto &loop : loop_info.loops()) {
            std::optional<CountedLoop> info = match(*loop, preds);
            if (!info)
                continue;
            applyUnroll(fn, *loop, *info);
            return true;
        }
        return false;
    }

    void
    applyUnroll(Function &fn, const Loop &loop, const CountedLoop &info)
    {
        std::vector<BasicBlock *> region(loop.blocks.begin(),
                                         loop.blocks.end());
        std::vector<Instr *> header_phis = info.header->phis();

        // Current value of each header phi entering the next iteration.
        std::unordered_map<Instr *, Value *> current;
        for (Instr *phi : header_phis)
            current[phi] = phi->incomingValueFor(info.preheader);

        BasicBlock *entry_edge_from = info.preheader;
        BasicBlock *entry_edge_old_target = info.header;

        // tripCount body executions plus the final header evaluation
        // that exits. Each clone's header still contains the (now
        // concrete) comparison, so semantics are preserved even before
        // the folds collapse it.
        for (unsigned k = 0; k <= info.tripCount; ++k) {
            CloneMap map = ir::cloneRegion(
                region, fn, *module_, CloneMap{},
                ".u" + std::to_string(k));
            BasicBlock *cloned_header = map.blocks.at(info.header);

            // Concretize the cloned header phis.
            for (Instr *phi : header_phis) {
                Instr *clone = static_cast<Instr *>(map.values.at(phi));
                clone->replaceAllUsesWith(current.at(phi));
                cloned_header->erase(clone);
            }
            // Hook the incoming edge.
            entry_edge_from->terminator()->replaceSuccessor(
                entry_edge_old_target, cloned_header);

            // Next iteration's phi values come from this clone's latch
            // incomings.
            BasicBlock *cloned_latch = map.blocks.at(info.latch);
            std::unordered_map<Instr *, Value *> next;
            for (Instr *phi : header_phis) {
                Value *via = phi->incomingValueFor(info.latch);
                // A header phi carried into the next iteration maps to
                // its concretized value (the cloned phi was erased).
                if (via->isInstruction() &&
                    current.count(static_cast<Instr *>(via))) {
                    next[phi] = current.at(static_cast<Instr *>(via));
                    continue;
                }
                auto mapped = map.values.find(via);
                next[phi] =
                    mapped != map.values.end() ? mapped->second : via;
            }
            current = std::move(next);
            entry_edge_from = cloned_latch;
            entry_edge_old_target = cloned_header;
        }

        // The last clone's latch still targets its own header (a
        // back-edge that can never execute, because the final header
        // comparison exits); leave it for SCCP/SimplifyCFG, but the
        // *original* loop is now unreachable.
        if (ctx_ && ctx_->wantRemarks()) {
            reportUnreachableMarkerCalls(fn, name(), *ctx_,
                                         "loop fully unrolled");
        }
        ir::removeUnreachableBlocks(fn);
    }

    const PassConfig *config_ = nullptr;
    Module *module_ = nullptr;
    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createLoopUnrollPass()
{
    return std::make_unique<LoopUnroll>();
}

} // namespace dce::opt
