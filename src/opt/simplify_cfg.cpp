/**
 * @file
 * CFG cleanup: fold constant branches, remove unreachable blocks,
 * collapse trivial phis, merge straight-line block chains, and skip
 * empty forwarding blocks. This is the mechanical half of dead-code
 * elimination — the analyses under test (SCCP, globalopt, VRP, ...)
 * are what *make* branches constant; SimplifyCFG then deletes the dead
 * arms.
 */
#include <algorithm>

#include "ir/cfg.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class SimplifyCfg : public Pass {
  public:
    std::string name() const override { return "simplifycfg"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.simplifyCfg)
            return false;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            while (iterate(*fn))
                changed = true;
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    /** One cleanup sweep; returns true if anything changed. */
    bool
    iterate(Function &fn)
    {
        bool changed = false;
        changed |= removeUnreachable(fn, "dangling unreachable code");
        if (foldConstantTerminators(fn)) {
            changed = true;
            changed |= removeUnreachable(fn, "constant branch folded");
        }
        changed |= collapseTrivialPhis(fn);
        changed |= mergeStraightLineChains(fn);
        changed |= skipForwardingBlocks(fn);
        return changed;
    }

    /** removeUnreachableBlocks with remark hooks: any marker call in a
     * block about to be deleted gets a detail remark first. */
    bool
    removeUnreachable(Function &fn, const char *why)
    {
        if (ctx_ && ctx_->wantRemarks())
            reportUnreachableMarkerCalls(fn, name(), *ctx_, why);
        return ir::removeUnreachableBlocks(fn) > 0;
    }

    bool
    foldConstantTerminators(Function &fn)
    {
        bool changed = false;
        for (const auto &block : fn.blocks()) {
            Instr *term = block->terminator();
            if (!term)
                continue;
            if (term->opcode() == Opcode::CondBr) {
                BasicBlock *t = term->blockOperands()[0];
                BasicBlock *f = term->blockOperands()[1];
                Value *cond = term->operand(0);
                if (cond->isConstant()) {
                    bool taken =
                        !static_cast<Constant *>(cond)->isZero();
                    BasicBlock *target = taken ? t : f;
                    BasicBlock *dropped = taken ? f : t;
                    replaceTerminatorWithBr(*block, term, target);
                    if (dropped != target)
                        dropped->removePhiIncomingFor(block.get());
                    changed = true;
                } else if (t == f) {
                    // Both edges to the same block: collapse, dropping
                    // the duplicate phi entries (they carry identical
                    // values when produced by our passes; bail if not).
                    if (dedupPhiEntries(*t, block.get())) {
                        replaceTerminatorWithBr(*block, term, t);
                        changed = true;
                    }
                }
            } else if (term->opcode() == Opcode::Switch &&
                       term->operand(0)->isConstant()) {
                int64_t value =
                    static_cast<Constant *>(term->operand(0))->value();
                BasicBlock *target = term->blockOperands()[0];
                for (size_t i = 0; i < term->caseValues.size(); ++i) {
                    if (term->caseValues[i] == value) {
                        target = term->blockOperands()[i + 1];
                        break;
                    }
                }
                std::vector<BasicBlock *> all(
                    term->blockOperands().begin(),
                    term->blockOperands().end());
                replaceTerminatorWithBr(*block, term, target);
                for (BasicBlock *succ : all) {
                    if (succ != target)
                        succ->removePhiIncomingFor(block.get());
                }
                changed = true;
            }
        }
        return changed;
    }

    /** If @p pred reaches @p block through multiple edges, its phis
     * have several entries for pred. Keep one entry iff all values
     * agree. @return true if afterwards at most one entry remains. */
    bool
    dedupPhiEntries(BasicBlock &block, BasicBlock *pred)
    {
        for (Instr *phi : block.phis()) {
            Value *seen = nullptr;
            for (size_t i = 0; i < phi->blockOperands().size(); ++i) {
                if (phi->blockOperands()[i] != pred)
                    continue;
                if (seen && phi->operand(i) != seen)
                    return false;
                seen = phi->operand(i);
            }
        }
        for (Instr *phi : block.phis()) {
            bool kept = false;
            for (size_t i = phi->blockOperands().size(); i-- > 0;) {
                if (phi->blockOperands()[i] != pred)
                    continue;
                if (kept)
                    phi->removeIncoming(i);
                kept = true;
            }
        }
        return true;
    }

    void
    replaceTerminatorWithBr(BasicBlock &block, Instr *term,
                            BasicBlock *target)
    {
        block.erase(term);
        auto br = block.parent()->parent()->newInstr(Opcode::Br,
                                          ir::IrType::voidTy());
        br->addBlockOperand(target);
        block.append(std::move(br));
    }

    bool
    collapseTrivialPhis(Function &fn)
    {
        bool changed = false;
        for (const auto &block : fn.blocks()) {
            for (Instr *phi : block->phis()) {
                // Single distinct incoming value (or self-references
                // plus one value) collapses to that value.
                Value *unique_value = nullptr;
                bool trivial = true;
                for (size_t i = 0; i < phi->numOperands(); ++i) {
                    Value *incoming = phi->operand(i);
                    if (incoming == phi)
                        continue;
                    if (unique_value && incoming != unique_value) {
                        trivial = false;
                        break;
                    }
                    unique_value = incoming;
                }
                if (trivial && unique_value) {
                    phi->replaceAllUsesWith(unique_value);
                    block->erase(phi);
                    changed = true;
                }
            }
        }
        return changed;
    }

    bool
    mergeStraightLineChains(Function &fn)
    {
        // One sweep merges every straight-line chain. Incoming-edge
        // counts are kept incrementally: merging B into A neither
        // changes any surviving block's count (A inherits B's edges
        // one-for-one) nor invalidates indexes, because emptied blocks
        // are erased only after the sweep.
        std::vector<unsigned> pred_count(fn.numBlocks(), 0);
        for (const auto &owned : fn.blocks()) {
            for (BasicBlock *succ : owned->successors())
                ++pred_count[succ->indexInFn()];
        }
        std::vector<BasicBlock *> emptied;
        for (const auto &owned : fn.blocks()) {
            BasicBlock *pred = owned.get();
            // Chain-walk: after one merge, pred's new terminator may
            // immediately qualify for the next.
            for (;;) {
                Instr *term = pred->terminator();
                if (!term || term->opcode() != Opcode::Br)
                    break;
                BasicBlock *block = term->blockOperands()[0];
                if (block == pred || block == fn.entry())
                    break;
                if (pred_count[block->indexInFn()] != 1)
                    break;
                // Phis in a single-pred block are trivial; collapse
                // first.
                for (Instr *phi : block->phis()) {
                    phi->replaceAllUsesWith(phi->operand(0));
                    block->erase(phi);
                }
                // Splice block's instructions into pred.
                pred->erase(term);
                while (!block->empty()) {
                    ir::InstrPtr moved =
                        block->detach(block->front());
                    pred->reattach(std::move(moved));
                }
                // Successors' phis must now name pred.
                for (BasicBlock *succ : pred->successors())
                    succ->replacePhiIncomingBlock(block, pred);
                pred_count[block->indexInFn()] = 0;
                emptied.push_back(block);
            }
        }
        for (BasicBlock *block : emptied)
            fn.eraseBlock(block);
        return !emptied.empty();
    }

    bool
    skipForwardingBlocks(Function &fn)
    {
        // One sweep over all forwarding blocks. Predecessor lists are
        // maintained incrementally across redirects (a redirect only
        // changes the lists of the skipped block and its target), and
        // skipped blocks are erased after the sweep so indexes stay
        // stable. Candidates this sweep passes over (e.g. a conflict
        // that a later redirect resolves) are picked up by the
        // caller's fixpoint loop.
        std::vector<std::vector<BasicBlock *>> preds(fn.numBlocks());
        for (const auto &owned : fn.blocks()) {
            for (BasicBlock *succ : owned->successors())
                preds[succ->indexInFn()].push_back(owned.get());
        }
        std::vector<BasicBlock *> skipped;
        for (const auto &owned : fn.blocks()) {
            BasicBlock *block = owned.get();
            if (block == fn.entry())
                continue;
            Instr *term = block->terminator();
            if (!term || term->opcode() != Opcode::Br ||
                block->size() != 1) {
                continue;
            }
            BasicBlock *target = term->blockOperands()[0];
            if (target == block)
                continue;
            std::vector<BasicBlock *> &block_preds =
                preds[block->indexInFn()];
            if (block_preds.empty())
                continue;
            // Ambiguity guard: if the target has phis and some pred
            // already branches to it, redirecting would create
            // duplicate-pred entries with possibly different values.
            if (!target->phis().empty()) {
                bool conflict = false;
                for (BasicBlock *pred : block_preds) {
                    for (BasicBlock *succ : pred->successors())
                        conflict |= succ == target;
                }
                if (conflict)
                    continue;
            }
            // Redirect every incoming edge.
            for (BasicBlock *pred : block_preds)
                pred->terminator()->replaceSuccessor(block, target);
            // Each phi entry for `block` becomes one entry per pred.
            for (Instr *phi : target->phis()) {
                for (size_t i = phi->blockOperands().size(); i-- > 0;) {
                    if (phi->blockOperands()[i] != block)
                        continue;
                    Value *value = phi->operand(i);
                    phi->removeIncoming(i);
                    for (BasicBlock *pred : block_preds)
                        phi->addIncoming(value, pred);
                }
            }
            // Maintain the lists: target loses the edge from `block`
            // and gains every redirected edge; nothing reaches
            // `block` any more.
            std::vector<BasicBlock *> &target_preds =
                preds[target->indexInFn()];
            for (size_t i = 0; i < target_preds.size(); ++i) {
                if (target_preds[i] == block) {
                    target_preds.erase(target_preds.begin() +
                                       static_cast<ptrdiff_t>(i));
                    break;
                }
            }
            target_preds.insert(target_preds.end(),
                                block_preds.begin(),
                                block_preds.end());
            block_preds.clear();
            skipped.push_back(block);
        }
        for (BasicBlock *block : skipped)
            fn.eraseBlock(block);
        return !skipped.empty();
    }

    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createSimplifyCfgPass()
{
    return std::make_unique<SimplifyCfg>();
}

} // namespace dce::opt
