#include "opt/pass.hpp"

#include "ir/verifier.hpp"

namespace dce::opt {

bool
PassManager::run(ir::Module &module, bool verify_each)
{
    bool changed = false;
    for (const auto &pass : passes_) {
        changed |= pass->run(module, config_);
        if (verify_each) {
            ir::VerifyResult result = ir::verifyModule(module);
            if (!result.ok()) {
                lastError_ = "after pass '" + pass->name() +
                             "':\n" + result.str();
                return changed;
            }
        }
    }
    return changed;
}

} // namespace dce::opt
