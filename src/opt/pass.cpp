#include "opt/pass.hpp"

#include <unordered_map>

#include "ir/cfg.hpp"
#include "ir/verifier.hpp"
#include "support/markers.hpp"
#include "support/trace.hpp"

namespace dce::opt {

namespace {

/**
 * Snapshot of the module used by the marker-elimination census: total
 * instruction count plus the number of live calls per marker index.
 * Declarations have no blocks, so markers themselves contribute
 * nothing; only call sites in defined functions are counted.
 */
struct ModuleCensus {
    uint64_t instrs = 0;
    std::unordered_map<unsigned, unsigned> markerCalls;
};

ModuleCensus
takeCensus(const ir::Module &module)
{
    ModuleCensus census;
    for (const auto &fn : module.functions()) {
        for (const auto &block : fn->blocks()) {
            census.instrs += block->instrs().size();
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() != ir::Opcode::Call)
                    continue;
                if (auto index = support::markerIndex(
                        instr->callee->name()))
                    ++census.markerCalls[*index];
            }
        }
    }
    return census;
}

} // namespace

void
reportUnreachableMarkerCalls(const ir::Function &fn,
                             const std::string &pass_name,
                             const PassContext &ctx, const char *why)
{
    if (!ctx.wantRemarks())
        return;
    if (fn.blocks().empty())
        return;
    std::unordered_set<const ir::BasicBlock *> reachable =
        ir::reachableBlocks(fn);
    for (const auto &block : fn.blocks()) {
        if (reachable.count(block.get()))
            continue;
        for (const auto &instr : block->instrs()) {
            if (instr->opcode() != ir::Opcode::Call)
                continue;
            auto index = support::markerIndex(instr->callee->name());
            if (!index)
                continue;
            ctx.remark(support::RemarkKind::MarkerCallRemoved,
                       pass_name, *index,
                       std::string("call in unreachable block '") +
                           block->name() + "' of '" + fn.name() +
                           "' removed (" + why + ")");
        }
    }
}

bool
PassManager::run(ir::Module &module, bool verify_each)
{
    // The census (and the per-pass instruction deltas riding on it)
    // only runs when an observability sink is attached — the default
    // pipeline keeps its old single-walk-free hot path.
    const bool census_wanted = remarks_ != nullptr ||
                               metrics_ != nullptr;
    ModuleCensus before;
    if (census_wanted)
        before = takeCensus(module);

    PassContext ctx;
    ctx.remarks = remarks_;
    ctx.metrics = metrics_;

    bool changed = false;
    for (size_t i = 0; i < passes_.size(); ++i) {
        Pass &pass = *passes_[i];
        ctx.passIndex = static_cast<unsigned>(i);

        // Pass names are cheap ("sccp") but must outlive the span;
        // keep the string on the stack for the duration.
        std::string pass_name;
        support::Tracer &tracer = support::Tracer::global();
        if (tracer.enabled())
            pass_name = pass.name();
        {
            support::TraceSpan span(pass_name.empty()
                                        ? std::string_view("pass")
                                        : std::string_view(pass_name),
                                    "pass");
            changed |= pass.run(module, config_, ctx);
        }

        if (census_wanted) {
            ModuleCensus after = takeCensus(module);
            if (remarks_) {
                // Authoritative attribution: a marker whose live-call
                // count went >0 → 0 died during this pass. Counts
                // cannot come back (inlining only clones existing
                // calls), so this fires at most once per marker.
                for (const auto &[marker, count] :
                     before.markerCalls) {
                    if (count == 0)
                        continue;
                    auto it = after.markerCalls.find(marker);
                    if (it != after.markerCalls.end() &&
                        it->second != 0)
                        continue;
                    if (pass_name.empty())
                        pass_name = pass.name();
                    remarks_->emit(
                        support::RemarkKind::MarkerEliminated,
                        pass_name, ctx.passIndex, marker,
                        "last call to " +
                            support::markerName(marker) +
                            " eliminated");
                }
            }
            if (metrics_) {
                if (pass_name.empty())
                    pass_name = pass.name();
                if (after.instrs < before.instrs) {
                    metrics_->counter("pass.instrs_removed", pass_name)
                        .add(before.instrs - after.instrs);
                } else if (after.instrs > before.instrs) {
                    metrics_->counter("pass.instrs_added", pass_name)
                        .add(after.instrs - before.instrs);
                }
            }
            before = std::move(after);
        }

        if (verify_each) {
            ir::VerifyResult result = ir::verifyModule(module);
            if (!result.ok()) {
                lastError_ = "after pass '" + pass.name() + "':\n" +
                             result.str();
                return changed;
            }
        }
    }
    return changed;
}

} // namespace dce::opt
