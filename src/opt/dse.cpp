/**
 * @file
 * Dead store elimination, two flavours:
 *
 *  - Intra-block: a store overwritten by a later MustAlias store with
 *    no possibly-aliasing read (or opaque call) in between is dead.
 *  - Exit DSE (D3 `dseAtExit`): a store to a non-escaping *internal*
 *    global is dead when no load of that global can execute between
 *    the store and program exit. This is what removes the trailing
 *    `c = 0;` of the paper's Listing 1 — GCC's missing capability
 *    (`movl $0, c(%rip)` survives in its assembly).
 *
 * Exit DSE is sound in our setting because internal globals are
 * unobservable after main returns (see interp's snapshot policy).
 */
#include <unordered_map>

#include "ir/cfg.hpp"
#include "opt/alias.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Function;
using ir::GlobalVar;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class Dse : public Pass {
  public:
    explicit Dse(bool allow_exit_dse) : allowExitDse_(allow_exit_dse) {}

    std::string name() const override { return "dse"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        bool exit_dse = config.dseAtExit && allowExitDse_;
        if (!config.dseIntraBlock && !exit_dse)
            return false;
        EscapeInfo escape(module);
        MemorySummary summary(module, escape);

        bool changed = false;
        if (config.dseIntraBlock) {
            for (const auto &fn : module.functions()) {
                for (const auto &block : fn->blocks())
                    changed |= intraBlock(*block, summary);
            }
        }
        if (exit_dse) {
            Function *main_fn = module.getFunction("main");
            if (main_fn && !main_fn->isDeclaration()) {
                for (const auto &global : module.globals()) {
                    if (global->isInternal() &&
                        !escape.escapes(global.get())) {
                        changed |= exitDse(*main_fn, *global, summary);
                    }
                }
            }
        }
        return changed;
    }

  private:
    bool allowExitDse_;

    bool
    intraBlock(BasicBlock &block, const MemorySummary &summary)
    {
        bool changed = false;
        for (size_t i = 0; i < block.size(); ++i) {
            Instr *store = block.instrs()[i].get();
            if (store->opcode() != Opcode::Store)
                continue;
            Value *ptr = store->operand(1);
            // Scan forward for an overwriting store.
            for (size_t j = i + 1; j < block.size(); ++j) {
                Instr *later = block.instrs()[j].get();
                if (later->opcode() == Opcode::Load) {
                    if (alias(later->operand(0), ptr) !=
                        AliasResult::NoAlias) {
                        break; // value may be read: store is live
                    }
                } else if (later->opcode() == Opcode::Call) {
                    if (callMayReadPtr(*later, ptr, summary))
                        break;
                } else if (later->opcode() == Opcode::Store) {
                    AliasResult overlap =
                        alias(later->operand(1), ptr);
                    if (overlap == AliasResult::MustAlias) {
                        block.erase(store);
                        changed = true;
                        --i; // indices shifted left
                        break;
                    }
                    // MayAlias store: neither kills nor reads; keep
                    // scanning (a read would still break out).
                } else if (later->isTerminator()) {
                    break;
                }
            }
        }
        return changed;
    }

    static bool
    callMayReadPtr(const Instr &call, const Value *ptr,
                   const MemorySummary &summary)
    {
        PtrBase base = resolvePtrBase(ptr);
        if (base.kind == PtrBase::Kind::Global) {
            const auto *g = static_cast<const GlobalVar *>(base.object);
            return summary.mayRead(call.callee, g) ||
                   summary.readsUnknown(call.callee);
        }
        // Unknown or alloca bases: be conservative.
        return true;
    }

    /** May any instruction from @p block's start to program exit read
     * @p g? Computed per block with a backward fixpoint. */
    bool
    exitDse(Function &main_fn, const GlobalVar &g,
            const MemorySummary &summary)
    {
        auto readsG = [&](const Instr &instr) {
            if (instr.opcode() == Opcode::Load) {
                PtrBase base = resolvePtrBase(instr.operand(0));
                // g does not escape: only resolved pointers reach it.
                return base.kind == PtrBase::Kind::Global &&
                       base.object == &g;
            }
            if (instr.opcode() == Opcode::Call)
                return summary.mayRead(instr.callee, &g);
            return false;
        };

        std::unordered_map<const BasicBlock *, bool> read_from_start;
        for (const auto &block : main_fn.blocks())
            read_from_start[block.get()] = false;
        bool iterate = true;
        while (iterate) {
            iterate = false;
            for (const auto &block : main_fn.blocks()) {
                bool reads = false;
                for (const auto &instr : block->instrs()) {
                    if (readsG(*instr)) {
                        reads = true;
                        break;
                    }
                }
                if (!reads) {
                    for (BasicBlock *succ : block->successors())
                        reads |= read_from_start.at(succ);
                }
                if (reads != read_from_start.at(block.get())) {
                    read_from_start[block.get()] = reads;
                    iterate = true;
                }
            }
        }

        bool changed = false;
        for (const auto &block : main_fn.blocks()) {
            for (size_t i = 0; i < block->size();) {
                Instr *store = block->instrs()[i].get();
                bool erased = false;
                if (store->opcode() == Opcode::Store) {
                    PtrBase base = resolvePtrBase(store->operand(1));
                    if (base.kind == PtrBase::Kind::Global &&
                        base.object == &g &&
                        !readAfter(*block, i + 1, readsG,
                                   read_from_start)) {
                        block->erase(store);
                        changed = true;
                        erased = true;
                    }
                }
                if (!erased)
                    ++i;
            }
        }
        return changed;
    }

    template <typename ReadsFn>
    static bool
    readAfter(const BasicBlock &block, size_t from, ReadsFn &&reads_g,
              const std::unordered_map<const BasicBlock *, bool>
                  &read_from_start)
    {
        for (size_t i = from; i < block.size(); ++i) {
            if (reads_g(*block.instrs()[i]))
                return true;
        }
        for (BasicBlock *succ : block.successors()) {
            if (read_from_start.at(succ))
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Pass>
createDsePass(bool allow_exit_dse)
{
    return std::make_unique<Dse>(allow_exit_dse);
}

} // namespace dce::opt
