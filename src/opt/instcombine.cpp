/**
 * @file
 * InstCombine: local peephole simplification — constant folding,
 * algebraic identities, comparison canonicalization, cast and select
 * folding, and constant-address pointer comparisons.
 *
 * Two engineered capability knobs live here (DESIGN.md §6):
 *  - D2 `foldPtrCmpAnyOffset`: with the flag off, `&a == &b[k]` only
 *    folds for k == 0, reproducing LLVM's EarlyCSE miss (Listing 3,
 *    PR49434).
 *  - `foldFreezeOfConstant`: freeze(C) -> C. Off reproduces the
 *    constant-folding blindness behind the unswitch regressions.
 */
#include "ir/cfg.hpp"
#include "opt/alias.hpp"
#include "opt/pass.hpp"
#include "support/ints.hpp"

namespace dce::opt {

using ir::BinOp;
using ir::CmpPred;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

int64_t
constVal(const Value *value)
{
    return static_cast<const Constant *>(value)->value();
}

class InstCombine : public Pass {
  public:
    std::string name() const override { return "instcombine"; }

    bool
    run(Module &module, const PassConfig &config, PassContext &) override
    {
        if (!config.instCombine)
            return false;
        module_ = &module;
        config_ = &config;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (fn->isDeclaration())
                continue;
            while (sweep(*fn))
                changed = true;
        }
        return changed;
    }

  private:
    bool
    sweep(Function &fn)
    {
        bool changed = false;
        for (const auto &block : fn.blocks()) {
            for (size_t i = 0; i < block->size();) {
                Instr *instr = block->instrs()[i].get();
                Value *simplified = simplify(*instr);
                if (simplified && simplified != instr) {
                    instr->replaceAllUsesWith(simplified);
                    block->erase(instr);
                    changed = true;
                    continue; // same index now holds the next instr
                }
                ++i;
            }
        }
        return changed;
    }

    Constant *
    intConst(IrType type, int64_t value)
    {
        return module_->constant(type, value);
    }

    Value *
    simplify(Instr &instr)
    {
        switch (instr.opcode()) {
          case Opcode::Bin:
            return simplifyBin(instr);
          case Opcode::Cmp:
            return simplifyCmp(instr);
          case Opcode::Cast: {
            Value *sub = instr.operand(0);
            if (sub->isConstant()) {
                IrType to = instr.type();
                return intConst(to,
                                wrapInt(constVal(sub), to.bits,
                                        to.isSigned));
            }
            return nullptr;
          }
          case Opcode::Freeze: {
            Value *sub = instr.operand(0);
            // freeze(freeze x) -> freeze x always.
            if (sub->isInstruction() &&
                static_cast<Instr *>(sub)->opcode() == Opcode::Freeze) {
                return sub;
            }
            if (sub->isConstant() && config_->foldFreezeOfConstant)
                return sub;
            return nullptr;
          }
          case Opcode::Select: {
            Value *cond = instr.operand(0);
            if (cond->isConstant())
                return instr.operand(constVal(cond) != 0 ? 1 : 2);
            if (instr.operand(1) == instr.operand(2))
                return instr.operand(1);
            return nullptr;
          }
          case Opcode::Gep: {
            // gep p, 0 -> p.
            Value *index = instr.operand(1);
            if (index->isConstant() && constVal(index) == 0)
                return instr.operand(0);
            return nullptr;
          }
          default:
            return nullptr;
        }
    }

    Value *
    simplifyBin(Instr &instr)
    {
        Value *lhs = instr.operand(0);
        Value *rhs = instr.operand(1);
        IrType type = instr.type();

        if (lhs->isConstant() && rhs->isConstant()) {
            int64_t a = constVal(lhs);
            int64_t b = constVal(rhs);
            int64_t result;
            switch (instr.binOp) {
              case BinOp::Add:
                result = addInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Sub:
                result = subInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Mul:
                result = mulInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Div:
                result = divInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Rem:
                result = remInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Shl:
                result = shlInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::Shr:
                result = shrInt(a, b, type.bits, type.isSigned);
                break;
              case BinOp::And:
                result = wrapInt(a & b, type.bits, type.isSigned);
                break;
              case BinOp::Or:
                result = wrapInt(a | b, type.bits, type.isSigned);
                break;
              case BinOp::Xor:
                result = wrapInt(a ^ b, type.bits, type.isSigned);
                break;
              default:
                return nullptr;
            }
            return intConst(type, result);
        }

        bool lhs_zero = lhs->isConstant() && constVal(lhs) == 0;
        bool rhs_zero = rhs->isConstant() && constVal(rhs) == 0;
        bool lhs_one = lhs->isConstant() && constVal(lhs) == 1;
        bool rhs_one = rhs->isConstant() && constVal(rhs) == 1;

        switch (instr.binOp) {
          case BinOp::Add:
            if (lhs_zero)
                return rhs;
            if (rhs_zero)
                return lhs;
            break;
          case BinOp::Sub:
            if (rhs_zero)
                return lhs;
            if (lhs == rhs)
                return intConst(type, 0);
            break;
          case BinOp::Mul:
            if (lhs_zero || rhs_zero)
                return intConst(type, 0);
            if (lhs_one)
                return rhs;
            if (rhs_one)
                return lhs;
            break;
          case BinOp::Div:
            if (rhs_one)
                return lhs;
            if (rhs_zero)
                return lhs; // MiniC safe math: x / 0 == x
            break;
          case BinOp::Rem:
            if (rhs_one)
                return intConst(type, 0);
            if (rhs_zero)
                return lhs; // x % 0 == x
            break;
          case BinOp::Shl:
          case BinOp::Shr:
            if (rhs_zero)
                return lhs;
            if (lhs_zero)
                return intConst(type, 0);
            break;
          case BinOp::And:
            if (lhs_zero || rhs_zero)
                return intConst(type, 0);
            if (lhs == rhs)
                return lhs;
            break;
          case BinOp::Or:
            if (lhs_zero)
                return rhs;
            if (rhs_zero)
                return lhs;
            if (lhs == rhs)
                return lhs;
            break;
          case BinOp::Xor:
            if (lhs_zero)
                return rhs;
            if (rhs_zero)
                return lhs;
            if (lhs == rhs)
                return intConst(type, 0);
            break;
        }
        return nullptr;
    }

    Value *
    simplifyCmp(Instr &instr)
    {
        Value *lhs = instr.operand(0);
        Value *rhs = instr.operand(1);
        IrType i32 = IrType::i32();

        if (lhs->type().isPtr())
            return simplifyPtrCmp(instr);

        if (lhs->isConstant() && rhs->isConstant()) {
            int64_t a = constVal(lhs);
            int64_t b = constVal(rhs);
            bool result;
            switch (instr.cmpPred) {
              case CmpPred::Eq: result = a == b; break;
              case CmpPred::Ne: result = a != b; break;
              case CmpPred::Slt: result = a < b; break;
              case CmpPred::Sle: result = a <= b; break;
              case CmpPred::Sgt: result = a > b; break;
              case CmpPred::Sge: result = a >= b; break;
              case CmpPred::Ult:
                result = static_cast<uint64_t>(a) <
                         static_cast<uint64_t>(b);
                break;
              case CmpPred::Ule:
                result = static_cast<uint64_t>(a) <=
                         static_cast<uint64_t>(b);
                break;
              case CmpPred::Ugt:
                result = static_cast<uint64_t>(a) >
                         static_cast<uint64_t>(b);
                break;
              case CmpPred::Uge:
                result = static_cast<uint64_t>(a) >=
                         static_cast<uint64_t>(b);
                break;
              default:
                return nullptr;
            }
            return intConst(i32, result ? 1 : 0);
        }

        if (lhs == rhs) {
            switch (instr.cmpPred) {
              case CmpPred::Eq:
              case CmpPred::Sle:
              case CmpPred::Sge:
              case CmpPred::Ule:
              case CmpPred::Uge:
                return intConst(i32, 1);
              default:
                return intConst(i32, 0);
            }
        }

        // Bool canonicalization: comparisons against 0 of a value that
        // is itself a 0/1 comparison.
        if (rhs->isConstant() && constVal(rhs) == 0 &&
            lhs->isInstruction()) {
            Instr *inner = static_cast<Instr *>(lhs);
            if (inner->opcode() == Opcode::Cmp) {
                if (instr.cmpPred == CmpPred::Ne)
                    return inner; // (x cmp y) != 0  ->  x cmp y
                if (instr.cmpPred == CmpPred::Eq) {
                    // (x cmp y) == 0 -> inverse comparison; reuse the
                    // inner instruction only if we may mutate a copy —
                    // build a fresh one in place instead.
                    auto inverse = module_->newInstr(Opcode::Cmp,
                                                           i32);
                    inverse->cmpPred = ir::cmpPredInverse(inner->cmpPred);
                    inverse->addOperand(inner->operand(0));
                    inverse->addOperand(inner->operand(1));
                    inverse->setId(module_->nextValueId());
                    ir::BasicBlock *block = instr.parent();
                    return block->insertBefore(block->indexOf(&instr),
                                               std::move(inverse));
                }
            }
        }
        return nullptr;
    }

    Value *
    simplifyPtrCmp(Instr &instr)
    {
        Value *lhs = instr.operand(0);
        Value *rhs = instr.operand(1);
        IrType i32 = IrType::i32();
        bool is_eq = instr.cmpPred == CmpPred::Eq;
        bool is_ne = instr.cmpPred == CmpPred::Ne;
        if (!is_eq && !is_ne)
            return nullptr; // relational pointer compares: leave alone

        // Null comparisons: the address of a global/alloca is never
        // null.
        // Freeze is deliberately opaque to these folds (the regression
        // mechanism); alias *queries* may look through it, folds not.
        auto null_cmp = [&](Value *maybe_null,
                            Value *pointer) -> Value * {
            if (!maybe_null->isConstant())
                return nullptr;
            PtrBase base =
                resolvePtrBase(pointer, /*look_through_freeze=*/false);
            if (!base.isIdentified())
                return nullptr;
            return intConst(i32, is_eq ? 0 : 1);
        };
        if (Value *folded = null_cmp(rhs, lhs))
            return folded;
        if (Value *folded = null_cmp(lhs, rhs))
            return folded;

        PtrBase base_a =
            resolvePtrBase(lhs, /*look_through_freeze=*/false);
        PtrBase base_b =
            resolvePtrBase(rhs, /*look_through_freeze=*/false);
        if (!base_a.isIdentified() || !base_b.isIdentified())
            return nullptr;

        if (base_a.object == base_b.object) {
            if (base_a.offset && base_b.offset) {
                bool equal = *base_a.offset == *base_b.offset;
                return intConst(i32, equal == is_eq ? 1 : 0);
            }
            return nullptr;
        }

        // Distinct objects never compare equal in MiniC. D2: the
        // weakened configuration only folds when both sides point at
        // their object's first element (LLVM's EarlyCSE miss on
        // &a == &b[1], Listing 3).
        if (!config_->foldPtrCmpAnyOffset) {
            bool both_zero = base_a.offset && *base_a.offset == 0 &&
                             base_b.offset && *base_b.offset == 0;
            if (!both_zero)
                return nullptr;
        }
        return intConst(i32, is_eq ? 0 : 1);
    }

    Module *module_ = nullptr;
    const PassConfig *config_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createInstCombinePass()
{
    return std::make_unique<InstCombine>();
}

} // namespace dce::opt
