/**
 * @file
 * mem2reg: promote scalar allocas whose address does not escape into
 * SSA values, inserting phis at iterated dominance frontiers (the
 * classic Cytron et al. construction). This is the first pass of every
 * -O1+ pipeline; everything downstream (SCCP, GVN, VRP, ...) operates
 * on the SSA form it produces.
 *
 * MiniC allocas are zero-initialized, so the "live-in at entry" value
 * of a promoted alloca is the constant 0 of its type (not undef).
 */
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "opt/pass.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class Mem2Reg : public Pass {
  public:
    std::string name() const override { return "mem2reg"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.mem2reg)
            return false;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (!fn->isDeclaration())
                changed |= runOnFunction(*fn, module);
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    static bool
    isPromotable(const Instr &alloca_instr)
    {
        if (alloca_instr.allocaIsArray || alloca_instr.allocatedCount != 1)
            return false;
        for (const Instr *user : alloca_instr.users()) {
            switch (user->opcode()) {
              case Opcode::Load:
                break;
              case Opcode::Store:
                if (user->operand(0) == &alloca_instr)
                    return false; // address stored somewhere
                break;
              default:
                return false; // gep / call / cmp / phi: address taken
            }
        }
        return true;
    }

    bool
    runOnFunction(Function &fn, Module &module)
    {
        if (ctx_ && ctx_->wantRemarks()) {
            reportUnreachableMarkerCalls(fn, name(), *ctx_,
                                         "pre-promotion CFG cleanup");
        }
        ir::removeUnreachableBlocks(fn);

        // Collect promotable allocas (lowering clusters them in entry,
        // but the inliner may leave them elsewhere; accept any block).
        std::vector<Instr *> allocas;
        for (const auto &block : fn.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Alloca &&
                    isPromotable(*instr)) {
                    allocas.push_back(instr.get());
                }
            }
        }
        if (allocas.empty())
            return false;

        ir::DominatorTree domtree(fn);
        auto preds = ir::predecessorMap(fn);

        // Dominance frontiers (Cooper-Harvey-Kennedy).
        std::unordered_map<const BasicBlock *,
                           std::unordered_set<BasicBlock *>>
            frontier;
        for (BasicBlock *block : domtree.rpo()) {
            const auto &block_preds = preds.at(block);
            if (block_preds.size() < 2)
                continue;
            for (BasicBlock *pred : block_preds) {
                if (!domtree.isReachable(pred))
                    continue;
                const BasicBlock *runner = pred;
                while (runner && runner != domtree.idom(block)) {
                    frontier[runner].insert(block);
                    runner = domtree.idom(runner);
                }
            }
        }

        std::unordered_map<const Instr *, size_t> alloca_index;
        for (size_t i = 0; i < allocas.size(); ++i)
            alloca_index[allocas[i]] = i;

        // Phi placement at iterated dominance frontiers of defs.
        // phi_for[block][i] is the phi merging alloca i at block.
        std::unordered_map<const BasicBlock *,
                           std::unordered_map<size_t, Instr *>>
            phi_for;
        for (size_t i = 0; i < allocas.size(); ++i) {
            std::vector<BasicBlock *> worklist;
            std::unordered_set<const BasicBlock *> has_def;
            // The alloca itself defines the value 0 at its position
            // (MiniC zero-initialization): an alloca re-executed in a
            // loop resets its slot, and renaming below honours that.
            has_def.insert(allocas[i]->parent());
            worklist.push_back(allocas[i]->parent());
            for (const Instr *user : allocas[i]->users()) {
                if (user->opcode() == Opcode::Store &&
                    has_def.insert(user->parent()).second) {
                    worklist.push_back(user->parent());
                }
            }
            std::unordered_set<const BasicBlock *> has_phi;
            while (!worklist.empty()) {
                BasicBlock *def_block = worklist.back();
                worklist.pop_back();
                auto frontier_it = frontier.find(def_block);
                if (frontier_it == frontier.end())
                    continue;
                for (BasicBlock *join : frontier_it->second) {
                    if (!has_phi.insert(join).second)
                        continue;
                    auto phi = std::make_unique<Instr>(
                        Opcode::Phi, allocas[i]->allocatedType);
                    phi->setId(module.nextValueId());
                    Instr *placed = join->insertBefore(0, std::move(phi));
                    phi_for[join][i] = placed;
                    if (has_def.insert(join).second)
                        worklist.push_back(join);
                }
            }
        }

        // Rename along the dominator tree.
        std::unordered_map<const BasicBlock *,
                           std::vector<BasicBlock *>>
            dom_children;
        for (BasicBlock *block : domtree.rpo()) {
            if (const BasicBlock *parent = domtree.idom(block)) {
                dom_children[parent].push_back(block);
            }
        }

        std::vector<Instr *> to_erase;
        std::vector<Value *> initial(allocas.size());
        for (size_t i = 0; i < allocas.size(); ++i) {
            IrType type = allocas[i]->allocatedType;
            initial[i] =
                type.isPtr()
                    ? static_cast<Value *>(module.constant(type, 0))
                    : module.constant(type, 0);
        }

        struct Frame {
            BasicBlock *block;
            std::vector<Value *> values;
        };
        std::vector<Frame> stack;
        stack.push_back({fn.entry(), initial});

        while (!stack.empty()) {
            Frame frame = std::move(stack.back());
            stack.pop_back();
            BasicBlock *block = frame.block;
            std::vector<Value *> &values = frame.values;

            auto phis_here = phi_for.find(block);
            if (phis_here != phi_for.end()) {
                for (auto &[index, phi] : phis_here->second)
                    values[index] = phi;
            }

            for (const auto &owned : block->instrs()) {
                Instr *instr = owned.get();
                if (instr->opcode() == Opcode::Alloca) {
                    auto it = alloca_index.find(instr);
                    if (it != alloca_index.end())
                        values[it->second] = initial[it->second];
                } else if (instr->opcode() == Opcode::Load &&
                    instr->operand(0)->isInstruction()) {
                    auto it = alloca_index.find(
                        static_cast<const Instr *>(instr->operand(0)));
                    if (it != alloca_index.end()) {
                        instr->replaceAllUsesWith(values[it->second]);
                        to_erase.push_back(instr);
                    }
                } else if (instr->opcode() == Opcode::Store &&
                           instr->operand(1)->isInstruction()) {
                    auto it = alloca_index.find(
                        static_cast<const Instr *>(instr->operand(1)));
                    if (it != alloca_index.end()) {
                        values[it->second] = instr->operand(0);
                        to_erase.push_back(instr);
                    }
                }
            }

            // Feed successors' phis.
            for (BasicBlock *succ : block->successors()) {
                auto succ_phis = phi_for.find(succ);
                if (succ_phis == phi_for.end())
                    continue;
                for (auto &[index, phi] : succ_phis->second)
                    phi->addIncoming(values[index], block);
            }

            auto children = dom_children.find(block);
            if (children != dom_children.end()) {
                for (BasicBlock *child : children->second)
                    stack.push_back({child, values});
            }
        }

        for (Instr *instr : to_erase)
            instr->parent()->erase(instr);
        for (Instr *alloca_instr : allocas)
            alloca_instr->parent()->erase(alloca_instr);

        // A CondBr with both edges to the same block makes its target's
        // phis receive the same incoming twice — consistent with the
        // predecessor multiset, so nothing special is needed here.
        return true;
    }

    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createMem2RegPass()
{
    return std::make_unique<Mem2Reg>();
}

} // namespace dce::opt
