/**
 * @file
 * mem2reg: promote scalar allocas whose address does not escape into
 * SSA values, inserting phis at iterated dominance frontiers (the
 * classic Cytron et al. construction). This is the first pass of every
 * -O1+ pipeline; everything downstream (SCCP, GVN, VRP, ...) operates
 * on the SSA form it produces.
 *
 * MiniC allocas are zero-initialized, so the "live-in at entry" value
 * of a promoted alloca is the constant 0 of its type (not undef).
 */
#include <utility>
#include <vector>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"
#include "opt/pass.hpp"
#include "support/small_vector.hpp"

namespace dce::opt {

using ir::BasicBlock;
using ir::Constant;
using ir::Function;
using ir::Instr;
using ir::IrType;
using ir::Module;
using ir::Opcode;
using ir::Value;

namespace {

class Mem2Reg : public Pass {
  public:
    std::string name() const override { return "mem2reg"; }

    bool
    run(Module &module, const PassConfig &config,
        PassContext &ctx) override
    {
        if (!config.mem2reg)
            return false;
        ctx_ = &ctx;
        bool changed = false;
        for (const auto &fn : module.functions()) {
            if (!fn->isDeclaration())
                changed |= runOnFunction(*fn, module);
        }
        ctx_ = nullptr;
        return changed;
    }

  private:
    static bool
    isPromotable(const Instr &alloca_instr)
    {
        if (alloca_instr.allocaIsArray || alloca_instr.allocatedCount != 1)
            return false;
        for (const Instr *user : alloca_instr.users()) {
            switch (user->opcode()) {
              case Opcode::Load:
                break;
              case Opcode::Store:
                if (user->operand(0) == &alloca_instr)
                    return false; // address stored somewhere
                break;
              default:
                return false; // gep / call / cmp / phi: address taken
            }
        }
        return true;
    }

    bool
    runOnFunction(Function &fn, Module &module)
    {
        if (ctx_ && ctx_->wantRemarks()) {
            reportUnreachableMarkerCalls(fn, name(), *ctx_,
                                         "pre-promotion CFG cleanup");
        }
        ir::removeUnreachableBlocks(fn);

        // Collect promotable allocas (lowering clusters them in entry,
        // but the inliner may leave them elsewhere; accept any block).
        std::vector<Instr *> allocas;
        for (const auto &block : fn.blocks()) {
            for (const auto &instr : block->instrs()) {
                if (instr->opcode() == Opcode::Alloca &&
                    isPromotable(*instr)) {
                    allocas.push_back(instr.get());
                }
            }
        }
        if (allocas.empty())
            return false;

        ir::DominatorTree domtree(fn);
        auto preds = ir::predecessorMap(fn);
        const size_t num_blocks = fn.numBlocks();

        // Dominance frontiers (Cooper-Harvey-Kennedy), flat by block
        // index with small-list dedup.
        std::vector<support::SmallVector<BasicBlock *, 2>> frontier(
            num_blocks);
        for (BasicBlock *block : domtree.rpo()) {
            const auto &block_preds = preds.at(block);
            if (block_preds.size() < 2)
                continue;
            for (BasicBlock *pred : block_preds) {
                if (!domtree.isReachable(pred))
                    continue;
                const BasicBlock *runner = pred;
                while (runner && runner != domtree.idom(block)) {
                    auto &list = frontier[runner->indexInFn()];
                    bool seen = false;
                    for (BasicBlock *b : list)
                        seen |= b == block;
                    if (!seen)
                        list.push_back(block);
                    runner = domtree.idom(runner);
                }
            }
        }

        // Which alloca (if any) a value id names; sized before phi
        // creation, so lookups bounds-check against it.
        const unsigned id_bound = module.valueIdBound();
        std::vector<int> alloca_of_id(id_bound, -1);
        for (size_t i = 0; i < allocas.size(); ++i)
            alloca_of_id[allocas[i]->id()] = static_cast<int>(i);
        auto alloca_index = [&](const Value *value) -> int {
            if (!value->isInstruction() || value->id() >= id_bound)
                return -1;
            return alloca_of_id[value->id()];
        };

        // Phi placement at iterated dominance frontiers of defs.
        // phi_for[block][..] are the (alloca, phi) pairs merging at
        // that block.
        struct PhiSlot {
            size_t index;
            Instr *phi;
        };
        std::vector<support::SmallVector<PhiSlot, 2>> phi_for(
            num_blocks);
        std::vector<unsigned char> has_def(num_blocks);
        std::vector<unsigned char> has_phi(num_blocks);
        for (size_t i = 0; i < allocas.size(); ++i) {
            std::vector<BasicBlock *> worklist;
            has_def.assign(num_blocks, 0);
            has_phi.assign(num_blocks, 0);
            // The alloca itself defines the value 0 at its position
            // (MiniC zero-initialization): an alloca re-executed in a
            // loop resets its slot, and renaming below honours that.
            has_def[allocas[i]->parent()->indexInFn()] = 1;
            worklist.push_back(allocas[i]->parent());
            for (const Instr *user : allocas[i]->users()) {
                unsigned char &defined =
                    has_def[user->parent()->indexInFn()];
                if (user->opcode() == Opcode::Store && !defined) {
                    defined = 1;
                    worklist.push_back(user->parent());
                }
            }
            while (!worklist.empty()) {
                BasicBlock *def_block = worklist.back();
                worklist.pop_back();
                for (BasicBlock *join :
                     frontier[def_block->indexInFn()]) {
                    unsigned char &placed_here =
                        has_phi[join->indexInFn()];
                    if (placed_here)
                        continue;
                    placed_here = 1;
                    auto phi = module.newInstr(
                        Opcode::Phi, allocas[i]->allocatedType);
                    phi->setId(module.nextValueId());
                    Instr *placed = join->insertBefore(0, std::move(phi));
                    phi_for[join->indexInFn()].push_back({i, placed});
                    unsigned char &defined =
                        has_def[join->indexInFn()];
                    if (!defined) {
                        defined = 1;
                        worklist.push_back(join);
                    }
                }
            }
        }

        // Rename along the dominator tree.
        std::vector<std::vector<BasicBlock *>> dom_children(num_blocks);
        for (BasicBlock *block : domtree.rpo()) {
            if (const BasicBlock *parent = domtree.idom(block)) {
                dom_children[parent->indexInFn()].push_back(block);
            }
        }

        std::vector<Instr *> to_erase;
        std::vector<Value *> initial(allocas.size());
        for (size_t i = 0; i < allocas.size(); ++i) {
            IrType type = allocas[i]->allocatedType;
            initial[i] =
                type.isPtr()
                    ? static_cast<Value *>(module.constant(type, 0))
                    : module.constant(type, 0);
        }

        struct Frame {
            BasicBlock *block;
            std::vector<Value *> values;
        };
        std::vector<Frame> stack;
        stack.push_back({fn.entry(), initial});

        while (!stack.empty()) {
            Frame frame = std::move(stack.back());
            stack.pop_back();
            BasicBlock *block = frame.block;
            std::vector<Value *> &values = frame.values;

            for (auto &[index, phi] : phi_for[block->indexInFn()])
                values[index] = phi;

            for (const auto &owned : block->instrs()) {
                Instr *instr = owned.get();
                if (instr->opcode() == Opcode::Alloca) {
                    int index = alloca_index(instr);
                    if (index >= 0)
                        values[index] = initial[index];
                } else if (instr->opcode() == Opcode::Load) {
                    int index = alloca_index(instr->operand(0));
                    if (index >= 0) {
                        instr->replaceAllUsesWith(values[index]);
                        to_erase.push_back(instr);
                    }
                } else if (instr->opcode() == Opcode::Store) {
                    int index = alloca_index(instr->operand(1));
                    if (index >= 0) {
                        values[index] = instr->operand(0);
                        to_erase.push_back(instr);
                    }
                }
            }

            // Feed successors' phis.
            for (BasicBlock *succ : block->successors()) {
                for (auto &[index, phi] : phi_for[succ->indexInFn()])
                    phi->addIncoming(values[index], block);
            }

            for (BasicBlock *child : dom_children[block->indexInFn()])
                stack.push_back({child, values});
        }

        for (Instr *instr : to_erase)
            instr->parent()->erase(instr);
        for (Instr *alloca_instr : allocas)
            alloca_instr->parent()->erase(alloca_instr);

        // A CondBr with both edges to the same block makes its target's
        // phis receive the same incoming twice — consistent with the
        // predecessor multiset, so nothing special is needed here.
        return true;
    }

    PassContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<Pass>
createMem2RegPass()
{
    return std::make_unique<Mem2Reg>();
}

} // namespace dce::opt
