/**
 * @file
 * Crash-safe campaign checkpoint/resume on top of CorpusStore
 * (DESIGN.md §11). A CampaignPlan pins everything that determines the
 * campaign's output — seed derivation, builds, generator config,
 * chunk granule — and runCheckpointed executes it chunk by chunk,
 * committing each finished chunk's records to the store and
 * periodically writing a checkpoint naming the completed chunks, the
 * RNG stream state at the contiguous watermark, the deterministic
 * campaign counters, and the findings so far.
 *
 * The recovery contract: kill the process at any point, call
 * resumeCampaign on the same store, and the finished campaign —
 * records, findings list, killer-pass histograms, deterministic
 * metrics summary — is byte-identical to an uninterrupted run at any
 * thread count. That holds because (a) chunks are pure functions of
 * the plan, (b) a chunk's metrics are confined to a chunk-local
 * registry until its commit, so checkpointed counters reflect exactly
 * the committed chunks, and (c) the store flushes before each
 * checkpoint, so a checkpoint never names undurable state. Chunks
 * committed after the last checkpoint are simply re-run on resume.
 */
#pragma once

#include <climits>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "corpus/json.hpp"
#include "corpus/store.hpp"
#include "support/events.hpp"

namespace dce::corpus {

/**
 * Everything that determines a checkpointable campaign's output.
 * Serialized into every checkpoint; resuming against a store whose
 * checkpoint pins a different plan is a PlanMismatch error.
 */
struct CampaignPlan {
    /** Seed derivation: sequential [firstSeed, firstSeed + count), or
     * — when randomSeeds — count draws from an Rng(streamSeed)
     * stream, which exercises the checkpointed RNG state. */
    uint64_t firstSeed = 0;
    uint64_t count = 0;
    bool randomSeeds = false;
    uint64_t streamSeed = 0;
    /** Scheduling granule in seeds. Part of the plan (not a tuning
     * knob): chunk identity is the unit of commitment and resume. */
    unsigned chunkSize = 16;

    std::vector<core::BuildSpec> builds;
    bool computePrimary = true;
    bool collectRemarks = false;
    gen::GenConfig generator;

    /** Finding extraction pair (indices into builds); SIZE_MAX
     * disables extraction. */
    size_t missedByBuild = SIZE_MAX;
    size_t referenceBuild = SIZE_MAX;
    unsigned maxFindings = UINT_MAX;
};

/** Canonical JSON form of @p plan (checkpoint field / equality). */
std::string serializePlan(const CampaignPlan &plan);
std::optional<CampaignPlan> readPlan(const JsonValue &value);

/**
 * Thread-safe snapshot of a checkpointed campaign's committed
 * progress, published by runCheckpointed at each checkpoint commit
 * (plus once at start with the restored state and once at the end).
 * The live ops server's /progress endpoint reads it (DESIGN.md §14).
 *
 * The board deliberately carries *checkpoint-committed* state only —
 * it is updated at the same instant the campaign.progress counters
 * are set, just before the checkpoint JSON is built, so /progress,
 * /metrics, and the durable checkpoint all name the same numbers.
 * Chunks committed to the store after the latest checkpoint are not
 * reflected until the next one.
 */
class CampaignStatusBoard {
  public:
    struct Snapshot {
        bool active = false;   ///< a run is currently attached
        bool complete = false; ///< every chunk committed
        std::string planHash;  ///< fnv1a64Hex(serializePlan(plan))
        uint64_t seedsTotal = 0;
        uint64_t chunksTotal = 0;
        uint64_t completedChunks = 0;
        uint64_t watermark = 0; ///< contiguous completed-chunk prefix
        uint64_t seedsCommitted = 0;
        uint64_t findings = 0;
        uint64_t checkpoints = 0; ///< written this run
        uint64_t startUs = 0;  ///< steady-clock µs at run start
        uint64_t updateUs = 0; ///< steady-clock µs at this publish
        /** Σ campaign.stage_us{*} sums at publish — the committed
         * pipeline microseconds behind the seeds/s rate. */
        uint64_t stageUs = 0;
        /** campaign.cache_hits / campaign.cache_misses at publish —
         * the inputs to the cache-hit-rate time series. */
        uint64_t cacheHits = 0;
        uint64_t cacheMisses = 0;
    };

    void
    publish(const Snapshot &snapshot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot_ = snapshot;
    }

    Snapshot
    read() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return snapshot_;
    }

  private:
    mutable std::mutex mutex_;
    Snapshot snapshot_;
};

struct CheckpointRunOptions {
    /** Worker threads; 1 = serial, 0 = one per hardware thread.
     * Never affects the result. */
    unsigned threads = 1;
    /** Checkpoint cadence in committed chunks. */
    unsigned checkpointEveryChunks = 4;
    /**
     * Test hook simulating a crash: stop claiming chunks after this
     * many commits this run (0 = run to completion). The returned
     * result has completed = false; a subsequent run picks up from
     * the last checkpoint exactly as a killed process would.
     */
    uint64_t haltAfterChunks = 0;
    /** Registry for campaign.* / corpus.* metrics; null = a fresh
     * internal registry (resume restores checkpointed counters into
     * it, so passing the global would double-count). */
    support::MetricsRegistry *metrics = nullptr;
    core::CampaignObserver observer;
    /**
     * Sink for the structured event log (DESIGN.md §12):
     * campaign_started, finding_discovered, chunk_committed,
     * checkpoint_written, campaign_finished. Every event is keyed by
     * plan position, so a complete run's log is byte-identical across
     * thread counts. Null = no events.
     */
    support::EventSink *events = nullptr;
    /**
     * Live progress board (DESIGN.md §14): published at run start
     * (with the restored state), at each checkpoint commit, and at
     * run end. Null = no publishing — the campaign hot path is
     * untouched when nothing is serving.
     */
    CampaignStatusBoard *status = nullptr;
    /**
     * Restrict this run to the chunks the filter accepts — how a
     * fleet worker runs exactly its leased chunk range against its
     * own store (DESIGN.md §15). Chunks outside the filter are
     * neither executed nor waited for: the run writes its final
     * checkpoint once every *eligible* chunk (filter-accepted plus
     * already-committed) is committed, so a filtered run still ends
     * checkpoint-consistent. Null = every chunk, exactly the
     * pre-fleet behaviour. Determinism is untouched — a chunk's
     * output never depends on which run (or process) computed it.
     */
    std::function<bool(uint64_t)> chunkFilter;
};

/** A finding plus where it came from (checkpoint bookkeeping). */
struct StoredFinding {
    uint64_t chunk = 0;
    uint64_t slot = 0;
    core::Finding finding;
};

/**
 * Everything a checkpoint pins, parsed back out of checkpoint.json.
 * This is the state runCheckpointed resumes from, exposed so the
 * report layer can reconstruct a campaign — plan, findings,
 * deterministic counters — from a store alone (even one whose run was
 * killed and never resumed).
 */
struct CheckpointState {
    CampaignPlan plan;
    std::set<uint64_t> completed; ///< committed chunk indices
    uint64_t watermark = 0; ///< contiguous completed-chunk prefix
    uint64_t rngState = 0;  ///< Rng stream state at the watermark
    /** The checkpointed campaign.* counters (deterministic subset). */
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<StoredFinding> findings;
};

/**
 * Parse the store's checkpoint. Classified NoCheckpoint when none
 * exists, Corrupt when it fails its checksum or shape.
 */
std::optional<CheckpointState>
readCheckpointState(CorpusStore &store, StoreError *error = nullptr);

/**
 * Build (and CRC-seal) the checkpoint line naming the given committed
 * state — byte-for-byte the line runCheckpointed writes. Exposed so
 * the fleet merge can give a merged store a checkpoint
 * indistinguishable from a single-process run's: same field order,
 * same campaign.*-only counter filter (sorted by key), same sealed
 * framing. @p findings is keyed by chunk; entries serialize in
 * (chunk, slot) order.
 */
std::string encodeCheckpointJson(
    const std::string &plan_json, const std::set<uint64_t> &completed,
    uint64_t watermark, uint64_t rng_state,
    const support::MetricsRegistry &registry,
    const std::map<uint64_t, std::vector<StoredFinding>> &findings);

struct CheckpointedCampaign {
    core::Campaign campaign;
    std::vector<core::Finding> findings;
    bool resumed = false;   ///< started from an existing checkpoint
    bool completed = false; ///< false after a haltAfterChunks stop
    uint64_t chunksLoaded = 0; ///< restored from the store
    uint64_t chunksRun = 0;    ///< executed this run
    /** The registry the run recorded into: the caller's, or the
     * internally-created one when options.metrics was null. */
    support::MetricsRegistry *metrics = nullptr;
    std::shared_ptr<support::MetricsRegistry> ownedMetrics;
};

/**
 * Run (or continue) @p plan against @p store. Picks up from the
 * store's checkpoint when one exists — PlanMismatch if it pins a
 * different plan. nullopt + classified @p error on store failure.
 */
std::optional<CheckpointedCampaign>
runCheckpointed(CorpusStore &store, const CampaignPlan &plan,
                const CheckpointRunOptions &options = {},
                StoreError *error = nullptr);

/**
 * Continue the campaign checkpointed in the store at @p store_path to
 * completion. The plan comes from the checkpoint itself; a store
 * without one (fresh, missing) is a classified NoCheckpoint /
 * NotFound error, never a silent empty campaign.
 */
std::optional<CheckpointedCampaign>
resumeCampaign(const std::string &store_path,
               const CheckpointRunOptions &options = {},
               StoreError *error = nullptr);

/**
 * Deterministic summary of a finished campaign: build names, corpus
 * totals, findings, per-build killer histograms, and the campaign.*
 * counters — everything the resume bit-identity contract covers, and
 * nothing timing-dependent. Byte-equal across kill/resume schedules
 * and thread counts; the CI kill-and-resume step diffs exactly this.
 */
std::string summaryText(const CheckpointedCampaign &result);

} // namespace dce::corpus
