/**
 * @file
 * Versioned serialization between the core pipeline's value types and
 * the corpus store's on-disk JSON (DESIGN.md §11). Every serializer
 * here is paired with a deserializer whose round trip is
 * representation-exact: sets, kill attributions, 64-bit seeds, and RNG
 * states all come back `==` to what went in — that property (tested in
 * test_corpus) is what makes resumed campaigns byte-identical.
 *
 * Program *source* is not serialized through these helpers; programs
 * are stored as canonical printed text (lang::printUnit) and
 * re-parsed, with the printer round-trip property test guaranteeing
 * fidelity.
 */
#pragma once

#include <optional>
#include <string>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "corpus/json.hpp"

namespace dce::corpus {

/** On-disk format version; bumped on any incompatible layout change.
 * Readers reject other versions with StoreStatus::BadVersion. */
inline constexpr unsigned kFormatVersion = 1;

/** Canonical text of the instrumented program for @p seed: regenerate,
 * instrument, print. The content-address input. */
std::string canonicalProgramText(uint64_t seed,
                                 const gen::GenConfig &config);

/** Content address of @p canonical_text
 * (support::fnv1a64Hex — 16 lowercase hex digits). */
std::string programHash(std::string_view canonical_text);

//===------------------------------------------------------------------===//
// BuildSpec
//===------------------------------------------------------------------===//

/** Append @p spec as a JSON object (compiler / level names, commit
 * index with SIZE_MAX spelled "head"). */
void writeBuildSpec(JsonWriter &writer, const core::BuildSpec &spec);

/** Parse a writeBuildSpec object; nullopt on unknown names. */
std::optional<core::BuildSpec>
readBuildSpec(const JsonValue &value);

//===------------------------------------------------------------------===//
// GenConfig
//===------------------------------------------------------------------===//

void writeGenConfig(JsonWriter &writer, const gen::GenConfig &config);
std::optional<gen::GenConfig> readGenConfig(const JsonValue &value);

//===------------------------------------------------------------------===//
// ProgramRecord
//===------------------------------------------------------------------===//

/** Serialize one record to a standalone JSON document (the store's
 * per-record payload). */
std::string serializeRecord(const core::ProgramRecord &record);

/** Inverse of serializeRecord; nullopt on malformed input. */
std::optional<core::ProgramRecord>
deserializeRecord(std::string_view json);

//===------------------------------------------------------------------===//
// Finding / CachedVerdict
//===------------------------------------------------------------------===//

void writeFinding(JsonWriter &writer, const core::Finding &finding);
std::optional<core::Finding> readFinding(const JsonValue &value);

/** Serialize a verdict (reduced source + signature + classification)
 * to a standalone JSON document. */
std::string serializeVerdict(const core::CachedVerdict &verdict);
std::optional<core::CachedVerdict>
deserializeVerdict(std::string_view json);

} // namespace dce::corpus
