#include "corpus/serialize.hpp"

#include "compiler/compiler.hpp"
#include "lang/printer.hpp"
#include "support/hash.hpp"

namespace dce::corpus {

std::string
canonicalProgramText(uint64_t seed, const gen::GenConfig &config)
{
    instrument::Instrumented prog = core::makeProgram(seed, config);
    return lang::printUnit(*prog.unit);
}

std::string
programHash(std::string_view canonical_text)
{
    return support::fnv1a64Hex(canonical_text);
}

//===------------------------------------------------------------------===//
// BuildSpec
//===------------------------------------------------------------------===//

void
writeBuildSpec(JsonWriter &writer, const core::BuildSpec &spec)
{
    writer.beginObject();
    writer.field("compiler", compiler::compilerName(spec.id));
    writer.field("level", compiler::optLevelName(spec.level));
    if (spec.commit == SIZE_MAX)
        writer.field("commit", "head");
    else
        writer.field("commit", uint64_t(spec.commit));
    writer.endObject();
}

namespace {

std::optional<compiler::CompilerId>
parseCompilerId(std::string_view name)
{
    for (compiler::CompilerId id :
         {compiler::CompilerId::Alpha, compiler::CompilerId::Beta}) {
        if (name == compiler::compilerName(id))
            return id;
    }
    return std::nullopt;
}

std::optional<compiler::OptLevel>
parseOptLevel(std::string_view name)
{
    for (compiler::OptLevel level : compiler::allOptLevels()) {
        if (name == compiler::optLevelName(level))
            return level;
    }
    return std::nullopt;
}

/** Read an array of unsigned ints into @p out; false on shape errors. */
bool
readUnsignedArray(const JsonValue *value, std::set<unsigned> &out)
{
    if (!value || !value->isArray())
        return false;
    for (const JsonValue &item : value->items) {
        if (item.kind != JsonValue::Kind::Int || item.negative)
            return false;
        out.insert(unsigned(item.magnitude));
    }
    return true;
}

void
writeUnsignedSet(JsonWriter &writer, const std::set<unsigned> &set)
{
    writer.beginArray();
    for (unsigned marker : set)
        writer.value(marker);
    writer.endArray();
}

std::optional<core::InvalidReason>
parseInvalidReason(std::string_view name)
{
    for (core::InvalidReason reason :
         {core::InvalidReason::None, core::InvalidReason::Timeout,
          core::InvalidReason::Trap, core::InvalidReason::NoEntry,
          core::InvalidReason::VerifierReject}) {
        if (name == core::invalidReasonName(reason))
            return reason;
    }
    return std::nullopt;
}

} // namespace

std::optional<core::BuildSpec>
readBuildSpec(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    auto id = parseCompilerId(value.getString("compiler"));
    auto level = parseOptLevel(value.getString("level"));
    if (!id || !level)
        return std::nullopt;
    core::BuildSpec spec;
    spec.id = *id;
    spec.level = *level;
    const JsonValue *commit = value.get("commit");
    if (!commit)
        return std::nullopt;
    if (commit->kind == JsonValue::Kind::String) {
        if (commit->text != "head")
            return std::nullopt;
        spec.commit = SIZE_MAX;
    } else if (commit->kind == JsonValue::Kind::Int &&
               !commit->negative) {
        spec.commit = size_t(commit->magnitude);
    } else {
        return std::nullopt;
    }
    return spec;
}

//===------------------------------------------------------------------===//
// GenConfig
//===------------------------------------------------------------------===//

void
writeGenConfig(JsonWriter &writer, const gen::GenConfig &config)
{
    writer.beginObject();
    writer.field("globals", config.numGlobals);
    writer.field("helpers", config.numHelpers);
    writer.field("stmts", config.maxStmtsPerBlock);
    writer.field("depth", config.maxBlockDepth);
    writer.field("expr", config.maxExprDepth);
    writer.field("trip", config.maxLoopTrip);
    writer.field("bias", config.unlikelyBranchBias);
    writer.endObject();
}

std::optional<gen::GenConfig>
readGenConfig(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    gen::GenConfig config;
    config.numGlobals = unsigned(value.getU64("globals"));
    config.numHelpers = unsigned(value.getU64("helpers"));
    config.maxStmtsPerBlock = unsigned(value.getU64("stmts"));
    config.maxBlockDepth = unsigned(value.getU64("depth"));
    config.maxExprDepth = unsigned(value.getU64("expr"));
    config.maxLoopTrip = unsigned(value.getU64("trip"));
    config.unlikelyBranchBias = unsigned(value.getU64("bias"));
    return config;
}

//===------------------------------------------------------------------===//
// ProgramRecord
//===------------------------------------------------------------------===//

std::string
serializeRecord(const core::ProgramRecord &record)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("v", uint64_t(kFormatVersion));
    writer.field("seed", record.seed);
    writer.field("markers", record.markerCount);
    writer.field("valid", record.valid);
    writer.field("reason",
                 core::invalidReasonName(record.invalidReason));
    writer.key("trueAlive");
    writeUnsignedSet(writer, record.trueAlive);
    writer.key("trueDead");
    writeUnsignedSet(writer, record.trueDead);
    auto setsField = [&](const char *name,
                         const std::vector<std::set<unsigned>> &sets) {
        writer.key(name);
        writer.beginArray();
        for (const std::set<unsigned> &set : sets)
            writeUnsignedSet(writer, set);
        writer.endArray();
    };
    setsField("alive", record.alive);
    setsField("missed", record.missed);
    setsField("primary", record.primary);
    writer.key("kills");
    writer.beginArray();
    for (const std::vector<core::MarkerKill> &build : record.kills) {
        writer.beginArray();
        for (const core::MarkerKill &kill : build) {
            writer.beginObject();
            writer.field("m", kill.marker);
            writer.field("p", kill.pass);
            writer.field("i", kill.passIndex);
            writer.endObject();
        }
        writer.endArray();
    }
    writer.endArray();
    writer.endObject();
    return writer.take();
}

std::optional<core::ProgramRecord>
deserializeRecord(std::string_view json)
{
    std::optional<JsonValue> doc = JsonValue::parse(json);
    if (!doc || !doc->isObject() ||
        doc->getU64("v") != kFormatVersion)
        return std::nullopt;
    core::ProgramRecord record;
    record.seed = doc->getU64("seed");
    record.markerCount = unsigned(doc->getU64("markers"));
    record.valid = doc->getBool("valid");
    auto reason = parseInvalidReason(doc->getString("reason"));
    if (!reason)
        return std::nullopt;
    record.invalidReason = *reason;
    if (!readUnsignedArray(doc->get("trueAlive"), record.trueAlive) ||
        !readUnsignedArray(doc->get("trueDead"), record.trueDead))
        return std::nullopt;
    auto setsField = [&](const char *name,
                         std::vector<std::set<unsigned>> &sets) {
        const JsonValue *array = doc->get(name);
        if (!array || !array->isArray())
            return false;
        sets.resize(array->items.size());
        for (size_t i = 0; i < array->items.size(); ++i) {
            if (!readUnsignedArray(&array->items[i], sets[i]))
                return false;
        }
        return true;
    };
    if (!setsField("alive", record.alive) ||
        !setsField("missed", record.missed) ||
        !setsField("primary", record.primary))
        return std::nullopt;
    const JsonValue *kills = doc->get("kills");
    if (!kills || !kills->isArray())
        return std::nullopt;
    record.kills.resize(kills->items.size());
    for (size_t i = 0; i < kills->items.size(); ++i) {
        const JsonValue &build = kills->items[i];
        if (!build.isArray())
            return std::nullopt;
        for (const JsonValue &entry : build.items) {
            if (!entry.isObject())
                return std::nullopt;
            core::MarkerKill kill;
            kill.marker = unsigned(entry.getU64("m"));
            kill.pass = entry.getString("p");
            kill.passIndex = unsigned(entry.getU64("i"));
            record.kills[i].push_back(std::move(kill));
        }
    }
    return record;
}

//===------------------------------------------------------------------===//
// Finding / CachedVerdict
//===------------------------------------------------------------------===//

void
writeFinding(JsonWriter &writer, const core::Finding &finding)
{
    writer.beginObject();
    writer.field("seed", finding.seed);
    writer.field("marker", finding.marker);
    writer.key("by");
    writeBuildSpec(writer, finding.missedBy);
    writer.key("ref");
    writeBuildSpec(writer, finding.reference);
    writer.endObject();
}

std::optional<core::Finding>
readFinding(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    const JsonValue *by = value.get("by");
    const JsonValue *ref = value.get("ref");
    if (!by || !ref)
        return std::nullopt;
    auto missed_by = readBuildSpec(*by);
    auto reference = readBuildSpec(*ref);
    if (!missed_by || !reference)
        return std::nullopt;
    core::Finding finding;
    finding.seed = value.getU64("seed");
    finding.marker = unsigned(value.getU64("marker"));
    finding.missedBy = *missed_by;
    finding.reference = *reference;
    return finding;
}

std::string
serializeVerdict(const core::CachedVerdict &verdict)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("v", uint64_t(kFormatVersion));
    writer.field("src", verdict.reducedSource);
    writer.field("sig", verdict.signature);
    writer.field("fixed", verdict.fixed);
    writer.field("tests", verdict.reductionTests);
    writer.endObject();
    return writer.take();
}

std::optional<core::CachedVerdict>
deserializeVerdict(std::string_view json)
{
    std::optional<JsonValue> doc = JsonValue::parse(json);
    if (!doc || !doc->isObject() ||
        doc->getU64("v") != kFormatVersion)
        return std::nullopt;
    core::CachedVerdict verdict;
    verdict.reducedSource = doc->getString("src");
    verdict.signature = doc->getString("sig");
    verdict.fixed = doc->getBool("fixed");
    verdict.reductionTests = unsigned(doc->getU64("tests"));
    return verdict;
}

} // namespace dce::corpus
