#include "corpus/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>

#include "corpus/serialize.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dce::corpus {

namespace {

void
setError(StoreError *error, StoreStatus status, std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

} // namespace

std::string
encodeCheckpointJson(
    const std::string &plan_json, const std::set<uint64_t> &completed,
    uint64_t watermark, uint64_t rng_state,
    const support::MetricsRegistry &registry,
    const std::map<uint64_t, std::vector<StoredFinding>> &findings)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("version", uint64_t(kFormatVersion));
    writer.key("plan");
    writer.raw(plan_json);
    writer.key("completed");
    writer.beginArray();
    for (uint64_t chunk : completed)
        writer.value(chunk);
    writer.endArray();
    writer.field("watermark", watermark);
    writer.field("rngState", rng_state);
    writer.key("counters");
    writer.beginArray();
    for (const auto &[key, value] : registry.counters()) {
        if (key.rfind("campaign.", 0) != 0)
            continue; // only the deterministic campaign counters
        writer.beginObject();
        writer.field("k", key);
        writer.field("v", value);
        writer.endObject();
    }
    writer.endArray();
    writer.key("findings");
    writer.beginArray();
    for (const auto &[chunk, list] : findings) {
        for (const StoredFinding &entry : list) {
            writer.beginObject();
            writer.field("chunk", entry.chunk);
            writer.field("slot", entry.slot);
            writer.field("seed", entry.finding.seed);
            writer.field("marker", entry.finding.marker);
            writer.endObject();
        }
    }
    writer.endArray();
    writer.endObject();
    return sealJsonLine(writer.take());
}

namespace {

/**
 * Raise counter `name{label}` to @p target (monotonic set-to-value).
 * The campaign.progress gauges ride the counter machinery so the
 * checkpoint serializer (which persists every campaign.* counter) and
 * resume restore them for free; because each target — committed
 * chunks, watermark, committed seeds, findings — only ever grows and
 * has a schedule-independent final value, bump-to keeps the restored
 * summary byte-identical across kill/resume schedules.
 */
void
bumpCounterTo(support::MetricsRegistry &registry,
              std::string_view name, std::string_view label,
              uint64_t target)
{
    uint64_t current = registry.counterValue(name, label);
    if (target > current)
        registry.counter(name, label).add(target - current);
}

std::optional<CheckpointState>
parseCheckpoint(std::string_view text)
{
    std::optional<JsonValue> doc = unsealJsonLine(text);
    if (!doc || doc->getU64("version") != kFormatVersion)
        return std::nullopt;
    const JsonValue *plan_json = doc->get("plan");
    if (!plan_json)
        return std::nullopt;
    std::optional<CampaignPlan> plan = readPlan(*plan_json);
    if (!plan)
        return std::nullopt;

    CheckpointState data;
    data.plan = *plan;
    data.watermark = doc->getU64("watermark");
    data.rngState = doc->getU64("rngState");
    const JsonValue *completed = doc->get("completed");
    if (!completed || !completed->isArray())
        return std::nullopt;
    for (const JsonValue &chunk : completed->items)
        data.completed.insert(chunk.asU64());
    const JsonValue *counters = doc->get("counters");
    if (!counters || !counters->isArray())
        return std::nullopt;
    for (const JsonValue &entry : counters->items)
        data.counters.emplace_back(entry.getString("k"),
                                   entry.getU64("v"));
    const JsonValue *findings = doc->get("findings");
    if (!findings || !findings->isArray())
        return std::nullopt;
    bool extract = plan->missedByBuild < plan->builds.size() &&
                   plan->referenceBuild < plan->builds.size();
    for (const JsonValue &entry : findings->items) {
        if (!extract)
            return std::nullopt; // findings without an extraction pair
        StoredFinding finding;
        finding.chunk = entry.getU64("chunk");
        finding.slot = entry.getU64("slot");
        finding.finding.seed = entry.getU64("seed");
        finding.finding.marker = unsigned(entry.getU64("marker"));
        finding.finding.missedBy = plan->builds[plan->missedByBuild];
        finding.finding.reference = plan->builds[plan->referenceBuild];
        data.findings.push_back(std::move(finding));
    }
    return data;
}

} // namespace

std::optional<CheckpointState>
readCheckpointState(CorpusStore &store, StoreError *error)
{
    if (!store.hasCheckpoint()) {
        setError(error, StoreStatus::NoCheckpoint,
                 "store has no checkpoint");
        return std::nullopt;
    }
    StoreError err;
    std::optional<std::string> text = store.readCheckpoint(&err);
    if (!text) {
        setError(error, err.status, err.message);
        return std::nullopt;
    }
    std::optional<CheckpointState> parsed = parseCheckpoint(*text);
    if (!parsed) {
        setError(error, StoreStatus::Corrupt,
                 "checkpoint failed its checksum or shape");
        return std::nullopt;
    }
    return parsed;
}

//===------------------------------------------------------------------===//
// Plan serialization
//===------------------------------------------------------------------===//

std::string
serializePlan(const CampaignPlan &plan)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("firstSeed", plan.firstSeed);
    writer.field("count", plan.count);
    writer.field("random", plan.randomSeeds);
    writer.field("stream", plan.streamSeed);
    writer.field("chunk", plan.chunkSize);
    writer.key("builds");
    writer.beginArray();
    for (const core::BuildSpec &build : plan.builds)
        writeBuildSpec(writer, build);
    writer.endArray();
    writer.field("primary", plan.computePrimary);
    writer.field("remarks", plan.collectRemarks);
    writer.key("gen");
    writeGenConfig(writer, plan.generator);
    writer.field("by", uint64_t(plan.missedByBuild));
    writer.field("ref", uint64_t(plan.referenceBuild));
    writer.field("maxFindings", plan.maxFindings);
    writer.endObject();
    return writer.take();
}

std::optional<CampaignPlan>
readPlan(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    CampaignPlan plan;
    plan.firstSeed = value.getU64("firstSeed");
    plan.count = value.getU64("count");
    plan.randomSeeds = value.getBool("random");
    plan.streamSeed = value.getU64("stream");
    plan.chunkSize = unsigned(value.getU64("chunk"));
    const JsonValue *builds = value.get("builds");
    if (!builds || !builds->isArray())
        return std::nullopt;
    for (const JsonValue &entry : builds->items) {
        std::optional<core::BuildSpec> build = readBuildSpec(entry);
        if (!build)
            return std::nullopt;
        plan.builds.push_back(*build);
    }
    plan.computePrimary = value.getBool("primary");
    plan.collectRemarks = value.getBool("remarks");
    const JsonValue *generator = value.get("gen");
    if (!generator)
        return std::nullopt;
    std::optional<gen::GenConfig> config = readGenConfig(*generator);
    if (!config)
        return std::nullopt;
    plan.generator = *config;
    plan.missedByBuild = size_t(value.getU64("by"));
    plan.referenceBuild = size_t(value.getU64("ref"));
    plan.maxFindings = unsigned(value.getU64("maxFindings"));
    return plan;
}

//===------------------------------------------------------------------===//
// The checkpointing runner
//===------------------------------------------------------------------===//

std::optional<CheckpointedCampaign>
runCheckpointed(CorpusStore &store, const CampaignPlan &plan,
                const CheckpointRunOptions &options,
                StoreError *error)
{
    support::TraceSpan span("corpus.campaign", "corpus");
    auto wall_start = std::chrono::steady_clock::now();

    CheckpointedCampaign result;
    if (options.metrics) {
        result.metrics = options.metrics;
    } else {
        result.ownedMetrics =
            std::make_shared<support::MetricsRegistry>();
        result.metrics = result.ownedMetrics.get();
    }
    support::MetricsRegistry &registry = *result.metrics;

    const std::string plan_json = serializePlan(plan);
    const uint64_t chunk_size = std::max(1u, plan.chunkSize);
    const uint64_t num_chunks =
        (plan.count + chunk_size - 1) / chunk_size;

    StoreError err;

    // Pick up the store's checkpoint, if any.
    CheckpointState ckpt;
    bool have_ckpt = false;
    if (store.hasCheckpoint()) {
        std::optional<std::string> text = store.readCheckpoint(&err);
        if (!text) {
            setError(error, err.status, err.message);
            return std::nullopt;
        }
        std::optional<CheckpointState> parsed = parseCheckpoint(*text);
        if (!parsed) {
            setError(error, StoreStatus::Corrupt,
                     "checkpoint failed its checksum or shape");
            return std::nullopt;
        }
        if (serializePlan(parsed->plan) != plan_json) {
            setError(error, StoreStatus::PlanMismatch,
                     "store checkpoint pins a different plan");
            return std::nullopt;
        }
        ckpt = std::move(*parsed);
        have_ckpt = true;
    }

    // Restore the records of checkpointed chunks. A checkpoint only
    // names durable store state (the store flushes before each
    // checkpoint write), so missing records mean outside interference;
    // the pure-chunk property still lets us self-heal by discarding
    // the checkpoint and recomputing everything.
    std::vector<core::ProgramRecord> records(plan.count);
    std::vector<char> have_record(plan.count, 0);
    if (have_ckpt && !ckpt.completed.empty()) {
        std::vector<StoredRecord> stored = store.loadRecords(&err);
        if (stored.empty() && !err.ok()) {
            setError(error, err.status, err.message);
            return std::nullopt;
        }
        for (StoredRecord &entry : stored) {
            if (entry.slot < plan.count) {
                records[entry.slot] = std::move(entry.record);
                have_record[entry.slot] = 1;
            }
        }
        bool intact = true;
        for (uint64_t chunk : ckpt.completed) {
            uint64_t begin = chunk * chunk_size;
            uint64_t end =
                std::min<uint64_t>(begin + chunk_size, plan.count);
            for (uint64_t slot = begin; slot < end && intact; ++slot)
                intact = have_record[slot] != 0;
        }
        if (!intact) {
            ckpt = CheckpointState{};
            ckpt.plan = plan;
            have_ckpt = false;
            std::fill(have_record.begin(), have_record.end(), 0);
        }
    }

    // Restore the deterministic counters and findings the checkpoint
    // carries for the completed chunks.
    if (have_ckpt) {
        for (const auto &[key, value] : ckpt.counters)
            registry.counter(key).add(value);
    }
    std::map<uint64_t, std::vector<StoredFinding>> findings_by_chunk;
    uint64_t findings_total = have_ckpt ? ckpt.findings.size() : 0;
    if (have_ckpt) {
        for (StoredFinding &finding : ckpt.findings)
            findings_by_chunk[finding.chunk].push_back(
                std::move(finding));
    }

    // Derive the seed for every slot from the watermark onward. In
    // randomSeeds mode this restores the Rng stream state saved at the
    // contiguous watermark and replays forward, recording the state at
    // each chunk boundary so the next checkpoint can do the same.
    uint64_t watermark = have_ckpt ? ckpt.watermark : 0;
    uint64_t watermark_slot =
        std::min<uint64_t>(watermark * chunk_size, plan.count);
    std::vector<uint64_t> seeds(plan.count, 0);
    std::vector<uint64_t> state_at_chunk(num_chunks + 1, 0);
    if (plan.randomSeeds) {
        Rng rng(plan.streamSeed);
        if (have_ckpt && watermark > 0)
            rng.restore(ckpt.rngState);
        for (uint64_t slot = watermark_slot; slot < plan.count;
             ++slot) {
            if (slot % chunk_size == 0)
                state_at_chunk[slot / chunk_size] = rng.state();
            seeds[slot] = rng.next();
        }
        state_at_chunk[num_chunks] = rng.state();
    } else {
        for (uint64_t slot = 0; slot < plan.count; ++slot)
            seeds[slot] = plan.firstSeed + slot;
    }

    // Execution. Chunks completed before this run are immutable input
    // (done_before); everything the workers share mutably is guarded
    // by commit_mutex.
    std::set<uint64_t> completed =
        have_ckpt ? ckpt.completed : std::set<uint64_t>{};
    result.chunksLoaded = completed.size();
    std::vector<char> done_before(num_chunks, 0);
    uint64_t seeds_done = 0;
    for (uint64_t chunk : completed) {
        done_before[chunk] = 1;
        seeds_done += std::min<uint64_t>((chunk + 1) * chunk_size,
                                         plan.count) -
                      chunk * chunk_size;
    }

    // A filtered run (fleet lease) only ever waits for its own
    // chunks: the final checkpoint fires when the eligible set —
    // filter-accepted chunks plus whatever was already committed —
    // is fully committed, not when the whole plan is.
    auto eligible = [&](uint64_t chunk) {
        return !options.chunkFilter || options.chunkFilter(chunk);
    };
    uint64_t target_chunks = 0;
    for (uint64_t chunk = 0; chunk < num_chunks; ++chunk)
        if (done_before[chunk] || eligible(chunk))
            ++target_chunks;

    const bool extract = plan.missedByBuild < plan.builds.size() &&
                         plan.referenceBuild < plan.builds.size();
    const core::BuildId by_id{plan.missedByBuild};
    const core::BuildId ref_id{plan.referenceBuild};

    // Event-log preamble. Every field is a pure function of (plan,
    // store state), so resumed and fresh runs of the same situation
    // log the same preamble at any thread count (DESIGN.md §12).
    support::EventSink *events = options.events;
    if (events) {
        support::Event started("campaign_started",
                               {support::kPhaseCampaign, 0, 0});
        started.str("plan_hash", support::fnv1a64Hex(plan_json))
            .num("seeds", plan.count)
            .num("chunks", num_chunks)
            .num("chunk_size", chunk_size)
            .num("resumed_chunks", result.chunksLoaded);
        std::string build_names;
        for (const core::BuildSpec &build : plan.builds) {
            if (!build_names.empty())
                build_names += ',';
            build_names += build.name();
        }
        started.str("builds", build_names);
        events->emit(std::move(started));
    }

    core::CampaignOptions chunk_options;
    chunk_options.computePrimary = plan.computePrimary;
    chunk_options.collectRemarks = plan.collectRemarks;
    chunk_options.generator = plan.generator;

    std::mutex commit_mutex;
    std::atomic<bool> halted{false};
    std::atomic<bool> failed{false};
    uint64_t committed_this_run = 0;
    uint64_t since_checkpoint = 0;
    uint64_t checkpoints_written = 0;
    StoreError run_error;

    // Live status board (DESIGN.md §14). Publishes are confined to
    // run start/end and checkpoint commits — already serialized
    // points — so a null board costs nothing on the hot path and a
    // live one costs one snapshot per checkpoint.
    auto steady_us = [] {
        return uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    };
    const uint64_t run_start_us = steady_us();
    auto publish_status = [&](bool active_now) {
        if (!options.status)
            return;
        CampaignStatusBoard::Snapshot snap;
        snap.active = active_now;
        snap.complete = completed.size() == num_chunks;
        snap.planHash = support::fnv1a64Hex(plan_json);
        snap.seedsTotal = plan.count;
        snap.chunksTotal = num_chunks;
        snap.completedChunks = completed.size();
        snap.watermark = watermark;
        snap.seedsCommitted = seeds_done;
        snap.findings = findings_total;
        snap.checkpoints = checkpoints_written;
        snap.startUs = run_start_us;
        snap.updateUs = steady_us();
        for (const auto &[key, hist] : registry.histograms())
            if (key.rfind("campaign.stage_us", 0) == 0)
                snap.stageUs += hist.sum;
        snap.cacheHits = registry.counterValue("campaign.cache_hits");
        snap.cacheMisses =
            registry.counterValue("campaign.cache_misses");
        options.status->publish(snap);
    };
    publish_status(true); // the restored (possibly empty) baseline

    support::ThreadPool pool(options.threads);
    pool.forChunks(
        plan.count, chunk_size, [&](size_t begin, size_t end) {
            uint64_t chunk = uint64_t(begin) / chunk_size;
            if (done_before[chunk] || !eligible(chunk) ||
                halted.load() || failed.load())
                return;

            // Process the chunk against a chunk-local registry: its
            // metrics join the campaign's only if it commits, so the
            // checkpointed counters cover exactly the committed work.
            support::MetricsRegistry chunk_registry;
            core::SeedProcessor processor(plan.builds, chunk_options,
                                          chunk_registry);
            core::SeedCounters counters;
            std::vector<core::ProgramRecord> chunk_records;
            std::vector<std::string> texts;
            chunk_records.reserve(end - begin);
            texts.reserve(end - begin);
            for (size_t slot = begin; slot < end; ++slot)
                chunk_records.push_back(processor.process(
                    seeds[slot], counters, &texts.emplace_back()));

            std::lock_guard<std::mutex> lock(commit_mutex);
            // A halt is the simulated kill: chunks still in flight
            // when it lands are lost, exactly like a real SIGKILL.
            if (failed.load() || halted.load())
                return;
            uint64_t chunk_valid = 0;
            std::vector<std::string> hashes(chunk_records.size());
            for (size_t i = 0; i < chunk_records.size(); ++i) {
                uint64_t slot = begin + i;
                hashes[i] = programHash(texts[i]);
                store.putProgram(hashes[i], texts[i]);
                store.putRecord(chunk_records[i], slot, chunk,
                                hashes[i]);
                chunk_valid += chunk_records[i].valid ? 1 : 0;
                records[slot] = std::move(chunk_records[i]);
            }
            registry.merge(chunk_registry);
            completed.insert(chunk);
            seeds_done += end - begin;
            uint64_t chunk_findings = 0;
            if (extract) {
                std::vector<StoredFinding> &list =
                    findings_by_chunk[chunk];
                for (size_t slot = begin; slot < end; ++slot) {
                    std::optional<core::Finding> finding =
                        core::findingForRecord(
                            records[slot], by_id, ref_id,
                            plan.builds[plan.missedByBuild],
                            plan.builds[plan.referenceBuild]);
                    if (finding) {
                        list.push_back({chunk, slot, *finding});
                        ++chunk_findings;
                        if (events) {
                            core::VerdictKey key;
                            key.programHash = hashes[slot - begin];
                            key.markers = {finding->marker};
                            key.missedBy = finding->missedBy.name();
                            key.reference = finding->reference.name();
                            support::Event discovered(
                                "finding_discovered",
                                {support::kPhaseChunk, chunk, slot});
                            discovered.num("chunk", chunk)
                                .num("slot", slot)
                                .num("seed", finding->seed)
                                .num("marker", finding->marker)
                                .str("program_hash",
                                     hashes[slot - begin])
                                .str("missed_by", key.missedBy)
                                .str("reference", key.reference)
                                .str("fingerprint", key.fingerprint());
                            events->emit(std::move(discovered));
                        }
                    }
                }
            }
            if (events) {
                support::Event committed_event(
                    "chunk_committed", {support::kPhaseChunk, chunk,
                                        support::kChunkCommitMinor});
                committed_event.num("chunk", chunk)
                    .num("first_slot", begin)
                    .num("slots", end - begin)
                    .num("valid", chunk_valid)
                    .num("invalid", (end - begin) - chunk_valid)
                    .num("findings", chunk_findings);
                events->emit(std::move(committed_event));
            }
            findings_total += chunk_findings;
            while (watermark < num_chunks &&
                   completed.count(watermark))
                ++watermark;
            ++committed_this_run;
            ++since_checkpoint;
            ++result.chunksRun;

            if (options.observer) {
                core::CampaignProgress progress;
                progress.seedsDone = seeds_done;
                progress.seedsTotal = plan.count;
                progress.invalidPrograms =
                    registry.counterTotal("campaign.invalid");
                progress.cacheHits =
                    registry.counterValue("campaign.cache_hits");
                progress.cacheMisses =
                    registry.counterValue("campaign.cache_misses");
                options.observer(progress);
            }

            if (since_checkpoint >= options.checkpointEveryChunks ||
                completed.size() >= target_chunks) {
                // Set the progress gauges before the checkpoint JSON
                // is built so the durable checkpoint, /metrics, and
                // /progress all carry the same committed numbers.
                bumpCounterTo(registry, "campaign.progress",
                              "completed_chunks", completed.size());
                bumpCounterTo(registry, "campaign.progress",
                              "watermark", watermark);
                bumpCounterTo(registry, "campaign.progress",
                              "seeds_committed", seeds_done);
                bumpCounterTo(registry, "campaign.progress",
                              "findings", findings_total);
                std::string json = encodeCheckpointJson(
                    plan_json, completed, watermark,
                    state_at_chunk[watermark], registry,
                    findings_by_chunk);
                if (!store.writeCheckpoint(json, &run_error)) {
                    failed.store(true);
                    return;
                }
                since_checkpoint = 0;
                ++checkpoints_written;
                publish_status(true);
                if (events) {
                    // Commits are serialized, so checkpoint k always
                    // lands after loaded + k*cadence commits — the
                    // ordinal and chunk count are schedule-free even
                    // though the *set* of completed chunks is not.
                    support::Event written(
                        "checkpoint_written",
                        {support::kPhaseCheckpoint,
                         checkpoints_written, 0});
                    written.num("ordinal", checkpoints_written)
                        .num("chunks_completed", completed.size())
                        .num("seeds_done", seeds_done);
                    events->emit(std::move(written));
                }
            }
            if (options.haltAfterChunks &&
                committed_this_run >= options.haltAfterChunks)
                halted.store(true);
        });

    if (failed.load()) {
        setError(error, run_error.status, run_error.message);
        return std::nullopt;
    }
    publish_status(false); // detach: final committed state, inactive

    result.resumed = have_ckpt;
    result.completed = completed.size() == num_chunks;
    result.campaign.builds = plan.builds;
    result.campaign.programs = std::move(records);
    result.campaign.metrics.seedsDone = seeds_done;
    result.campaign.metrics.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    for (const auto &[chunk, list] : findings_by_chunk) {
        for (const StoredFinding &entry : list) {
            if (result.findings.size() >= plan.maxFindings)
                break;
            result.findings.push_back(entry.finding);
        }
    }
    if (events) {
        support::Event finished("campaign_finished",
                                {support::kPhaseCampaignEnd, 0, 0});
        finished.num("seeds_done", seeds_done)
            .num("chunks_completed", completed.size())
            .num("findings", result.findings.size())
            .num("completed", result.completed ? 1 : 0);
        events->emit(std::move(finished));
    }
    span.setArg("chunks_run", result.chunksRun);
    return result;
}

std::optional<CheckpointedCampaign>
resumeCampaign(const std::string &store_path,
               const CheckpointRunOptions &options, StoreError *error)
{
    // The registry must exist before the store opens so the corpus.*
    // instruments land in it.
    std::shared_ptr<support::MetricsRegistry> owned;
    support::MetricsRegistry *registry = options.metrics;
    if (!registry) {
        owned = std::make_shared<support::MetricsRegistry>();
        registry = owned.get();
    }

    OpenOptions open_options;
    open_options.createIfMissing = false;
    open_options.metrics = registry;
    StoreError err;
    std::unique_ptr<CorpusStore> store =
        CorpusStore::open(store_path, &err, open_options);
    if (!store) {
        setError(error, err.status, err.message);
        return std::nullopt;
    }
    std::optional<CheckpointState> parsed =
        readCheckpointState(*store, error);
    if (!parsed)
        return std::nullopt;

    CheckpointRunOptions run_options = options;
    run_options.metrics = registry;
    std::optional<CheckpointedCampaign> result =
        runCheckpointed(*store, parsed->plan, run_options, error);
    if (result && owned) {
        result->ownedMetrics = owned;
        result->metrics = owned.get();
    }
    return result;
}

//===------------------------------------------------------------------===//
// Deterministic summary
//===------------------------------------------------------------------===//

std::string
summaryText(const CheckpointedCampaign &result)
{
    const core::Campaign &campaign = result.campaign;
    std::string out;
    out += "campaign seeds=" +
           std::to_string(campaign.metrics.seedsDone) +
           " markers=" + std::to_string(campaign.totalMarkers()) +
           " dead=" + std::to_string(campaign.totalDead()) +
           " alive=" + std::to_string(campaign.totalAlive()) + "\n";
    for (size_t i = 0; i < campaign.builds.size(); ++i) {
        core::BuildId build{i};
        out += "build " + campaign.builds[i].name() +
               " missed=" +
               std::to_string(campaign.totalMissed(build)) +
               " primary=" +
               std::to_string(campaign.totalPrimaryMissed(build)) +
               "\n";
        core::KillerHistogram killers =
            killerHistogram(campaign, build);
        for (const auto &[pass, count] : killers.byPass)
            out += "  killer " + pass + " " +
                   std::to_string(count) + "\n";
    }
    out += "findings " + std::to_string(result.findings.size()) +
           "\n";
    for (const core::Finding &finding : result.findings)
        out += "  finding seed=" + std::to_string(finding.seed) +
               " marker=" + std::to_string(finding.marker) + " by=" +
               finding.missedBy.name() + " ref=" +
               finding.reference.name() + "\n";
    if (result.metrics) {
        for (const auto &[key, value] : result.metrics->counters()) {
            if (key.rfind("campaign.", 0) == 0)
                out += "counter " + key + " " +
                       std::to_string(value) + "\n";
        }
    }
    return out;
}

} // namespace dce::corpus
