/**
 * @file
 * Minimal JSON support for the corpus store's on-disk format: a
 * comma-tracking writer and a recursive-descent reader covering the
 * subset the writer emits (objects, arrays, strings, 64-bit integers,
 * booleans, null). Self-contained on purpose — the container images
 * carry no JSON library, and the store controls both ends of the
 * format, so a full parser would be dead weight.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dce::corpus {

/** Escape @p text for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Streaming JSON writer. Keeps a begin/end nesting stack and inserts
 * commas automatically; misuse (value without key inside an object,
 * unbalanced end) trips assertions, not silent corruption.
 */
class JsonWriter {
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value call attaches to it. */
    void key(std::string_view name);

    void value(std::string_view text); ///< escaped string
    void value(const char *text) { value(std::string_view(text)); }
    void value(uint64_t number);
    void value(int64_t number);
    void value(unsigned number) { value(uint64_t(number)); }
    void value(bool boolean);
    void null();

    /** Emit @p json verbatim as one value (must itself be valid). */
    void raw(std::string_view json);

    /** key() + value() in one call. */
    template <typename T>
    void field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** The serialized document. Valid once nesting is balanced. */
    const std::string &str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void comma();

    std::string out_;
    std::vector<bool> inObject_; ///< nesting kinds
    std::vector<bool> needComma_;
    bool pendingKey_ = false;
};

/**
 * Parsed JSON value. Numbers keep the raw 64-bit magnitude plus a sign
 * flag so uint64 seeds and RNG states round-trip exactly.
 */
class JsonValue {
  public:
    enum class Kind { Null, Bool, Int, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    uint64_t magnitude = 0; ///< absolute value for Kind::Int
    bool negative = false;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    /** Parse one complete document (trailing whitespace allowed).
     * nullopt + @p error message on malformed input. */
    static std::optional<JsonValue> parse(std::string_view json,
                                          std::string *error = nullptr);

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    uint64_t asU64() const { return negative ? 0 : magnitude; }
    int64_t
    asI64() const
    {
        return negative ? -static_cast<int64_t>(magnitude)
                        : static_cast<int64_t>(magnitude);
    }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *get(std::string_view name) const;

    /** Typed member accessors with defaults (missing ⇒ default). */
    uint64_t getU64(std::string_view name, uint64_t fallback = 0) const;
    bool getBool(std::string_view name, bool fallback = false) const;
    std::string getString(std::string_view name,
                          std::string_view fallback = {}) const;
};

/**
 * Seal a complete JSON @p object (a `{...}` document): append a
 * trailing `"c"` field holding the CRC-32 of everything before it.
 * The result is still one valid JSON object. unsealJsonLine verifies
 * the CRC over the same prefix, so any bit flip in the line is caught.
 */
std::string sealJsonLine(std::string object);

/** Verify + parse a sealed object; nullopt on any damage. */
std::optional<JsonValue> unsealJsonLine(std::string_view line);

} // namespace dce::corpus
