/**
 * @file
 * Persistent corpus store (DESIGN.md §11): content-addressed program
 * texts, per-seed ProgramRecords, and triage verdicts, in an
 * append-only on-disk layout built for crash safety.
 *
 * Directory layout:
 *
 *     MANIFEST.json        {"version":1,"generation":N}   (atomic swap)
 *     LOCK                 flock'd for the writer's lifetime; holds
 *                          the writer pid (stale pids are stolen)
 *     index.<N>.jsonl      one CRC-sealed JSON line per entry
 *     payload.<N>.dat      concatenated payload blobs
 *     checkpoint.json      latest campaign checkpoint (atomic swap)
 *     equiv.json           latest metamorphic analysis (atomic swap)
 *
 * Every index line carries a trailing `"c"` field — the CRC-32 of the
 * line up to that field — and every payload blob is covered by a
 * `pcrc` recorded in its index entry. A crash can only lose the
 * unsealed tail: on open, a damaged final line (or a sealed line whose
 * payload never fully hit the disk) is dropped and the file truncated
 * back to the last durable entry; damage *before* the tail is
 * classified Corrupt and refuses the open. Rewrites (compaction,
 * checkpoints, MANIFEST) always go through temp-file-plus-rename.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/campaign.hpp"
#include "core/triage.hpp"
#include "support/metrics.hpp"

namespace dce::corpus {

/** Classified store failure. */
enum class StoreStatus {
    Ok,
    IoError,      ///< filesystem operation failed (errno in message)
    Locked,       ///< another live process holds the writer lock
    Corrupt,      ///< checksum mismatch before the recoverable tail
    BadVersion,   ///< on-disk format newer/older than kFormatVersion
    NoCheckpoint, ///< resume requested but no checkpoint exists
    PlanMismatch, ///< checkpoint plan differs from the requested one
    NotFound,     ///< lookup miss reported through an error channel
};

const char *storeStatusName(StoreStatus status);

struct StoreError {
    StoreStatus status = StoreStatus::Ok;
    std::string message;

    bool ok() const { return status == StoreStatus::Ok; }
};

/** Aggregate counts for one open store. */
struct StoreStats {
    uint64_t programs = 0; ///< distinct content-addressed programs
    uint64_t records = 0;  ///< ProgramRecords
    uint64_t verdicts = 0; ///< cached triage verdicts
    uint64_t bytes = 0;    ///< payload bytes in the live generation
    uint64_t generation = 0;
    uint64_t recoveredLines = 0; ///< tail entries dropped at open
};

/** A ProgramRecord plus its position in the campaign plan. */
struct StoredRecord {
    core::ProgramRecord record;
    uint64_t slot = 0;  ///< index in the plan's seed sequence
    uint64_t chunk = 0; ///< scheduling chunk that produced it
    std::string programHash;
};

struct OpenOptions {
    bool createIfMissing = true;
    /** Registry for the corpus.* metrics; null = the process global. */
    support::MetricsRegistry *metrics = nullptr;
};

/**
 * The store. All methods are thread-safe (one internal mutex — the
 * store is the commit point, not the hot path). Writes are append-only
 * and become durable at the next flush()/writeCheckpoint(); readers
 * of the same in-process store see them immediately.
 */
class CorpusStore {
  public:
    /** Open (or create) the store at @p dir. Acquires the writer
     * lock; nullptr + classified @p error on failure. */
    static std::unique_ptr<CorpusStore>
    open(const std::string &dir, StoreError *error = nullptr,
         const OpenOptions &options = {});

    ~CorpusStore();
    CorpusStore(const CorpusStore &) = delete;
    CorpusStore &operator=(const CorpusStore &) = delete;

    const std::string &path() const { return dir_; }

    //===-- content-addressed programs ---------------------------------===//

    /** Store @p canonical_text under @p hash. Returns false (and bumps
     * corpus.dedup_hits) when the hash is already present. */
    bool putProgram(const std::string &hash,
                    std::string_view canonical_text);
    bool hasProgram(const std::string &hash) const;
    std::optional<std::string>
    getProgram(const std::string &hash, StoreError *error = nullptr);
    /** Every stored program hash, sorted — the deterministic listing
     * mutation-mode campaigns seed their pool from. */
    std::vector<std::string> programHashes() const;

    //===-- program records --------------------------------------------===//

    /** Append @p record (slot/chunk locate it in the campaign plan).
     * A record for the same slot replaces the earlier one on load. */
    void putRecord(const core::ProgramRecord &record, uint64_t slot,
                   uint64_t chunk, const std::string &program_hash);
    /** Every stored record, sorted by slot. */
    std::vector<StoredRecord>
    loadRecords(StoreError *error = nullptr);

    //===-- triage verdicts --------------------------------------------===//

    /** Store @p verdict under @p fingerprint. A re-put replaces the
     * earlier entry (last write wins), so a verdict whose payload has
     * rotted on disk can be repaired by storing it again. */
    void putVerdict(const std::string &fingerprint,
                    const core::CachedVerdict &verdict);
    std::optional<core::CachedVerdict>
    getVerdict(const std::string &fingerprint,
               StoreError *error = nullptr);

    //===-- checkpoints ------------------------------------------------===//

    /** Durably record @p json as the latest checkpoint: flush the
     * store, then temp-file-plus-rename checkpoint.json. Observes
     * corpus.checkpoint_us. */
    bool writeCheckpoint(const std::string &json,
                         StoreError *error = nullptr);
    std::optional<std::string>
    readCheckpoint(StoreError *error = nullptr);
    bool hasCheckpoint() const;

    /** Durably record @p json (a sealed equiv-summary line — see
     * equiv::serializeEquivSummary) as the store's latest metamorphic
     * analysis: flush, then temp-file-plus-rename equiv.json. Same
     * crash-safety contract as writeCheckpoint. */
    bool writeEquivState(const std::string &json,
                         StoreError *error = nullptr);
    std::optional<std::string>
    readEquivState(StoreError *error = nullptr);
    bool hasEquivState() const;

    //===-- maintenance ------------------------------------------------===//

    /** fsync the index and payload files. */
    bool flush(StoreError *error = nullptr);

    /** Rewrite the live entries into generation N+1 (dropping
     * superseded record slots and dead bytes), atomically swap the
     * MANIFEST, and delete the old generation. */
    bool compact(StoreError *error = nullptr);

    StoreStats stats() const;

  private:
    struct Entry {
        uint64_t offset = 0;
        uint64_t length = 0;
        std::string payloadCrc;
    };
    struct RecordEntry : Entry {
        uint64_t seed = 0;
        uint64_t chunk = 0;
        std::string programHash;
    };
    struct VerdictEntry : Entry {
        std::string signature;
        bool fixed = false;
        unsigned tests = 0;
    };

    CorpusStore() = default;

    /** Atomically take the writer flock on LOCK (kept on lockFd_ for
     * the store's lifetime) and record our pid in it. */
    bool acquireLock(StoreError *error);
    bool loadGeneration(StoreError *error);
    bool openAppendHandles(StoreError *error);
    std::optional<std::string> readPayload(const Entry &entry,
                                           std::string_view what,
                                           StoreError *error);
    /** Append a payload blob + its sealed index line (caller holds
     * the mutex). Returns the entry describing the blob. */
    Entry appendPayload(std::string_view bytes);
    void appendIndexLine(const std::string &body);
    bool flushLocked(StoreError *error);

    std::string dir_;
    std::string lockPath_;
    int lockFd_ = -1; ///< holds the writer flock while >= 0
    uint64_t generation_ = 0;
    uint64_t recoveredLines_ = 0;
    std::FILE *indexFile_ = nullptr;
    std::FILE *payloadFile_ = nullptr;
    uint64_t payloadSize_ = 0;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> programs_;
    std::map<uint64_t, RecordEntry> recordsBySlot_;
    std::unordered_map<std::string, VerdictEntry> verdicts_;

    support::MetricsRegistry *metrics_ = nullptr;
    support::Counter *dedupHits_ = nullptr;
    support::Counter *recordCount_ = nullptr;
    support::Counter *bytesWritten_ = nullptr;
    support::Histogram *checkpointUs_ = nullptr;
};

/**
 * Seed @p mutator's pool with every program in @p store, in hash
 * order (deterministic regardless of insertion history). Returns the
 * number of programs added; payloads that fail to load or parse are
 * skipped.
 */
size_t seedMutatorPool(CorpusStore &store, gen::Mutator &mutator);

/**
 * core::VerdictCache backed by a CorpusStore — the bridge that lets
 * triageFindings reuse verdicts across campaign runs.
 */
class StoreVerdictCache : public core::VerdictCache {
  public:
    explicit StoreVerdictCache(CorpusStore &store) : store_(store) {}

    std::optional<core::CachedVerdict>
    lookup(const core::VerdictKey &key) override
    {
        return store_.getVerdict(key.fingerprint());
    }
    void
    store(const core::VerdictKey &key,
          const core::CachedVerdict &verdict) override
    {
        store_.putVerdict(key.fingerprint(), verdict);
    }

  private:
    CorpusStore &store_;
};

/** In-process core::VerdictCache (tests, cache-without-store runs). */
class MemoryVerdictCache : public core::VerdictCache {
  public:
    std::optional<core::CachedVerdict>
    lookup(const core::VerdictKey &key) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = verdicts_.find(key.fingerprint());
        if (it == verdicts_.end())
            return std::nullopt;
        return it->second;
    }
    void
    store(const core::VerdictKey &key,
          const core::CachedVerdict &verdict) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        verdicts_.emplace(key.fingerprint(), verdict);
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return verdicts_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, core::CachedVerdict> verdicts_;
};

} // namespace dce::corpus
