#include "corpus/json.hpp"

#include <cassert>

#include "support/hash.hpp"
#include "support/json.hpp"

namespace dce::corpus {

std::string
sealJsonLine(std::string object)
{
    object.pop_back(); // the closing '}'
    std::string crc = support::crc32Hex(object);
    object += ",\"c\":\"";
    object += crc;
    object += "\"}";
    return object;
}

std::optional<JsonValue>
unsealJsonLine(std::string_view line)
{
    static constexpr std::string_view kSeal = ",\"c\":\"";
    size_t pos = line.rfind(kSeal);
    // `,"c":"` + 8 hex digits + `"}` must end the line exactly.
    if (pos == std::string_view::npos ||
        line.size() != pos + kSeal.size() + 8 + 2)
        return std::nullopt;
    std::string_view claimed = line.substr(pos + kSeal.size(), 8);
    if (support::crc32Hex(line.substr(0, pos)) != claimed)
        return std::nullopt;
    std::optional<JsonValue> value = JsonValue::parse(line);
    if (!value || !value->isObject())
        return std::nullopt;
    return value;
}

//===------------------------------------------------------------------===//
// Writer
//===------------------------------------------------------------------===//

std::string
jsonEscape(std::string_view text)
{
    // The shared support escaper, so the store's on-disk strings use
    // the same escaping rules as the tracer and the event log.
    return support::jsonEscaped(text);
}

void
JsonWriter::comma()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // value attaches to the emitted key, no comma
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    inObject_.push_back(true);
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    assert(!inObject_.empty() && inObject_.back());
    out_ += '}';
    inObject_.pop_back();
    needComma_.pop_back();
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    inObject_.push_back(false);
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    assert(!inObject_.empty() && !inObject_.back());
    out_ += ']';
    inObject_.pop_back();
    needComma_.pop_back();
}

void
JsonWriter::key(std::string_view name)
{
    assert(!inObject_.empty() && inObject_.back());
    assert(!pendingKey_);
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
}

void
JsonWriter::value(uint64_t number)
{
    comma();
    out_ += std::to_string(number);
}

void
JsonWriter::value(int64_t number)
{
    comma();
    out_ += std::to_string(number);
}

void
JsonWriter::value(bool boolean)
{
    comma();
    out_ += boolean ? "true" : "false";
}

void
JsonWriter::null()
{
    comma();
    out_ += "null";
}

void
JsonWriter::raw(std::string_view json)
{
    comma();
    out_ += json;
}

//===------------------------------------------------------------------===//
// Reader
//===------------------------------------------------------------------===//

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value) ||
            (skipSpace(), position_ != text_.size())) {
            if (error)
                *error = error_.empty() ? "trailing garbage" : error_;
            return std::nullopt;
        }
        return value;
    }

  private:
    bool
    fail(const char *message)
    {
        if (error_.empty()) {
            error_ = message;
            error_ += " at offset ";
            error_ += std::to_string(position_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (position_ < text_.size() &&
               (text_[position_] == ' ' || text_[position_] == '\t' ||
                text_[position_] == '\n' || text_[position_] == '\r'))
            ++position_;
    }

    bool
    consume(char expected)
    {
        skipSpace();
        if (position_ >= text_.size() || text_[position_] != expected)
            return false;
        ++position_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(position_, word.size()) != word)
            return fail("bad literal");
        position_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (position_ < text_.size()) {
            char ch = text_[position_++];
            if (ch == '"')
                return true;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (position_ >= text_.size())
                break;
            char esc = text_[position_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out += esc;
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (position_ + 4 > text_.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char hex = text_[position_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= unsigned(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= unsigned(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= unsigned(hex - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only emits \u00XX control bytes; decode
                // the low byte, reject anything wider.
                if (code > 0xff)
                    return fail("unsupported \\u escape");
                out += static_cast<char>(code);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (position_ >= text_.size())
            return fail("unexpected end");
        char ch = text_[position_];
        switch (ch) {
        case '{': {
            ++position_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                std::string name;
                skipSpace();
                if (!parseString(name))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.members.emplace(std::move(name),
                                    std::move(member));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            ++position_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default: {
            out.kind = JsonValue::Kind::Int;
            out.negative = ch == '-';
            if (out.negative)
                ++position_;
            if (position_ >= text_.size() ||
                text_[position_] < '0' || text_[position_] > '9')
                return fail("expected digit");
            uint64_t magnitude = 0;
            while (position_ < text_.size() &&
                   text_[position_] >= '0' &&
                   text_[position_] <= '9') {
                uint64_t digit = uint64_t(text_[position_] - '0');
                if (magnitude > (UINT64_MAX - digit) / 10)
                    return fail("integer overflow");
                magnitude = magnitude * 10 + digit;
                ++position_;
            }
            out.magnitude = magnitude;
            return true;
        }
        }
    }

    std::string_view text_;
    size_t position_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
JsonValue::parse(std::string_view json, std::string *error)
{
    return Parser(json).run(error);
}

const JsonValue *
JsonValue::get(std::string_view name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = members.find(std::string(name));
    return it == members.end() ? nullptr : &it->second;
}

uint64_t
JsonValue::getU64(std::string_view name, uint64_t fallback) const
{
    const JsonValue *member = get(name);
    return member && member->kind == Kind::Int ? member->asU64()
                                               : fallback;
}

bool
JsonValue::getBool(std::string_view name, bool fallback) const
{
    const JsonValue *member = get(name);
    return member && member->kind == Kind::Bool ? member->boolean
                                                : fallback;
}

std::string
JsonValue::getString(std::string_view name,
                     std::string_view fallback) const
{
    const JsonValue *member = get(name);
    return member && member->kind == Kind::String
               ? member->text
               : std::string(fallback);
}

} // namespace dce::corpus
