#include "corpus/store.hpp"

#include <algorithm>

#include "gen/mutator.hpp"
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <limits>

#include "corpus/serialize.hpp"
#include "support/hash.hpp"
#include "support/trace.hpp"

namespace fs = std::filesystem;

namespace dce::corpus {

const char *
storeStatusName(StoreStatus status)
{
    switch (status) {
    case StoreStatus::Ok:
        return "ok";
    case StoreStatus::IoError:
        return "io_error";
    case StoreStatus::Locked:
        return "locked";
    case StoreStatus::Corrupt:
        return "corrupt";
    case StoreStatus::BadVersion:
        return "bad_version";
    case StoreStatus::NoCheckpoint:
        return "no_checkpoint";
    case StoreStatus::PlanMismatch:
        return "plan_mismatch";
    case StoreStatus::NotFound:
        return "not_found";
    }
    return "unknown";
}

namespace {

void
setError(StoreError *error, StoreStatus status, std::string message)
{
    if (error) {
        error->status = status;
        error->message = std::move(message);
    }
}

bool
readWholeFile(const std::string &path, std::string &out,
              StoreError *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        setError(error, StoreStatus::IoError,
                 "open " + path + ": " + std::strerror(errno));
        return false;
    }
    out.clear();
    char buffer[1 << 16];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        out.append(buffer, got);
    bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) {
        setError(error, StoreStatus::IoError, "read " + path);
        return false;
    }
    return true;
}

/** Write @p content to @p path durably via temp-file-plus-rename. */
bool
writeFileAtomic(const std::string &path, std::string_view content,
                StoreError *error)
{
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file) {
        setError(error, StoreStatus::IoError,
                 "open " + tmp + ": " + std::strerror(errno));
        return false;
    }
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), file) ==
                  content.size();
    ok = std::fflush(file) == 0 && ok;
    ok = ::fsync(fileno(file)) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        setError(error, StoreStatus::IoError, "write " + tmp);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, StoreStatus::IoError,
                 "rename " + tmp + ": " + std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** fsync the directory itself so renames within it are durable. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

std::string
indexPath(const std::string &dir, uint64_t generation)
{
    return dir + "/index." + std::to_string(generation) + ".jsonl";
}

std::string
payloadPath(const std::string &dir, uint64_t generation)
{
    return dir + "/payload." + std::to_string(generation) + ".dat";
}

std::string
manifestJson(uint64_t generation)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("version", uint64_t(kFormatVersion));
    writer.field("generation", generation);
    writer.endObject();
    return writer.take() + "\n";
}

} // namespace

//===------------------------------------------------------------------===//
// Open / lock / load
//===------------------------------------------------------------------===//

std::unique_ptr<CorpusStore>
CorpusStore::open(const std::string &dir, StoreError *error,
                  const OpenOptions &options)
{
    support::TraceSpan span("corpus.open", "corpus");
    setError(error, StoreStatus::Ok, "");

    std::string manifest_path = dir + "/MANIFEST.json";
    std::error_code ec;
    if (!fs::exists(manifest_path, ec)) {
        if (!options.createIfMissing) {
            setError(error, StoreStatus::NotFound,
                     "no store at " + dir);
            return nullptr;
        }
        fs::create_directories(dir, ec);
        if (ec) {
            setError(error, StoreStatus::IoError,
                     "mkdir " + dir + ": " + ec.message());
            return nullptr;
        }
        if (!writeFileAtomic(manifest_path, manifestJson(0), error))
            return nullptr;
        syncDir(dir);
    }

    std::unique_ptr<CorpusStore> store(new CorpusStore);
    store->dir_ = dir;
    store->lockPath_ = dir + "/LOCK";

    if (!store->acquireLock(error))
        return nullptr;

    std::string manifest_text;
    if (!readWholeFile(manifest_path, manifest_text, error))
        return nullptr;
    std::optional<JsonValue> manifest =
        JsonValue::parse(manifest_text);
    if (!manifest || !manifest->isObject()) {
        setError(error, StoreStatus::Corrupt, "malformed MANIFEST");
        return nullptr;
    }
    if (manifest->getU64("version") != kFormatVersion) {
        setError(error, StoreStatus::BadVersion,
                 "store format version " +
                     std::to_string(manifest->getU64("version")) +
                     ", expected " + std::to_string(kFormatVersion));
        return nullptr;
    }
    store->generation_ = manifest->getU64("generation");

    support::MetricsRegistry &registry =
        options.metrics ? *options.metrics
                        : support::MetricsRegistry::global();
    store->metrics_ = &registry;
    store->dedupHits_ = &registry.counter("corpus.dedup_hits");
    store->recordCount_ = &registry.counter("corpus.records");
    store->bytesWritten_ = &registry.counter("corpus.bytes");
    store->checkpointUs_ = &registry.histogram("corpus.checkpoint_us");

    if (!store->loadGeneration(error))
        return nullptr;
    if (!store->openAppendHandles(error))
        return nullptr;
    return store;
}

bool
CorpusStore::acquireLock(StoreError *error)
{
    // Mutual exclusion is a BSD flock held on lockFd_ for the store's
    // lifetime: acquisition is atomic (no check-then-write window for
    // two openers to both claim the store) and the kernel drops it
    // when the owner dies, however abruptly. The pid written inside is
    // a second fence against writers that recorded themselves without
    // holding the flock, and makes `cat LOCK` meaningful.
    int fd =
        ::open(lockPath_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        setError(error, StoreStatus::IoError,
                 "open " + lockPath_ + ": " + std::strerror(errno));
        return false;
    }
    int rc;
    do {
        rc = ::flock(fd, LOCK_EX | LOCK_NB);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        // Only EWOULDBLOCK means contention. Everything else (ENOLCK,
        // EBADF, ...) is a real filesystem-level failure and must not
        // masquerade as "a live writer holds the store" — callers back
        // off and retry Locked, but an IoError needs an operator.
        int err = errno;
        if (err == EWOULDBLOCK || err == EAGAIN) {
            // Name the holder: with the flock actually held by a live
            // process, the pid it recorded is trustworthy and makes
            // the contention diagnosable across process boundaries.
            char buffer[64] = {};
            ssize_t got = ::pread(fd, buffer, sizeof buffer - 1, 0);
            long holder = got > 0 ? std::atol(buffer) : 0;
            ::close(fd);
            setError(error, StoreStatus::Locked,
                     holder > 0 ? "store locked by live pid " +
                                      std::to_string(holder)
                                : "store locked by a live writer");
        } else {
            ::close(fd);
            setError(error, StoreStatus::IoError,
                     "flock " + lockPath_ + ": " +
                         std::strerror(err));
        }
        return false;
    }
    char buffer[64] = {};
    ssize_t got = ::pread(fd, buffer, sizeof buffer - 1, 0);
    long pid = got > 0 ? std::atol(buffer) : 0;
    if (pid > 0 && pid != long(::getpid()) &&
        (::kill(pid_t(pid), 0) == 0 || errno == EPERM)) {
        // Close (releasing our flock) without disturbing the recorded
        // owner; a dead owner's pid is stale and falls through to the
        // claim below instead.
        ::close(fd);
        setError(error, StoreStatus::Locked,
                 "store locked by pid " + std::to_string(pid));
        return false;
    }
    std::string pid_text = std::to_string(::getpid()) + "\n";
    bool ok = ::ftruncate(fd, 0) == 0 &&
              ::pwrite(fd, pid_text.data(), pid_text.size(), 0) ==
                  ssize_t(pid_text.size()) &&
              ::fsync(fd) == 0;
    if (!ok) {
        setError(error, StoreStatus::IoError,
                 "write " + lockPath_ + ": " + std::strerror(errno));
        ::close(fd);
        return false;
    }
    lockFd_ = fd;
    return true;
}

CorpusStore::~CorpusStore()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushLocked(nullptr);
    if (indexFile_)
        std::fclose(indexFile_);
    if (payloadFile_)
        std::fclose(payloadFile_);
    if (lockFd_ >= 0) {
        // Only the lock we actually acquired gets released: blank the
        // pid while the flock is still held, then close to drop it.
        // The file itself stays — unlinking would race a concurrent
        // opener already holding an fd to the old inode.
        (void)!::ftruncate(lockFd_, 0);
        ::close(lockFd_);
    }
}

bool
CorpusStore::loadGeneration(StoreError *error)
{
    std::string index_path = indexPath(dir_, generation_);
    std::string payload_path = payloadPath(dir_, generation_);
    std::error_code ec;
    uint64_t payload_size = 0;
    if (fs::exists(payload_path, ec))
        payload_size = fs::file_size(payload_path, ec);
    payloadSize_ = payload_size;

    if (!fs::exists(index_path, ec))
        return true; // fresh generation, nothing to load

    std::string text;
    if (!readWholeFile(index_path, text, error))
        return false;

    size_t line_start = 0;
    size_t keep_bytes = text.size();
    bool tail_lost = false;
    std::vector<std::pair<size_t, std::string_view>> lines;
    while (line_start < text.size()) {
        size_t newline = text.find('\n', line_start);
        if (newline == std::string::npos) {
            // Unterminated final line: the crash interrupted the
            // append. Recoverable tail.
            tail_lost = true;
            keep_bytes = line_start;
            ++recoveredLines_;
            break;
        }
        lines.emplace_back(
            line_start, std::string_view(text)
                            .substr(line_start, newline - line_start));
        line_start = newline + 1;
    }

    for (size_t i = 0; i < lines.size(); ++i) {
        auto [offset, line] = lines[i];
        std::optional<JsonValue> entry_json = unsealJsonLine(line);
        bool payload_ok = true;
        Entry entry;
        if (entry_json) {
            entry.offset = entry_json->getU64("off");
            entry.length = entry_json->getU64("len");
            entry.payloadCrc = entry_json->getString("pcrc");
            payload_ok =
                entry.offset + entry.length <= payload_size;
        }
        if (!entry_json || !payload_ok) {
            // Damage in the final sealed lines — an index line whose
            // payload never fully reached the disk, or a torn line —
            // is the recoverable crash tail. Damage earlier than that
            // means silent corruption: refuse the store.
            bool is_tail = true;
            for (size_t j = i + 1; j < lines.size(); ++j) {
                std::optional<JsonValue> later = unsealJsonLine(lines[j].second);
                if (later &&
                    later->getU64("off") + later->getU64("len") <=
                        payload_size) {
                    is_tail = false;
                    break;
                }
            }
            if (!is_tail) {
                setError(error, StoreStatus::Corrupt,
                         "index entry " + std::to_string(i) +
                             " failed its checksum before the tail");
                return false;
            }
            recoveredLines_ += lines.size() - i;
            keep_bytes = offset;
            tail_lost = true;
            break;
        }
        std::string type = entry_json->getString("t");
        if (type == "program") {
            programs_.emplace(entry_json->getString("h"), entry);
        } else if (type == "record") {
            RecordEntry record;
            static_cast<Entry &>(record) = entry;
            record.seed = entry_json->getU64("seed");
            record.chunk = entry_json->getU64("chunk");
            record.programHash = entry_json->getString("h");
            recordsBySlot_[entry_json->getU64("slot")] =
                std::move(record);
        } else if (type == "verdict") {
            VerdictEntry verdict;
            static_cast<Entry &>(verdict) = entry;
            // Last line wins: a re-put appended to repair a corrupt
            // payload supersedes the original entry.
            verdicts_[entry_json->getString("k")] =
                std::move(verdict);
        } else {
            setError(error, StoreStatus::Corrupt,
                     "unknown index entry type '" + type + "'");
            return false;
        }
    }

    if (tail_lost) {
        fs::resize_file(index_path, keep_bytes, ec);
        if (ec) {
            setError(error, StoreStatus::IoError,
                     "truncate " + index_path + ": " + ec.message());
            return false;
        }
    }
    return true;
}

bool
CorpusStore::openAppendHandles(StoreError *error)
{
    std::string index_path = indexPath(dir_, generation_);
    std::string payload_path = payloadPath(dir_, generation_);
    indexFile_ = std::fopen(index_path.c_str(), "ab");
    payloadFile_ = std::fopen(payload_path.c_str(), "a+b");
    if (!indexFile_ || !payloadFile_) {
        setError(error, StoreStatus::IoError,
                 "open generation " + std::to_string(generation_) +
                     ": " + std::strerror(errno));
        return false;
    }
    return true;
}

//===------------------------------------------------------------------===//
// Payload I/O
//===------------------------------------------------------------------===//

CorpusStore::Entry
CorpusStore::appendPayload(std::string_view bytes)
{
    Entry entry;
    entry.offset = payloadSize_;
    entry.length = bytes.size();
    entry.payloadCrc = support::crc32Hex(bytes);
    std::fwrite(bytes.data(), 1, bytes.size(), payloadFile_);
    payloadSize_ += bytes.size();
    bytesWritten_->add(bytes.size());
    return entry;
}

void
CorpusStore::appendIndexLine(const std::string &body)
{
    std::string line = sealJsonLine(body);
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), indexFile_);
    bytesWritten_->add(line.size());
}

std::optional<std::string>
CorpusStore::readPayload(const Entry &entry, std::string_view what,
                         StoreError *error)
{
    std::fflush(payloadFile_);
    if (entry.offset > uint64_t(std::numeric_limits<off_t>::max())) {
        setError(error, StoreStatus::IoError,
                 std::string("payload offset not seekable for ") +
                     std::string(what));
        return std::nullopt;
    }
    std::string bytes(entry.length, '\0');
    if (fseeko(payloadFile_, off_t(entry.offset), SEEK_SET) != 0 ||
        (entry.length > 0 &&
         std::fread(bytes.data(), 1, entry.length, payloadFile_) !=
             entry.length)) {
        setError(error, StoreStatus::IoError,
                 std::string("read payload for ") + std::string(what));
        return std::nullopt;
    }
    if (support::crc32Hex(bytes) != entry.payloadCrc) {
        setError(error, StoreStatus::Corrupt,
                 "payload checksum mismatch for " + std::string(what));
        return std::nullopt;
    }
    return bytes;
}

//===------------------------------------------------------------------===//
// Programs
//===------------------------------------------------------------------===//

bool
CorpusStore::putProgram(const std::string &hash,
                        std::string_view canonical_text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (programs_.count(hash)) {
        dedupHits_->add(1);
        return false;
    }
    Entry entry = appendPayload(canonical_text);
    JsonWriter writer;
    writer.beginObject();
    writer.field("t", "program");
    writer.field("h", hash);
    writer.field("off", entry.offset);
    writer.field("len", entry.length);
    writer.field("pcrc", entry.payloadCrc);
    writer.endObject();
    appendIndexLine(writer.take());
    programs_.emplace(hash, std::move(entry));
    return true;
}

bool
CorpusStore::hasProgram(const std::string &hash) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return programs_.count(hash) != 0;
}

std::optional<std::string>
CorpusStore::getProgram(const std::string &hash, StoreError *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = programs_.find(hash);
    if (it == programs_.end()) {
        setError(error, StoreStatus::NotFound, "program " + hash);
        return std::nullopt;
    }
    return readPayload(it->second, "program " + hash, error);
}

std::vector<std::string>
CorpusStore::programHashes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> hashes;
    hashes.reserve(programs_.size());
    for (const auto &[hash, entry] : programs_)
        hashes.push_back(hash);
    std::sort(hashes.begin(), hashes.end());
    return hashes;
}

size_t
seedMutatorPool(CorpusStore &store, gen::Mutator &mutator)
{
    size_t added = 0;
    for (const std::string &hash : store.programHashes()) {
        std::optional<std::string> text = store.getProgram(hash);
        if (text && mutator.addToPool(*text))
            ++added;
    }
    return added;
}

//===------------------------------------------------------------------===//
// Records
//===------------------------------------------------------------------===//

void
CorpusStore::putRecord(const core::ProgramRecord &record,
                       uint64_t slot, uint64_t chunk,
                       const std::string &program_hash)
{
    std::string payload = serializeRecord(record);
    std::lock_guard<std::mutex> lock(mutex_);
    RecordEntry entry;
    static_cast<Entry &>(entry) = appendPayload(payload);
    entry.seed = record.seed;
    entry.chunk = chunk;
    entry.programHash = program_hash;
    JsonWriter writer;
    writer.beginObject();
    writer.field("t", "record");
    writer.field("seed", record.seed);
    writer.field("slot", slot);
    writer.field("chunk", chunk);
    writer.field("h", program_hash);
    writer.field("off", entry.offset);
    writer.field("len", entry.length);
    writer.field("pcrc", entry.payloadCrc);
    writer.endObject();
    appendIndexLine(writer.take());
    recordsBySlot_[slot] = std::move(entry);
    recordCount_->add(1);
}

std::vector<StoredRecord>
CorpusStore::loadRecords(StoreError *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StoredRecord> records;
    records.reserve(recordsBySlot_.size());
    for (const auto &[slot, entry] : recordsBySlot_) {
        std::optional<std::string> payload = readPayload(
            entry, "record slot " + std::to_string(slot), error);
        if (!payload)
            return {};
        std::optional<core::ProgramRecord> record =
            deserializeRecord(*payload);
        if (!record) {
            setError(error, StoreStatus::Corrupt,
                     "record slot " + std::to_string(slot) +
                         " does not deserialize");
            return {};
        }
        records.push_back({std::move(*record), slot, entry.chunk,
                           entry.programHash});
    }
    return records;
}

//===------------------------------------------------------------------===//
// Verdicts
//===------------------------------------------------------------------===//

void
CorpusStore::putVerdict(const std::string &fingerprint,
                        const core::CachedVerdict &verdict)
{
    std::string payload = serializeVerdict(verdict);
    std::lock_guard<std::mutex> lock(mutex_);
    // Last write wins (load and compact agree): triage only re-stores
    // a fingerprint it failed to read back, so replacing is what lets
    // a verdict with a corrupt payload be repaired on the next run
    // instead of no-oping against the damaged entry forever.
    VerdictEntry entry;
    static_cast<Entry &>(entry) = appendPayload(payload);
    entry.signature = verdict.signature;
    entry.fixed = verdict.fixed;
    entry.tests = verdict.reductionTests;
    JsonWriter writer;
    writer.beginObject();
    writer.field("t", "verdict");
    writer.field("k", fingerprint);
    writer.field("off", entry.offset);
    writer.field("len", entry.length);
    writer.field("pcrc", entry.payloadCrc);
    writer.endObject();
    appendIndexLine(writer.take());
    verdicts_[fingerprint] = std::move(entry);
}

std::optional<core::CachedVerdict>
CorpusStore::getVerdict(const std::string &fingerprint,
                        StoreError *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = verdicts_.find(fingerprint);
    if (it == verdicts_.end()) {
        setError(error, StoreStatus::NotFound,
                 "verdict " + fingerprint);
        return std::nullopt;
    }
    std::optional<std::string> payload =
        readPayload(it->second, "verdict " + fingerprint, error);
    if (!payload)
        return std::nullopt;
    std::optional<core::CachedVerdict> verdict =
        deserializeVerdict(*payload);
    if (!verdict) {
        setError(error, StoreStatus::Corrupt,
                 "verdict " + fingerprint + " does not deserialize");
        return std::nullopt;
    }
    return verdict;
}

//===------------------------------------------------------------------===//
// Checkpoints
//===------------------------------------------------------------------===//

bool
CorpusStore::writeCheckpoint(const std::string &json,
                             StoreError *error)
{
    support::TraceSpan span("corpus.checkpoint", "corpus");
    auto start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    // Data first, pointer second: the checkpoint must never name
    // store state that is not yet durable.
    if (!flushLocked(error))
        return false;
    if (!writeFileAtomic(dir_ + "/checkpoint.json", json, error))
        return false;
    syncDir(dir_);
    auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    checkpointUs_->observe(uint64_t(micros));
    span.setArg("bytes", json.size());
    return true;
}

std::optional<std::string>
CorpusStore::readCheckpoint(StoreError *error)
{
    std::string path = dir_ + "/checkpoint.json";
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        setError(error, StoreStatus::NoCheckpoint,
                 "no checkpoint in " + dir_);
        return std::nullopt;
    }
    std::string text;
    if (!readWholeFile(path, text, error))
        return std::nullopt;
    return text;
}

bool
CorpusStore::hasCheckpoint() const
{
    std::error_code ec;
    return fs::exists(dir_ + "/checkpoint.json", ec);
}

bool
CorpusStore::writeEquivState(const std::string &json, StoreError *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Same durability order as checkpoints: data, then pointer.
    if (!flushLocked(error))
        return false;
    if (!writeFileAtomic(dir_ + "/equiv.json", json, error))
        return false;
    syncDir(dir_);
    return true;
}

std::optional<std::string>
CorpusStore::readEquivState(StoreError *error)
{
    std::string path = dir_ + "/equiv.json";
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        setError(error, StoreStatus::NotFound,
                 "no equiv state in " + dir_);
        return std::nullopt;
    }
    std::string text;
    if (!readWholeFile(path, text, error))
        return std::nullopt;
    return text;
}

bool
CorpusStore::hasEquivState() const
{
    std::error_code ec;
    return fs::exists(dir_ + "/equiv.json", ec);
}

//===------------------------------------------------------------------===//
// Maintenance
//===------------------------------------------------------------------===//

bool
CorpusStore::flushLocked(StoreError *error)
{
    bool ok = true;
    if (payloadFile_) {
        ok = std::fflush(payloadFile_) == 0 && ok;
        ok = ::fsync(fileno(payloadFile_)) == 0 && ok;
    }
    if (indexFile_) {
        ok = std::fflush(indexFile_) == 0 && ok;
        ok = ::fsync(fileno(indexFile_)) == 0 && ok;
    }
    if (!ok)
        setError(error, StoreStatus::IoError, "flush failed");
    return ok;
}

bool
CorpusStore::flush(StoreError *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushLocked(error);
}

bool
CorpusStore::compact(StoreError *error)
{
    support::TraceSpan span("corpus.compact", "corpus");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!flushLocked(error))
        return false;

    uint64_t next = generation_ + 1;
    std::string new_index = indexPath(dir_, next);
    std::string new_payload = payloadPath(dir_, next);

    // Rewrite live entries in a deterministic order so equal stores
    // compact to byte-identical files.
    std::string index_text;
    std::string payload_text;
    std::unordered_map<std::string, Entry> new_programs;
    std::map<uint64_t, RecordEntry> new_records;
    std::unordered_map<std::string, VerdictEntry> new_verdicts;

    auto copyPayload = [&](const Entry &old, std::string_view what,
                           Entry &fresh) {
        std::optional<std::string> bytes =
            readPayload(old, what, error);
        if (!bytes)
            return false;
        fresh.offset = payload_text.size();
        fresh.length = bytes->size();
        fresh.payloadCrc = old.payloadCrc;
        payload_text += *bytes;
        return true;
    };

    std::vector<std::string> hashes;
    hashes.reserve(programs_.size());
    for (const auto &[hash, entry] : programs_)
        hashes.push_back(hash);
    std::sort(hashes.begin(), hashes.end());
    for (const std::string &hash : hashes) {
        Entry fresh;
        if (!copyPayload(programs_.at(hash), "program " + hash,
                         fresh))
            return false;
        JsonWriter writer;
        writer.beginObject();
        writer.field("t", "program");
        writer.field("h", hash);
        writer.field("off", fresh.offset);
        writer.field("len", fresh.length);
        writer.field("pcrc", fresh.payloadCrc);
        writer.endObject();
        index_text += sealJsonLine(writer.take());
        index_text += '\n';
        new_programs.emplace(hash, std::move(fresh));
    }
    for (const auto &[slot, entry] : recordsBySlot_) {
        RecordEntry fresh;
        fresh.seed = entry.seed;
        fresh.chunk = entry.chunk;
        fresh.programHash = entry.programHash;
        if (!copyPayload(entry,
                         "record slot " + std::to_string(slot),
                         fresh))
            return false;
        JsonWriter writer;
        writer.beginObject();
        writer.field("t", "record");
        writer.field("seed", fresh.seed);
        writer.field("slot", slot);
        writer.field("chunk", fresh.chunk);
        writer.field("h", fresh.programHash);
        writer.field("off", fresh.offset);
        writer.field("len", fresh.length);
        writer.field("pcrc", fresh.payloadCrc);
        writer.endObject();
        index_text += sealJsonLine(writer.take());
        index_text += '\n';
        new_records.emplace(slot, std::move(fresh));
    }
    std::vector<std::string> fingerprints;
    fingerprints.reserve(verdicts_.size());
    for (const auto &[fingerprint, entry] : verdicts_)
        fingerprints.push_back(fingerprint);
    std::sort(fingerprints.begin(), fingerprints.end());
    for (const std::string &fingerprint : fingerprints) {
        const VerdictEntry &old = verdicts_.at(fingerprint);
        VerdictEntry fresh;
        fresh.signature = old.signature;
        fresh.fixed = old.fixed;
        fresh.tests = old.tests;
        if (!copyPayload(old, "verdict " + fingerprint, fresh))
            return false;
        JsonWriter writer;
        writer.beginObject();
        writer.field("t", "verdict");
        writer.field("k", fingerprint);
        writer.field("off", fresh.offset);
        writer.field("len", fresh.length);
        writer.field("pcrc", fresh.payloadCrc);
        writer.endObject();
        index_text += sealJsonLine(writer.take());
        index_text += '\n';
        new_verdicts.emplace(fingerprint, std::move(fresh));
    }

    if (!writeFileAtomic(new_payload, payload_text, error) ||
        !writeFileAtomic(new_index, index_text, error))
        return false;
    syncDir(dir_);
    // The MANIFEST swap is the commit point: before it, the old
    // generation is still live; after it, the new one is.
    if (!writeFileAtomic(dir_ + "/MANIFEST.json",
                         manifestJson(next), error))
        return false;
    syncDir(dir_);

    std::fclose(indexFile_);
    std::fclose(payloadFile_);
    indexFile_ = nullptr;
    payloadFile_ = nullptr;
    std::remove(indexPath(dir_, generation_).c_str());
    std::remove(payloadPath(dir_, generation_).c_str());

    generation_ = next;
    payloadSize_ = payload_text.size();
    programs_ = std::move(new_programs);
    recordsBySlot_ = std::move(new_records);
    verdicts_ = std::move(new_verdicts);
    span.setArg("bytes", payloadSize_);
    return openAppendHandles(error);
}

StoreStats
CorpusStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StoreStats stats;
    stats.programs = programs_.size();
    stats.records = recordsBySlot_.size();
    stats.verdicts = verdicts_.size();
    stats.bytes = payloadSize_;
    stats.generation = generation_;
    stats.recoveredLines = recoveredLines_;
    return stats;
}

} // namespace dce::corpus
